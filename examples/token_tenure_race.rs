//! An annotated replay of the paper's Figures 1 and 2: racing requests
//! resolved by token tenure.
//!
//! Three processors and a home contend for one block. P3's direct
//! requests strip every token from the system before its indirect request
//! even reaches the home, while P1 wins activation at the home. Without
//! token tenure both would wait forever (Figure 1). With it, P3's
//! *untenured* tokens time out, funnel through the home to the active
//! requester P1, and the home then activates P3, which completes too
//! (Figure 2).
//!
//! The example drives the PATCH controllers directly, playing postman so
//! the adversarial delivery order is explicit. Every step is narrated.
//!
//! Run with: `cargo run --example token_tenure_race`

use patchsim::{AccessKind, BlockAddr, Cycle, NodeId, PredictorChoice, ProtocolKind};
use patchsim_protocol::{
    Completion, Controller, MemOp, Msg, MsgBody, OutMsg, Outbox, PatchController, ProtocolConfig,
    RequestStyle, TimerKey, TimerKind,
};

/// A hand-cranked network: undelivered messages and unfired timers.
struct PostOffice {
    in_flight: Vec<(NodeId, Msg)>,
    timers: Vec<(NodeId, Cycle, TimerKey)>,
    completions: Vec<(NodeId, Completion)>,
}

impl PostOffice {
    fn new() -> Self {
        PostOffice {
            in_flight: Vec::new(),
            timers: Vec::new(),
            completions: Vec::new(),
        }
    }

    fn collect(&mut self, from: NodeId, out: Outbox) {
        for OutMsg { dests, msg, .. } in out.sends {
            for dest in dests.iter() {
                self.in_flight.push((dest, msg.clone()));
            }
        }
        for (at, key) in out.timers {
            self.timers.push((from, at, key));
        }
        for c in out.completions {
            self.completions.push((from, c));
        }
    }

    /// Delivers the first queued message matching `pred`.
    fn deliver(
        &mut self,
        nodes: &mut [PatchController],
        now: Cycle,
        pred: impl Fn(&NodeId, &Msg) -> bool,
        note: &str,
    ) {
        let idx = self
            .in_flight
            .iter()
            .position(|(d, m)| pred(d, m))
            .unwrap_or_else(|| panic!("no message matching: {note}"));
        let (dest, msg) = self.in_flight.remove(idx);
        println!("  -> deliver to {dest}: {} ({note})", describe(&msg));
        let mut out = Outbox::new();
        nodes[dest.index()].handle_message(msg, now, &mut out);
        self.collect(dest, out);
    }

    /// Delivers every queued message, in queue order, until none remain.
    fn deliver_all(&mut self, nodes: &mut [PatchController], now: Cycle) {
        while !self.in_flight.is_empty() {
            self.deliver(nodes, now, |_, _| true, "drain");
        }
    }
}

fn describe(msg: &Msg) -> String {
    match &msg.body {
        MsgBody::Request {
            kind,
            requester,
            style,
            ..
        } => format!("{style:?} {kind} request from {requester}"),
        MsgBody::Fwd {
            kind, requester, ..
        } => format!("forwarded {kind} for {requester}"),
        MsgBody::Data {
            tokens, activation, ..
        } => format!(
            "data + {tokens}{}",
            if *activation { " [activation]" } else { "" }
        ),
        MsgBody::Ack {
            tokens, activation, ..
        } => format!(
            "ack {tokens}{}",
            if *activation { " [activation]" } else { "" }
        ),
        MsgBody::Activation { .. } => "activation".to_string(),
        MsgBody::Deactivate { requester, .. } => format!("deactivation from {requester}"),
        MsgBody::Put { tokens, .. } => format!("token return {tokens}"),
        other => format!("{other:?}"),
    }
}

fn main() {
    let n = 4u16;
    let config = ProtocolConfig::new(ProtocolKind::Patch, n).with_predictor(PredictorChoice::All);
    let mut nodes: Vec<PatchController> = (0..n)
        .map(|i| PatchController::new(config.clone(), NodeId::new(i)))
        .collect();
    let block = BlockAddr::new(0); // homed at node 0
    let mut post = PostOffice::new();
    let p = |i: u16| NodeId::new(i);

    println!("== setup: P1 writes the block, then P2 reads it ==");
    let mut out = Outbox::new();
    nodes[1].core_request(
        MemOp {
            addr: block,
            kind: AccessKind::Write,
        },
        Cycle::new(0),
        &mut out,
    );
    post.collect(p(1), out);
    post.deliver_all(&mut nodes, Cycle::new(10));
    let mut out = Outbox::new();
    nodes[2].core_request(
        MemOp {
            addr: block,
            kind: AccessKind::Read,
        },
        Cycle::new(20),
        &mut out,
    );
    post.collect(p(2), out);
    post.deliver_all(&mut nodes, Cycle::new(30));
    post.completions.clear();
    println!(
        "  state: P1 holds {} | P2 holds {} (owner) | home holds {}\n",
        nodes[1].held_tokens(block).unwrap(),
        nodes[2].held_tokens(block).unwrap(),
        nodes[0].held_tokens(block).unwrap(),
    );

    println!("== the race of Figure 1 ==");
    println!("time 1: P3 issues a write; its direct requests race ahead of its");
    println!("        indirect request, which we delay adversarially.");
    let mut out = Outbox::new();
    nodes[3].core_request(
        MemOp {
            addr: block,
            kind: AccessKind::Write,
        },
        Cycle::new(2000),
        &mut out,
    );
    post.collect(p(3), out);

    println!("time 2: the direct requests strip P1's and P2's tokens:");
    post.deliver(
        &mut nodes,
        Cycle::new(2005),
        |d, m| *d == p(1) && matches!(m.body, MsgBody::Request { .. }),
        "direct request to P1",
    );
    post.deliver(
        &mut nodes,
        Cycle::new(2005),
        |d, m| *d == p(2) && matches!(m.body, MsgBody::Request { .. }),
        "direct request to P2",
    );
    post.deliver(
        &mut nodes,
        Cycle::new(2010),
        |d, m| *d == p(3) && matches!(m.body, MsgBody::Ack { .. } | MsgBody::Data { .. }),
        "P1's tokens reach P3",
    );
    post.deliver(
        &mut nodes,
        Cycle::new(2015),
        |d, m| *d == p(3) && matches!(m.body, MsgBody::Data { .. } | MsgBody::Ack { .. }),
        "P2's owner token + data reach P3",
    );
    println!(
        "        P3 now holds {} — all of them, UNTENURED; its write performs",
        nodes[3].held_tokens(block).unwrap()
    );
    assert!(
        post.completions.iter().any(|(n, _)| *n == p(3)),
        "P3's write performed early"
    );
    post.completions.clear();

    println!("time 3: P1 also issues a write; ITS indirect request reaches the");
    println!("        home first, so the home activates P1 (not P3):");
    let mut out = Outbox::new();
    nodes[1].core_request(
        MemOp {
            addr: block,
            kind: AccessKind::Write,
        },
        Cycle::new(2020),
        &mut out,
    );
    post.collect(p(1), out);
    post.deliver(
        &mut nodes,
        Cycle::new(2030),
        |d, m| {
            *d == p(0)
                && matches!(m.body, MsgBody::Request { requester, style: RequestStyle::Indirect, .. } if requester == p(1))
        },
        "P1's indirect request wins at the home",
    );
    // The home's forwards/activation go out; P2 has no tokens left and
    // stays silent (no unnecessary acks). P1 is active but token-less.
    post.deliver_all(&mut nodes, Cycle::new(2040));
    println!("        P1 is active but the tokens sit untenured at P3: Figure 1's deadlock...");

    println!("\n== token tenure resolves it (Figure 2) ==");
    println!("time 4: P3's tenure timer expires (it was never activated);");
    println!("        it discards every token to the home:");
    let (node, at, key) = post
        .timers
        .iter()
        .copied()
        .find(|(n, _, k)| *n == p(3) && k.kind == TimerKind::Tenure)
        .expect("P3 armed a tenure timer");
    let mut out = Outbox::new();
    nodes[node.index()].timer_fired(key, at, &mut out);
    post.collect(node, out);
    println!(
        "        P3 tenure timeouts: {}",
        nodes[3].counters().tenure_timeouts
    );
    assert_eq!(nodes[3].counters().tenure_timeouts, 1);

    println!("time 5: the home redirects the returned tokens to active P1:");
    post.deliver(
        &mut nodes,
        Cycle::new(3000),
        |d, m| *d == p(0) && matches!(m.body, MsgBody::Put { .. }),
        "P3's token return reaches the home",
    );
    post.deliver(
        &mut nodes,
        Cycle::new(3010),
        |d, m| *d == p(1) && matches!(m.body, MsgBody::Data { .. }),
        "redirected tokens reach P1",
    );
    assert!(
        post.completions.iter().any(|(n, _)| *n == p(1)),
        "P1's write completed"
    );
    println!("        P1 completes its write and deactivates.");

    println!("time 6: the home activates the queued P3 and the tokens flow on:");
    post.deliver_all(&mut nodes, Cycle::new(3100));
    assert!(
        nodes.iter().all(|n| n.is_quiescent()),
        "everything quiesced"
    );
    println!(
        "        final: P3 holds {} — both racing writes completed.\n",
        nodes[3].held_tokens(block).unwrap()
    );
    println!("Both P1 and P3 completed without any broadcast: token tenure needed");
    println!("only local timeouts and the home's per-block point of ordering.");
}
