//! Bandwidth adaptivity via best-effort direct requests (paper §8.4,
//! Figures 6–7): sweep link bandwidth and watch PATCH-All track the
//! better of DIRECTORY and its own non-adaptive variant.
//!
//! Run with: `cargo run --release --example bandwidth_adaptivity`

use patchsim::{run, LinkBandwidth, PredictorChoice, ProtocolKind, SimConfig, WorkloadSpec};

fn config(kind: ProtocolKind, bw: f64) -> SimConfig {
    SimConfig::new(kind, 16)
        .with_bandwidth(LinkBandwidth::BytesPerCycle(bw))
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 4096,
            write_frac: 0.3,
            think_mean: 10,
        })
        .with_ops_per_core(1_500)
        .with_warmup(150)
        .with_seed(11)
}

fn main() {
    println!("bandwidth adaptivity (16 cores, microbenchmark)\n");
    println!(
        "{:>12} {:>12} {:>14} {:>12} {:>16}",
        "B/cycle", "Directory", "PATCH-All-NA", "PATCH-All", "PATCH-All drops"
    );
    for bw in [0.3, 0.6, 1.0, 2.0, 4.0, 8.0] {
        let dir = run(&config(ProtocolKind::Directory, bw));
        let na = run(&config(ProtocolKind::Patch, bw)
            .with_predictor(PredictorChoice::All)
            .with_protocol(
                patchsim::ProtocolConfig::new(ProtocolKind::Patch, 16)
                    .with_predictor(PredictorChoice::All)
                    .non_adaptive(),
            ));
        let adaptive = run(&config(ProtocolKind::Patch, bw).with_predictor(PredictorChoice::All));
        let base = dir.runtime_cycles as f64;
        println!(
            "{:>12} {:>12.3} {:>14.3} {:>12.3} {:>16}",
            bw,
            1.0,
            na.runtime_cycles as f64 / base,
            adaptive.runtime_cycles as f64 / base,
            adaptive.traffic.dropped_packets(),
        );
    }
    println!(
        "\nExpected shape (paper Figures 6-7): with plentiful bandwidth both\n\
         PATCH variants beat DIRECTORY identically; as links narrow the\n\
         non-adaptive variant degrades past DIRECTORY while adaptive\n\
         PATCH-All drops its stale hints and never does worse than 1.0."
    );
}
