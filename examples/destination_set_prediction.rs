//! Destination-set prediction trade-offs (paper §8.3): run a commercial
//! workload under each predictor policy and print the latency/bandwidth
//! trade-off each one buys.
//!
//! Run with: `cargo run --release --example destination_set_prediction`

use patchsim::{presets, run, PredictorChoice, ProtocolKind, SimConfig};

fn main() {
    let workload = presets::oltp();
    println!(
        "destination-set prediction on {} (16 cores, 2000 ops/core)\n",
        workload.name()
    );
    println!(
        "{:<22} {:>10} {:>12} {:>12} {:>14}",
        "policy", "runtime", "norm.runtime", "bytes/miss", "norm.traffic"
    );

    let mut base: Option<(f64, f64)> = None;
    for policy in [
        PredictorChoice::None,
        PredictorChoice::Owner,
        PredictorChoice::BroadcastIfShared,
        PredictorChoice::All,
    ] {
        let cfg = SimConfig::new(ProtocolKind::Patch, 16)
            .with_predictor(policy)
            .with_workload(workload.clone())
            .with_ops_per_core(2_000)
            .with_warmup(200)
            .with_seed(3);
        let r = run(&cfg);
        let (rt0, tr0) = *base.get_or_insert((r.runtime_cycles as f64, r.bytes_per_miss()));
        println!(
            "PATCH-{:<16} {:>10} {:>12.3} {:>12.1} {:>14.3}",
            policy.label(),
            r.runtime_cycles,
            r.runtime_cycles as f64 / rt0,
            r.bytes_per_miss(),
            r.bytes_per_miss() / tr0,
        );
    }
    println!(
        "\nExpected shape (paper §8.3): Owner gets roughly half of All's speedup\n\
         for a small traffic increase; BcastIfShared approaches All's runtime\n\
         with noticeably less traffic; All is fastest and most traffic-hungry."
    );
}
