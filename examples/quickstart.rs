//! Quickstart: build a small system, run every protocol on the paper's
//! microbenchmark, and print runtime and traffic.
//!
//! Run with: `cargo run --release --example quickstart`

use patchsim::{run, PredictorChoice, ProtocolKind, SimConfig, TrafficClass, WorkloadSpec};

fn config(kind: ProtocolKind, predictor: PredictorChoice) -> SimConfig {
    SimConfig::new(kind, 16)
        .with_predictor(predictor)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 4096,
            write_frac: 0.3,
            think_mean: 10,
        })
        .with_ops_per_core(2_000)
        .with_warmup(200)
        .with_seed(7)
}

fn main() {
    println!("patchsim quickstart: 16 cores, microbenchmark, 2000 ops/core\n");
    println!(
        "{:<22} {:>12} {:>12} {:>12} {:>10}",
        "configuration", "cycles", "bytes/miss", "missLat", "dropped"
    );

    let configs = [
        (
            "Directory",
            config(ProtocolKind::Directory, PredictorChoice::None),
        ),
        (
            "PATCH-None",
            config(ProtocolKind::Patch, PredictorChoice::None),
        ),
        (
            "PATCH-Owner",
            config(ProtocolKind::Patch, PredictorChoice::Owner),
        ),
        (
            "PATCH-BcastIfShared",
            config(ProtocolKind::Patch, PredictorChoice::BroadcastIfShared),
        ),
        (
            "PATCH-All",
            config(ProtocolKind::Patch, PredictorChoice::All),
        ),
        (
            "TokenB",
            config(ProtocolKind::TokenB, PredictorChoice::None),
        ),
    ];

    let mut baseline = None;
    for (name, cfg) in configs {
        let r = run(&cfg);
        let base = *baseline.get_or_insert(r.runtime_cycles as f64);
        println!(
            "{:<22} {:>12} {:>12.1} {:>12.1} {:>10}   ({:.3}x vs Directory)",
            name,
            r.runtime_cycles,
            r.bytes_per_miss(),
            r.miss_latency_mean,
            r.traffic.dropped_packets(),
            r.runtime_cycles as f64 / base,
        );
        if name == "PATCH-All" {
            println!(
                "{:<22} direct responses: {}, satisfied before activation: {}, tenure timeouts: {}",
                "",
                r.counters.direct_responses,
                r.counters.satisfied_before_activation,
                r.counters.tenure_timeouts
            );
            let ack = r.class_bytes_per_miss(TrafficClass::Ack);
            let dreq = r.class_bytes_per_miss(TrafficClass::DirectRequest);
            println!(
                "{:<22} ack bytes/miss: {ack:.1}, direct-request bytes/miss: {dreq:.1}",
                ""
            );
        }
    }
}
