//! Scaling with inexact directory encodings (paper §8.5, Figures 9–10):
//! coarse sharer vectors make DIRECTORY ack-bound while PATCH, which only
//! hears from true token holders, barely notices.
//!
//! Run with: `cargo run --release --example inexact_directory`

use patchsim::{
    run, LinkBandwidth, ProtocolKind, SharerEncoding, SimConfig, TrafficClass, WorkloadSpec,
};

fn config(kind: ProtocolKind, encoding: SharerEncoding) -> SimConfig {
    let n = 32;
    let protocol = patchsim::ProtocolConfig::new(kind, n).with_sharer_encoding(encoding);
    SimConfig::new(kind, n)
        .with_protocol(protocol)
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 8192,
            write_frac: 0.3,
            think_mean: 10,
        })
        .with_ops_per_core(1_000)
        .with_warmup(100)
        .with_seed(5)
}

fn main() {
    println!("inexact directory encodings (32 cores, 2 B/cycle links)\n");
    println!(
        "{:<12} {:<14} {:>12} {:>14} {:>14}",
        "protocol", "encoding", "runtime", "ack bytes/miss", "fwd bytes/miss"
    );
    for kind in [ProtocolKind::Directory, ProtocolKind::Patch] {
        let mut base = None;
        for k in [1u16, 4, 16, 32] {
            let encoding = if k == 1 {
                SharerEncoding::FullMap
            } else {
                SharerEncoding::Coarse { cores_per_bit: k }
            };
            let r = run(&config(kind, encoding));
            let b = *base.get_or_insert(r.runtime_cycles as f64);
            println!(
                "{:<12} {:<14} {:>12.3} {:>14.1} {:>14.1}",
                kind.label(),
                encoding.to_string(),
                r.runtime_cycles as f64 / b,
                r.class_bytes_per_miss(TrafficClass::Ack),
                r.class_bytes_per_miss(TrafficClass::Forward),
            );
        }
    }
    println!(
        "\nExpected shape (paper Figures 9-10): DIRECTORY's acknowledgement\n\
         traffic and runtime blow up as the encoding coarsens — every node\n\
         implicated by a coarse bit must ack — while PATCH's token holders\n\
         are the only responders, so it degrades only slightly."
    );
}
