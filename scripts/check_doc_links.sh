#!/usr/bin/env sh
# Fails if any relative markdown link in README.md or docs/ points at a
# file (or heading-anchored file) that does not exist. External links
# (http/https/mailto) are skipped — CI has no network.
#
# Usage: scripts/check_doc_links.sh  (from the repository root)
set -eu

status=0
for doc in README.md docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Extract inline markdown link targets: [text](target)
    grep -o '](\([^)]*\))' "$doc" | sed 's/^](//; s/)$//' |
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:*) continue ;;
        '#'*) continue ;; # same-file anchor
        esac
        path=${target%%#*}
        [ -n "$path" ] || continue
        if ! [ -e "$dir/$path" ]; then
            echo "::error file=$doc::dead relative link: $target"
            # Propagate failure out of the while-subshell via a marker file.
            touch .doc_link_failure
        fi
    done
done

if [ -e .doc_link_failure ]; then
    rm -f .doc_link_failure
    status=1
fi
exit $status
