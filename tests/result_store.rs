//! Integration tests for the crash-safe result store and cell-level
//! fault isolation: resumed sweeps must be byte-identical to
//! uninterrupted ones, corrupt entries must be quarantined and
//! recomputed (never trusted, never a panic), merges must detect
//! conflicts, and failed cells must be reported without aborting the
//! sweep.

use std::fs;
use std::hash::Hasher;
use std::path::{Path, PathBuf};
use std::time::Duration;

use patchsim::exp::{
    cell_key, Format, LoadOutcome, MergeReport, ResultStore, Runner, StoreError, TableError,
};
use patchsim::{run, ProtocolKind, SimConfig, SimRng, WorkloadSpec};
use patchsim_bench::{faults_plan, with_standard_columns, BenchArgs, Scale};
use patchsim_kernel::collections::FxHasher;

/// A self-cleaning temp directory under the OS temp root.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("patchsim-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        TempDir(dir)
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// A debug-build-friendly scale.
fn tiny() -> Scale {
    let mut scale = Scale::quick();
    scale.cores = 8;
    scale.ops = 40;
    scale.warmup = 20;
    scale
}

fn small_config(seed: u64) -> SimConfig {
    SimConfig::new(ProtocolKind::Patch, 4)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 32,
            write_frac: 0.3,
            think_mean: 2,
        })
        .with_ops_per_core(50)
        .with_seed(seed)
}

fn csv(table: &patchsim::exp::Table) -> String {
    let mut out = Vec::new();
    table.emit(Format::Csv, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// Every single-byte corruption of a valid entry is rejected and
/// quarantined, and the recomputed result is unchanged — the checksum
/// spans the full entry, so no flip position can slip through.
#[test]
fn every_bit_flip_is_rejected_and_recomputed() {
    let tmp = TempDir::new("bitflip");
    let store = ResultStore::open(tmp.join("store")).unwrap();
    let config = small_config(5);
    let key = cell_key(&config);
    let expected = run(&config);
    store.save(key, &expected).unwrap();
    let entry = store.dir().join(format!("{key:016x}.pse"));
    let pristine = fs::read(&entry).unwrap();

    // Seeded sampling of (position, mask) pairs plus a few structural
    // positions (magic, versions, key, length, checksum tail).
    let mut rng = SimRng::from_seed(0xB17F11);
    let mut targets: Vec<(usize, u8)> = (0..40)
        .map(|_| {
            let pos = (rng.next_u64() as usize) % pristine.len();
            let mask = 1u8 << (rng.next_u64() % 8);
            (pos, mask)
        })
        .collect();
    for pos in [0, 4, 8, 16, 24, pristine.len() - 1, pristine.len() - 8] {
        targets.push((pos, 0x01));
    }

    for (pos, mask) in targets {
        let mut corrupt = pristine.clone();
        corrupt[pos] ^= mask;
        fs::write(&entry, &corrupt).unwrap();
        match store.load(key).unwrap() {
            LoadOutcome::Quarantined { path, .. } => {
                assert!(path.exists(), "quarantined file must exist");
                let _ = fs::remove_file(path);
            }
            LoadOutcome::Hit(got) => panic!(
                "corrupt entry (byte {pos} ^ {mask:#04x}) was trusted: digest {:016x}",
                got.digest()
            ),
            LoadOutcome::Miss => panic!("entry vanished"),
        }
        // Recompute-and-save restores a loadable, identical result.
        let recomputed = run(&config);
        assert_eq!(recomputed.digest(), expected.digest());
        store.save(key, &recomputed).unwrap();
    }
}

/// Truncations at every interesting boundary are rejected.
#[test]
fn truncated_entries_are_rejected_and_recomputed() {
    let tmp = TempDir::new("truncate");
    let store = ResultStore::open(tmp.join("store")).unwrap();
    let config = small_config(6);
    let key = cell_key(&config);
    let expected = run(&config);
    store.save(key, &expected).unwrap();
    let entry = store.dir().join(format!("{key:016x}.pse"));
    let pristine = fs::read(&entry).unwrap();
    for keep in [0, 1, 4, 31, 32, 40, pristine.len() / 2, pristine.len() - 1] {
        fs::write(&entry, &pristine[..keep]).unwrap();
        assert!(
            matches!(store.load(key).unwrap(), LoadOutcome::Quarantined { .. }),
            "a {keep}-byte prefix must not decode"
        );
        store.save(key, &expected).unwrap();
    }
    // Appended garbage is rejected too (length mismatch).
    let mut padded = pristine.clone();
    padded.extend_from_slice(b"junk");
    fs::write(&entry, &padded).unwrap();
    assert!(matches!(
        store.load(key).unwrap(),
        LoadOutcome::Quarantined { .. }
    ));
}

/// An entry written by a (simulated) older code version is quarantined
/// even when its checksum is intact: the test patches the code-version
/// field and re-seals the checksum the way an old binary would have.
#[test]
fn stale_code_version_is_rejected() {
    let tmp = TempDir::new("codever");
    let store = ResultStore::open(tmp.join("store")).unwrap();
    let config = small_config(7);
    let key = cell_key(&config);
    store.save(key, &run(&config)).unwrap();
    let entry = store.dir().join(format!("{key:016x}.pse"));
    let mut bytes = fs::read(&entry).unwrap();
    // code_version lives at offset 8..12; forge an older version and
    // recompute the trailing checksum over everything before it, exactly
    // as the older binary would have sealed it.
    bytes[8..12].copy_from_slice(&9999u32.to_le_bytes());
    let body_len = bytes.len() - 8;
    let mut h = FxHasher::default();
    h.write(&bytes[..body_len]);
    let sum = h.finish();
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    fs::write(&entry, &bytes).unwrap();
    match store.load(key).unwrap() {
        LoadOutcome::Quarantined { reason, .. } => {
            assert!(reason.contains("code version"), "reason: {reason}");
        }
        other => panic!("expected quarantine, got {other:?}"),
    }
}

/// The headline resumability contract: a partially-populated store
/// resumed with a different thread count yields a byte-identical table
/// to an uninterrupted serial run without any store.
#[test]
fn partial_store_resume_is_byte_identical() {
    let tmp = TempDir::new("resume");
    let plan = || faults_plan(tiny());

    // Ground truth: serial, storeless.
    let reference = csv(&with_standard_columns(Runner::serial().run(&plan())));

    // Populate a store fully, then delete roughly half the entries to
    // simulate a sweep killed mid-flight.
    let store_dir = tmp.join("store");
    let store = ResultStore::open(&store_dir).unwrap();
    let _ = with_standard_columns(Runner::serial().with_store(store.clone()).run(&plan()));
    let entries = store.entries().unwrap();
    assert!(
        !entries.is_empty(),
        "the sweep must have populated the store"
    );
    for (i, (_, path)) in entries.iter().enumerate() {
        if i % 2 == 0 {
            fs::remove_file(path).unwrap();
        }
    }

    // Resume with a different worker count.
    let resumed = csv(&with_standard_columns(
        Runner::new()
            .with_threads(4)
            .with_store(store.clone())
            .run(&plan()),
    ));
    assert_eq!(
        reference, resumed,
        "a resumed sweep must reproduce the uninterrupted table byte-for-byte"
    );

    // And a pure-cache run (no recomputation) matches too.
    let cached = csv(&with_standard_columns(
        Runner::serial().with_store(store).run(&plan()),
    ));
    assert_eq!(reference, cached);
}

/// Merging two disjoint stores unions them; identical overlap is
/// skipped; conflicting overlap is a hard error naming both files.
#[test]
fn merge_unions_and_detects_conflicts() {
    let tmp = TempDir::new("merge");
    let a = ResultStore::open(tmp.join("a")).unwrap();
    let b = ResultStore::open(tmp.join("b")).unwrap();

    let c1 = small_config(1);
    let c2 = small_config(2);
    let c3 = small_config(3);
    let (r1, r2, r3) = (run(&c1), run(&c2), run(&c3));
    a.save(cell_key(&c1), &r1).unwrap();
    a.save(cell_key(&c2), &r2).unwrap();
    b.save(cell_key(&c2), &r2).unwrap();
    b.save(cell_key(&c3), &r3).unwrap();

    let out = tmp.join("merged");
    let report = ResultStore::merge(a.dir(), b.dir(), &out).unwrap();
    assert_eq!(
        report,
        MergeReport {
            merged: 3,
            duplicates: 1,
            quarantined: 0
        }
    );
    let merged = ResultStore::open(&out).unwrap();
    assert_eq!(merged.entries().unwrap().len(), 3);
    for (cfg, r) in [(&c1, &r1), (&c2, &r2), (&c3, &r3)] {
        match merged.load(cell_key(cfg)).unwrap() {
            LoadOutcome::Hit(got) => assert_eq!(got.digest(), r.digest()),
            other => panic!("expected hit, got {other:?}"),
        }
    }

    // Conflict: same key, different result.
    let d = ResultStore::open(tmp.join("d")).unwrap();
    d.save(cell_key(&c1), &r2).unwrap();
    let err = ResultStore::merge(a.dir(), d.dir(), &tmp.join("conflict-out")).unwrap_err();
    match err {
        StoreError::Conflict { key, first, second } => {
            assert_eq!(key, cell_key(&c1));
            assert!(first.exists(), "conflict must name a real first file");
            assert!(second.exists(), "conflict must name a real second file");
            assert_ne!(first, second);
        }
        other => panic!("expected conflict, got {other}"),
    }
}

/// Corrupt entries in a merge input are quarantined and counted, not
/// copied.
#[test]
fn merge_quarantines_corrupt_inputs() {
    let tmp = TempDir::new("merge-corrupt");
    let a = ResultStore::open(tmp.join("a")).unwrap();
    let b = ResultStore::open(tmp.join("b")).unwrap();
    let c1 = small_config(1);
    let c2 = small_config(2);
    a.save(cell_key(&c1), &run(&c1)).unwrap();
    b.save(cell_key(&c2), &run(&c2)).unwrap();
    // Truncate b's entry.
    let (_, path) = b.entries().unwrap().pop().unwrap();
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

    let report = ResultStore::merge(a.dir(), b.dir(), &tmp.join("out")).unwrap();
    assert_eq!(
        report,
        MergeReport {
            merged: 1,
            duplicates: 0,
            quarantined: 1
        }
    );
    assert!(b.dir().join("corrupt").read_dir().unwrap().next().is_some());
}

/// A store-enabled run still honors trace recording: the recording cell
/// executes (a cache hit must not skip the run that writes the trace).
#[test]
fn store_does_not_swallow_trace_recording() {
    let tmp = TempDir::new("trace");
    let store = ResultStore::open(tmp.join("store")).unwrap();
    let plan = || faults_plan(tiny());
    // Warm the store fully.
    let _ = Runner::serial().with_store(store.clone()).run(&plan());
    // Re-run with recording armed on the first cell: the trace file must
    // appear even though every result is cached.
    let trace_path = tmp.join("cell.ptrc");
    let mut recorded = plan();
    recorded
        .cells_mut()
        .first_mut()
        .unwrap()
        .config
        .record_trace = Some(trace_path.clone());
    let _ = Runner::serial().with_store(store).run(&recorded);
    assert!(
        trace_path.exists(),
        "recording run must not be skipped by a cache hit"
    );
}

/// The table-level error paths introduced for user-supplied axes.
#[test]
fn table_errors_are_typed_not_panics() {
    let plan = faults_plan(tiny());
    let table = Runner::serial().run(&plan);
    let err = table
        .try_normalized_column("norm", 3, "bogus-axis", "none", |_| 1.0)
        .unwrap_err();
    match err {
        TableError::UnknownAxis { ref axis, ref axes } => {
            assert_eq!(axis, "bogus-axis");
            assert_eq!(axes, &["config", "faults", "fabric"]);
        }
        ref other => panic!("expected UnknownAxis, got {other}"),
    }
    assert!(err.to_string().contains("bogus-axis"));
}

/// CLI surface: the new flags parse strictly.
#[test]
fn cli_flags_parse_strictly() {
    let args = |list: &[&str]| {
        BenchArgs::try_parse(&list.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    };
    let (ok, _) = args(&[
        "--quick",
        "--store",
        "results/store",
        "--cell-timeout",
        "30",
        "--retries",
        "2",
    ])
    .unwrap();
    assert_eq!(ok.store.as_deref(), Some(Path::new("results/store")));
    assert_eq!(ok.cell_timeout, Some(Duration::from_secs(30)));
    assert_eq!(ok.retries, Some(2));
    let (defaults, _) = args(&["--quick"]).unwrap();
    assert_eq!(defaults.store, None);
    assert_eq!(defaults.cell_timeout, None);
    assert_eq!(defaults.retries, None);
    assert!(args(&["--store"]).is_err());
    assert!(args(&["--cell-timeout"]).is_err());
    assert!(args(&["--cell-timeout", "0"]).is_err());
    assert!(args(&["--cell-timeout", "soon"]).is_err());
    assert!(args(&["--retries"]).is_err());
    assert!(args(&["--retries", "-1"]).is_err());
    // 0 retries is valid (disables retries).
    let (zero, _) = args(&["--retries", "0"]).unwrap();
    assert_eq!(zero.retries, Some(0));
}
