//! Adversarial-order delivery fuzzing.
//!
//! The timing simulator only explores message orderings that some
//! latency assignment can produce. This harness is stronger: it drives
//! the controllers directly and delivers pending messages in *uniformly
//! random* order (seeded), interleaved with eligible timer firings —
//! every interleaving of an unordered network is fair game. Throughout,
//! it checks the single-writer/read-latest property from completion
//! versions and finishes by asserting quiescence and token conservation.

use std::collections::HashMap;

use patchsim::{AccessKind, BlockAddr, Cycle, NodeId, PredictorChoice, ProtocolKind, SimRng};
use patchsim_mem::TokenSet;
use patchsim_protocol::{
    build_controller, Controller, CoreResponse, MemOp, Msg, Outbox, ProtocolConfig, TimerKey,
};

struct Harness {
    nodes: Vec<Box<dyn Controller + Send>>,
    pending: Vec<(NodeId, Msg)>,
    timers: Vec<(NodeId, Cycle, TimerKey)>,
    clock: Cycle,
    rng: SimRng,
    /// Per-node outstanding op (blocking cores).
    outstanding: Vec<Option<MemOp>>,
    ops_left: Vec<u32>,
    completed: u64,
    /// SWMR checker state: last committed version per block.
    versions: HashMap<BlockAddr, u64>,
    total_tokens: u32,
}

impl Harness {
    fn new(config: &ProtocolConfig, ops_per_node: u32, seed: u64) -> Self {
        let n = config.num_nodes;
        Harness {
            nodes: (0..n)
                .map(|i| build_controller(config, NodeId::new(i)))
                .collect(),
            pending: Vec::new(),
            timers: Vec::new(),
            clock: Cycle::ZERO,
            rng: SimRng::from_seed(seed),
            outstanding: vec![None; n as usize],
            ops_left: vec![ops_per_node; n as usize],
            completed: 0,
            versions: HashMap::new(),
            total_tokens: config.total_tokens,
        }
    }

    fn collect(&mut self, from: NodeId, out: Outbox) {
        for send in out.sends {
            for dest in send.dests.iter() {
                self.pending.push((dest, send.msg.clone()));
            }
        }
        for (at, key) in out.timers {
            self.timers.push((from, at, key));
        }
        for c in out.completions {
            self.check_completion(from, c.addr, c.kind, c.version);
        }
    }

    fn check_completion(&mut self, node: NodeId, addr: BlockAddr, kind: AccessKind, version: u64) {
        let op = self.outstanding[node.index()]
            .take()
            .expect("completion without an outstanding op");
        assert_eq!(op.addr, addr);
        let last = self.versions.entry(addr).or_insert(0);
        match kind {
            AccessKind::Write => {
                assert_eq!(version, *last + 1, "two writers raced on {addr}");
                *last = version;
            }
            AccessKind::Read => {
                assert_eq!(version, *last, "stale read of {addr}");
            }
        }
        self.completed += 1;
    }

    fn maybe_issue(&mut self, blocks: u64) {
        for i in 0..self.nodes.len() {
            if self.outstanding[i].is_some() || self.ops_left[i] == 0 {
                continue;
            }
            self.ops_left[i] -= 1;
            let op = MemOp {
                addr: BlockAddr::new(self.rng.below(blocks)),
                kind: if self.rng.chance(0.5) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
            };
            self.outstanding[i] = Some(op);
            let node = NodeId::new(i as u16);
            let mut out = Outbox::new();
            self.clock += 1;
            let resp = self.nodes[i].core_request(op, self.clock, &mut out);
            // Hits complete synchronously.
            if let CoreResponse::Hit { version } = resp {
                self.check_completion(node, op.addr, op.kind, version);
            }
            self.collect(node, out);
        }
    }

    /// Delivers one uniformly random pending message.
    fn deliver_random(&mut self) -> bool {
        if self.pending.is_empty() {
            return false;
        }
        let idx = self.rng.below(self.pending.len() as u64) as usize;
        let (dest, msg) = self.pending.swap_remove(idx);
        self.clock += 1;
        let mut out = Outbox::new();
        self.nodes[dest.index()].handle_message(msg, self.clock, &mut out);
        self.collect(dest, out);
        true
    }

    /// Fires one random timer, jumping the clock to its deadline.
    fn fire_random_timer(&mut self) -> bool {
        if self.timers.is_empty() {
            return false;
        }
        let idx = self.rng.below(self.timers.len() as u64) as usize;
        let (node, at, key) = self.timers.swap_remove(idx);
        self.clock = self.clock.max(at) + 1;
        let mut out = Outbox::new();
        self.nodes[node.index()].timer_fired(key, self.clock, &mut out);
        self.collect(node, out);
        true
    }

    fn run(&mut self, blocks: u64) {
        let mut idle_rounds = 0;
        loop {
            self.maybe_issue(blocks);
            // Mostly deliver messages; occasionally fire a timer early
            // relative to other traffic (always at/after its deadline).
            let did = if !self.pending.is_empty() && !self.rng.chance(0.1) {
                self.deliver_random()
            } else {
                self.fire_random_timer() || self.deliver_random()
            };
            if !did {
                if self.ops_left.iter().all(|&o| o == 0)
                    && self.outstanding.iter().all(|o| o.is_none())
                {
                    break;
                }
                idle_rounds += 1;
                if idle_rounds >= 10_000 {
                    for (i, o) in self.outstanding.iter().enumerate() {
                        if let Some(op) = o {
                            eprintln!("node {i}: outstanding {op:?}");
                        }
                    }
                    for b in 0..blocks {
                        let addr = BlockAddr::new(b);
                        for (i, node) in self.nodes.iter().enumerate() {
                            if let Some(t) = node.held_tokens(addr) {
                                if !t.is_empty() {
                                    eprintln!("block {b}: node {i} holds {t}");
                                }
                            }
                        }
                    }
                    panic!("stuck: nothing to deliver but ops outstanding");
                }
            } else {
                idle_rounds = 0;
            }
        }
    }

    fn assert_final_invariants(&self, blocks: u64) {
        for node in &self.nodes {
            assert!(node.is_quiescent(), "controller not quiescent");
        }
        // Token conservation over every touched block.
        for b in 0..blocks {
            let addr = BlockAddr::new(b);
            let mut total = TokenSet::empty();
            let mut token_protocol = true;
            for node in &self.nodes {
                match node.held_tokens(addr) {
                    Some(t) => total.merge(t),
                    None => token_protocol = false,
                }
            }
            if token_protocol {
                assert_eq!(
                    total.count(),
                    self.total_tokens,
                    "token conservation violated for {addr}"
                );
                assert!(total.has_owner(), "owner token lost for {addr}");
            }
        }
    }
}

fn fuzz(kind: ProtocolKind, predictor: PredictorChoice, seeds: std::ops::Range<u64>) {
    const BLOCKS: u64 = 6;
    const OPS: u32 = 60;
    for seed in seeds {
        for n in [2u16, 3, 4] {
            let config = ProtocolConfig::new(kind, n).with_predictor(predictor);
            let mut h = Harness::new(&config, OPS, seed);
            h.run(BLOCKS);
            assert_eq!(
                h.completed,
                (n as u64) * OPS as u64,
                "{kind}/{} n={n} seed={seed}",
                predictor.label()
            );
            h.assert_final_invariants(BLOCKS);
        }
    }
}

#[test]
fn adversarial_patch_none() {
    fuzz(ProtocolKind::Patch, PredictorChoice::None, 0..25);
}

#[test]
fn adversarial_patch_all() {
    fuzz(ProtocolKind::Patch, PredictorChoice::All, 0..25);
}

#[test]
fn adversarial_patch_owner() {
    fuzz(ProtocolKind::Patch, PredictorChoice::Owner, 0..8);
}

#[test]
fn adversarial_tokenb() {
    fuzz(ProtocolKind::TokenB, PredictorChoice::None, 0..25);
}

#[test]
fn adversarial_directory() {
    fuzz(ProtocolKind::Directory, PredictorChoice::None, 0..25);
}
