//! Directed token-tenure scenarios: the paper's Figure 1/2 race and the
//! surrounding forward-progress machinery, driven at controller level
//! with adversarial message ordering.

use patchsim::{AccessKind, BlockAddr, Cycle, NodeId, PredictorChoice, ProtocolKind};
use patchsim_protocol::{
    Controller, MemOp, Msg, MsgBody, OutMsg, Outbox, PatchController, ProtocolConfig, RequestStyle,
    TimerKey, TimerKind,
};

/// A controllable network for adversarial delivery schedules.
struct Net {
    in_flight: Vec<(NodeId, Msg)>,
    timers: Vec<(NodeId, Cycle, TimerKey)>,
    completions: Vec<NodeId>,
}

impl Net {
    fn new() -> Self {
        Net {
            in_flight: Vec::new(),
            timers: Vec::new(),
            completions: Vec::new(),
        }
    }

    fn collect(&mut self, from: NodeId, out: Outbox) {
        for OutMsg { dests, msg, .. } in out.sends {
            for dest in dests.iter() {
                self.in_flight.push((dest, msg.clone()));
            }
        }
        for (at, key) in out.timers {
            self.timers.push((from, at, key));
        }
        for _ in out.completions {
            self.completions.push(from);
        }
    }

    fn deliver_first(
        &mut self,
        nodes: &mut [PatchController],
        now: Cycle,
        pred: impl Fn(&NodeId, &Msg) -> bool,
    ) -> bool {
        let Some(idx) = self.in_flight.iter().position(|(d, m)| pred(d, m)) else {
            return false;
        };
        let (dest, msg) = self.in_flight.remove(idx);
        let mut out = Outbox::new();
        nodes[dest.index()].handle_message(msg, now, &mut out);
        self.collect(dest, out);
        true
    }

    fn drain(&mut self, nodes: &mut [PatchController], now: Cycle) {
        while self.deliver_first(nodes, now, |_, _| true) {}
    }

    fn fire_timer(&mut self, nodes: &mut [PatchController], node: NodeId, kind: TimerKind) -> bool {
        let Some(idx) = self
            .timers
            .iter()
            .position(|(n, _, k)| *n == node && k.kind == kind)
        else {
            return false;
        };
        let (n, at, key) = self.timers.remove(idx);
        let mut out = Outbox::new();
        nodes[n.index()].timer_fired(key, at, &mut out);
        self.collect(n, out);
        true
    }
}

fn make_nodes(n: u16) -> Vec<PatchController> {
    let config = ProtocolConfig::new(ProtocolKind::Patch, n).with_predictor(PredictorChoice::All);
    (0..n)
        .map(|i| PatchController::new(config.clone(), NodeId::new(i)))
        .collect()
}

fn request(nodes: &mut [PatchController], net: &mut Net, node: u16, kind: AccessKind, at: u64) {
    let mut out = Outbox::new();
    let resp = nodes[node as usize].core_request(
        MemOp {
            addr: BlockAddr::new(0),
            kind,
        },
        Cycle::new(at),
        &mut out,
    );
    // A racing writer that still holds all tokens hits silently; count it
    // as completed just like a miss completion.
    if matches!(resp, patchsim_protocol::CoreResponse::Hit { .. }) {
        net.completions.push(NodeId::new(node));
    }
    net.collect(NodeId::new(node), out);
}

/// The full Figure 1 -> Figure 2 scenario (see also the
/// `token_tenure_race` example, which narrates the same schedule).
#[test]
fn figure2_race_resolves_via_tenure() {
    let mut nodes = make_nodes(4);
    let mut net = Net::new();
    let block = BlockAddr::new(0);
    let p = NodeId::new;

    // Setup: P1 writes, P2 reads (owner migrates to P2).
    request(&mut nodes, &mut net, 1, AccessKind::Write, 0);
    net.drain(&mut nodes, Cycle::new(10));
    request(&mut nodes, &mut net, 2, AccessKind::Read, 20);
    net.drain(&mut nodes, Cycle::new(30));
    net.completions.clear();

    // P3's write: direct requests delivered, indirect delayed.
    request(&mut nodes, &mut net, 3, AccessKind::Write, 2000);
    for target in [1u16, 2] {
        assert!(net.deliver_first(&mut nodes, Cycle::new(2005), |d, m| {
            *d == p(target) && matches!(m.body, MsgBody::Request { .. })
        }));
    }
    // Token responses reach P3: it performs untenured.
    for _ in 0..2 {
        assert!(net.deliver_first(&mut nodes, Cycle::new(2010), |d, m| {
            *d == p(3) && matches!(m.body, MsgBody::Data { .. } | MsgBody::Ack { .. })
        }));
    }
    assert_eq!(
        net.completions,
        vec![p(3)],
        "P3 performed before activation"
    );
    assert_eq!(nodes[3].counters().satisfied_before_activation, 1);
    net.completions.clear();

    // P1's racing write wins at the home.
    request(&mut nodes, &mut net, 1, AccessKind::Write, 2020);
    assert!(net.deliver_first(&mut nodes, Cycle::new(2030), |d, m| {
        *d == p(0)
            && matches!(m.body, MsgBody::Request { requester, style: RequestStyle::Indirect, .. }
                if requester == p(1))
    }));
    net.drain(&mut nodes, Cycle::new(2040));
    assert!(net.completions.is_empty(), "P1 cannot complete yet");

    // Tenure: P3 discards; home redirects to P1; P1 completes.
    assert!(net.fire_timer(&mut nodes, p(3), TimerKind::Tenure));
    assert_eq!(nodes[3].counters().tenure_timeouts, 1);
    net.drain(&mut nodes, Cycle::new(3000));
    assert!(net.completions.contains(&p(1)), "P1's write completed");

    // Everything quiesces; P3 ends with all tokens (it was activated last).
    assert!(nodes.iter().all(|n| n.is_quiescent()));
    let p3 = nodes[3].held_tokens(block).unwrap();
    assert_eq!(p3.count(), 4);
    assert!(p3.requires_data(), "P3 holds a dirty-owner M copy");
}

/// Without the race, direct requests complete misses in two hops and the
/// activation is off the critical path.
#[test]
fn direct_request_fast_path_without_race() {
    let mut nodes = make_nodes(4);
    let mut net = Net::new();
    let p = NodeId::new;

    request(&mut nodes, &mut net, 1, AccessKind::Write, 0);
    net.drain(&mut nodes, Cycle::new(10));
    net.completions.clear();

    // P2 reads; deliver ONLY the direct request and its response.
    request(&mut nodes, &mut net, 2, AccessKind::Read, 2000);
    assert!(net.deliver_first(&mut nodes, Cycle::new(2005), |d, m| {
        *d == p(1)
            && matches!(
                m.body,
                MsgBody::Request {
                    style: RequestStyle::Direct,
                    ..
                }
            )
    }));
    assert!(net.deliver_first(&mut nodes, Cycle::new(2010), |d, m| {
        *d == p(2) && matches!(m.body, MsgBody::Data { .. })
    }));
    assert_eq!(net.completions, vec![p(2)], "read done in 2 hops");
    // The indirect path then merely tidies up.
    net.drain(&mut nodes, Cycle::new(2100));
    assert!(nodes.iter().all(|n| n.is_quiescent()));
}

/// Untenured tokens may satisfy misses (the tenure process is off the
/// critical path), but the transaction stays open until activation.
#[test]
fn untenured_tokens_satisfy_but_do_not_deactivate() {
    let mut nodes = make_nodes(4);
    let mut net = Net::new();
    let p = NodeId::new;

    request(&mut nodes, &mut net, 1, AccessKind::Write, 0);
    net.drain(&mut nodes, Cycle::new(10));
    net.completions.clear();

    request(&mut nodes, &mut net, 2, AccessKind::Write, 2000);
    // Deliver only the direct request; P1 hands over all four tokens.
    assert!(net.deliver_first(&mut nodes, Cycle::new(2005), |d, _| *d == p(1)));
    assert!(net.deliver_first(&mut nodes, Cycle::new(2010), |d, m| {
        *d == p(2) && matches!(m.body, MsgBody::Data { .. })
    }));
    assert_eq!(net.completions, vec![p(2)]);
    assert!(!nodes[2].is_quiescent(), "TBE open until activation");
    net.drain(&mut nodes, Cycle::new(2100));
    assert!(nodes[2].is_quiescent(), "activation closed the transaction");
}

/// A tenure timeout before activation does not lose written data: the
/// dirty owner token carries it home and back.
#[test]
fn tenure_timeout_preserves_dirty_data() {
    let mut nodes = make_nodes(4);
    let mut net = Net::new();
    let p = NodeId::new;

    request(&mut nodes, &mut net, 1, AccessKind::Write, 0);
    net.drain(&mut nodes, Cycle::new(10));
    net.completions.clear();

    // P2 writes via direct requests only (indirect delayed), performs,
    // then times out before its activation arrives.
    request(&mut nodes, &mut net, 2, AccessKind::Write, 2000);
    assert!(net.deliver_first(&mut nodes, Cycle::new(2005), |d, _| *d == p(1)));
    assert!(net.deliver_first(&mut nodes, Cycle::new(2010), |d, m| {
        *d == p(2) && matches!(m.body, MsgBody::Data { .. })
    }));
    assert_eq!(net.completions, vec![p(2)], "write performed (version 2)");
    assert!(net.fire_timer(&mut nodes, p(2), TimerKind::Tenure));
    assert_eq!(nodes[2].counters().tenure_timeouts, 1);
    // The discarded tokens carry the dirty data home; when P2's indirect
    // request finally activates, everything flows back and quiesces.
    net.drain(&mut nodes, Cycle::new(3000));
    assert!(nodes.iter().all(|n| n.is_quiescent()));

    // P3 now reads and must observe version 2 (P1's write was 1, P2's 2).
    request(&mut nodes, &mut net, 3, AccessKind::Read, 4000);
    net.drain(&mut nodes, Cycle::new(4100));
    assert_eq!(net.completions.last(), Some(&p(3)));
}

/// Multiple racing writers with fully adversarial direct-request
/// interleavings still all complete (the queue at the home serializes
/// activations).
#[test]
fn three_way_write_race_completes() {
    let mut nodes = make_nodes(4);
    let mut net = Net::new();

    request(&mut nodes, &mut net, 1, AccessKind::Write, 0);
    net.drain(&mut nodes, Cycle::new(10));
    net.completions.clear();

    // All three race.
    request(&mut nodes, &mut net, 1, AccessKind::Write, 2000);
    request(&mut nodes, &mut net, 2, AccessKind::Write, 2000);
    request(&mut nodes, &mut net, 3, AccessKind::Write, 2000);
    // Deliver everything in whatever order the queue happens to hold,
    // repeatedly firing every pending tenure timer, until the whole
    // system quiesces.
    for round in 0..50 {
        let now = Cycle::new(2100 + round * 1000);
        net.drain(&mut nodes, now);
        let mut fired = false;
        for n in [1u16, 2, 3] {
            while net.fire_timer(&mut nodes, NodeId::new(n), TimerKind::Tenure) {
                fired = true;
            }
        }
        net.drain(&mut nodes, now + 500);
        if !fired && net.in_flight.is_empty() && nodes.iter().all(|n| n.is_quiescent()) {
            break;
        }
    }
    assert_eq!(net.completions.len(), 3, "all three writes completed");
    assert!(nodes.iter().all(|n| n.is_quiescent()));
}
