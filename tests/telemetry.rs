//! Integration tests of the telemetry layer's core contract: observation
//! is strictly read-only (no digest drift, no thread-count sensitivity),
//! span phases partition the measured miss latency exactly, and the
//! flight recorder actually produces a parseable dump when a liveness
//! oracle trips.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use patchsim::exp::{AxisValue, Runner, Sweep};
use patchsim::{ProtocolKind, SimConfig, WorkloadSpec};

/// Self-cleaning scratch directory (no tempfile dependency).
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("patchsim-telemetry-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        TempDir(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn base_config(kind: ProtocolKind) -> SimConfig {
    SimConfig::new(kind, 8)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 128,
            write_frac: 0.4,
            think_mean: 3,
        })
        .with_ops_per_core(120)
        .with_warmup(30)
}

/// The zero-interference contract: a run with every telemetry feature on
/// must produce a `RunResult` that digests identically to the same run
/// with telemetry off — sampling, spans, the flight recorder, and
/// profiling observe the simulation without perturbing it.
#[test]
fn telemetry_never_changes_the_result_digest() {
    let tmp = TempDir::new("digest");
    for kind in [
        ProtocolKind::Directory,
        ProtocolKind::Patch,
        ProtocolKind::TokenB,
    ] {
        let off = patchsim::run(&base_config(kind));
        let on_config = base_config(kind)
            .with_metrics(tmp.path().join("metrics.jsonl"), 200)
            .with_spans()
            .with_flight_recorder(tmp.path())
            .with_profile();
        let on = patchsim::run(&on_config);
        assert_eq!(off.digest(), on.digest(), "digest drift under {kind:?}");
        assert_eq!(off.events_processed, on.events_processed);
        assert!(on.spans.is_some(), "spans requested but not recorded");
        assert!(on.profile.is_some(), "profile requested but not recorded");
        assert!(off.spans.is_none() && off.profile.is_none());
    }
    // The metrics series was actually written: a versioned header line
    // plus at least one sample row.
    let series = std::fs::read_to_string(tmp.path().join("metrics.jsonl")).expect("metrics file");
    let mut lines = series.lines();
    let header = lines.next().expect("header line");
    assert!(
        header.contains("\"format\":\"patchsim-metrics\""),
        "{header}"
    );
    assert!(header.contains("\"protocol\":"), "{header}");
    assert!(lines.next().is_some(), "no sample rows in {series}");
}

/// A two-cell plan whose first cell samples metrics to `path`.
fn metrics_plan(path: &Path) -> patchsim::exp::ExperimentPlan {
    let mut plan = Sweep::new("metrics determinism", base_config(ProtocolKind::Patch))
        .axis(
            "config",
            vec![
                AxisValue::new("PATCH", |c| c),
                AxisValue::new("Directory", |c| c.with_kind(ProtocolKind::Directory)),
                AxisValue::new("TokenB", |c| c.with_kind(ProtocolKind::TokenB)),
            ],
        )
        .build();
    plan.cells_mut()
        .first_mut()
        .unwrap()
        .config
        .telemetry
        .metrics = Some(path.to_path_buf());
    plan.cells_mut()
        .first_mut()
        .unwrap()
        .config
        .telemetry
        .metrics_every = 250;
    plan
}

/// Parallelism is across cells, never within a run, so the sampled time
/// series must be byte-identical no matter how many workers execute the
/// sweep.
#[test]
fn metrics_series_is_byte_identical_across_thread_counts() {
    let tmp = TempDir::new("threads");
    let serial_path = tmp.path().join("t1.jsonl");
    let pooled_path = tmp.path().join("t4.jsonl");
    Runner::serial().run(&metrics_plan(&serial_path));
    Runner::new()
        .with_threads(4)
        .run(&metrics_plan(&pooled_path));
    let serial = std::fs::read(&serial_path).expect("serial metrics");
    let pooled = std::fs::read(&pooled_path).expect("pooled metrics");
    assert!(!serial.is_empty());
    assert_eq!(serial, pooled, "metrics series depends on thread count");
}

/// Tripping the starvation watchdog must (a) enrich the panic with run
/// context and (b) dump the flight recorder to a parseable `.fdr` file
/// whose path the panic message names.
#[test]
fn watchdog_trip_dumps_a_parseable_flight_recording() {
    let tmp = TempDir::new("fdr");
    let config = base_config(ProtocolKind::Patch)
        .with_flight_recorder(tmp.path())
        // Far below any real miss latency: the first watchdog check
        // finds a starved core and trips.
        .with_liveness_horizon(10);
    let panic = catch_unwind(AssertUnwindSafe(|| patchsim::run(&config)))
        .expect_err("watchdog should have tripped");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_else(|| panic.downcast_ref::<&str>().unwrap_or(&"").to_string());
    assert!(message.contains("liveness violation"), "{message}");
    for context in ["protocol=", "workload=", "seed="] {
        assert!(message.contains(context), "missing {context} in {message}");
    }
    let dump_path = message
        .split("flight recorder: ")
        .nth(1)
        .unwrap_or_else(|| panic!("no dump path in {message}"))
        .trim();
    assert!(dump_path.ends_with(".fdr"), "{dump_path}");
    let dump = std::fs::read_to_string(dump_path).expect("read .fdr dump");
    let mut lines = dump.lines();
    let header = lines.next().expect("dump header");
    assert!(header.contains("\"format\":\"patchsim-fdr\""), "{header}");
    assert!(
        header.contains("\"reason\":\"starvation watchdog\""),
        "{header}"
    );
    let records: Vec<&str> = lines.collect();
    assert!(!records.is_empty(), "dump has no event records");
    assert!(records.iter().all(|r| r.contains("\"cycle\":")), "{dump}");
}

/// The span phases are a partition of the measured miss latency: for
/// every protocol, network + home + token-wait cycles sum to exactly the
/// end-to-end measured miss cycles, one span per measured miss.
#[test]
fn span_phases_reconcile_with_measured_miss_latency() {
    for kind in [
        ProtocolKind::Directory,
        ProtocolKind::Patch,
        ProtocolKind::TokenB,
    ] {
        let result = patchsim::run(&base_config(kind).with_spans());
        let spans = result.spans.as_ref().expect("spans recorded");
        assert_eq!(
            spans.network.count(),
            result.miss_latency.count(),
            "one span per measured miss under {kind:?}"
        );
        assert_eq!(
            spans.network.sum() + spans.home.sum() + spans.token_wait.sum(),
            result.miss_latency.sum(),
            "span phases do not partition miss latency under {kind:?}"
        );
        // Closed-loop workloads have no arrival queue to wait in.
        assert_eq!(spans.queue_wait.count(), 0);
    }
}
