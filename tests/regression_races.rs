//! Regression tests for races found by the adversarial-delivery fuzzer
//! during development. Each test pins one concrete interleaving that
//! previously deadlocked or corrupted protocol state; see DESIGN.md §3.7
//! for the analysis.

use patchsim::{AccessKind, BlockAddr, Cycle, NodeId, PredictorChoice, ProtocolKind};
use patchsim_mem::{OwnerStatus, TokenSet};
use patchsim_protocol::{
    Controller, MemOp, Msg, MsgBody, Outbox, PatchController, ProtocolConfig, TokenBController,
};

fn patch(n: u16, node: u16) -> PatchController {
    PatchController::new(
        ProtocolConfig::new(ProtocolKind::Patch, n).with_predictor(PredictorChoice::All),
        NodeId::new(node),
    )
}

fn tokenb(n: u16, node: u16) -> TokenBController {
    TokenBController::new(
        ProtocolConfig::new(ProtocolKind::TokenB, n),
        NodeId::new(node),
    )
}

/// Bug 1: a standalone activation arriving after another activation
/// carrier already closed the transaction must be ignored, not crash.
#[test]
fn late_standalone_activation_is_stale() {
    let mut c = patch(4, 1);
    let addr = BlockAddr::new(2);
    let mut out = Outbox::new();
    c.core_request(
        MemOp {
            addr,
            kind: AccessKind::Write,
        },
        Cycle::ZERO,
        &mut out,
    );
    // A redirect carrying the activation flag satisfies and activates the
    // transaction; it deactivates and closes.
    let mut out = Outbox::new();
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::Data {
                from: NodeId::new(2),
                serial: 0,
                tokens: TokenSet::full(4, OwnerStatus::Clean),
                version: 0,
                acks_expected: 0,
                exclusive: false,
                dirty: false,
                activation: true,
            },
        ),
        Cycle::new(50),
        &mut out,
    );
    assert!(c.is_quiescent());
    // The standalone activation the home sent earlier now arrives late:
    // previously this hit an `expect("activation without a miss")`.
    let mut out = Outbox::new();
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::Activation {
                serial: 0,
                acks_expected: 0,
                exclusive: false,
            },
        ),
        Cycle::new(60),
        &mut out,
    );
    assert!(out.sends.is_empty());
    assert!(c.is_quiescent());
}

/// Bug 2: an activation-flagged response from a *previous* transaction on
/// the same block must not activate the current transaction (its tokens
/// are still merged).
#[test]
fn stale_activation_flag_does_not_activate_new_transaction() {
    let mut c = patch(4, 1);
    let addr = BlockAddr::new(2);
    // Transaction 0: write completes and deactivates normally.
    let mut out = Outbox::new();
    c.core_request(
        MemOp {
            addr,
            kind: AccessKind::Write,
        },
        Cycle::ZERO,
        &mut out,
    );
    let mut out = Outbox::new();
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::Data {
                from: NodeId::new(2),
                serial: 0,
                tokens: TokenSet::full(4, OwnerStatus::Clean),
                version: 0,
                acks_expected: 0,
                exclusive: false,
                dirty: false,
                activation: true,
            },
        ),
        Cycle::new(50),
        &mut out,
    );
    assert!(c.is_quiescent());
    // Its tokens leave again (forwarded request from a racing writer).
    let mut out = Outbox::new();
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::Fwd {
                kind: AccessKind::Write,
                requester: NodeId::new(3),
                serial: 7,
                acks_expected: 0,
                exclusive: false,
            },
        ),
        Cycle::new(60),
        &mut out,
    );
    // Transaction 1 (serial 1): a new write miss on the same block.
    let mut out = Outbox::new();
    c.core_request(
        MemOp {
            addr,
            kind: AccessKind::Write,
        },
        Cycle::new(2000),
        &mut out,
    );
    // A LATE ack from transaction 0's era arrives, activation flag set but
    // serial 0: the tokens must merge, the activation must NOT apply.
    let mut out = Outbox::new();
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::Ack {
                from: NodeId::new(0),
                serial: 0, // stale serial
                tokens: TokenSet::plain(1),
                activation: true,
            },
        ),
        Cycle::new(2010),
        &mut out,
    );
    // Were the stale activation applied, the controller would deactivate
    // as soon as it became satisfied, producing a bogus Deactivate while
    // the home is busy with another requester. Verify it still considers
    // itself non-activated: satisfying the miss must NOT deactivate.
    let mut out = Outbox::new();
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::Data {
                from: NodeId::new(3),
                serial: 1,
                tokens: TokenSet::full(3, OwnerStatus::Dirty),
                version: 2,
                acks_expected: 0,
                exclusive: false,
                dirty: true,
                activation: false,
            },
        ),
        Cycle::new(2020),
        &mut out,
    );
    assert_eq!(out.completions.len(), 1, "performed with untenured tokens");
    assert!(
        out.sends
            .iter()
            .all(|s| !matches!(s.msg.body, MsgBody::Deactivate { .. })),
        "must not deactivate before its own activation arrives"
    );
    assert!(!c.is_quiescent());
}

/// Bug 3a: a PersistentDeactivate for an old starver reordered after the
/// next starver's PersistentActivate must not clear the fresh entry.
#[test]
fn reordered_persistent_deactivate_does_not_clobber_next_starver() {
    let mut c = tokenb(4, 1);
    let addr = BlockAddr::new(2);
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::PersistentActivate {
                starver: NodeId::new(3),
                kind: AccessKind::Write,
                serial: 0,
            },
        ),
        Cycle::new(10),
        &mut Outbox::new(),
    );
    // The deactivation broadcast for the PREVIOUS starver (node 0)
    // arrives late.
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::PersistentDeactivate {
                starver: NodeId::new(0),
                serial: 0,
            },
        ),
        Cycle::new(20),
        &mut Outbox::new(),
    );
    // Node 3's entry must survive: tokens arriving now still forward.
    let mut out = Outbox::new();
    c.handle_message(
        Msg::new(
            addr,
            MsgBody::Ack {
                from: NodeId::new(2),
                serial: 0,
                tokens: TokenSet::plain(2),
                activation: false,
            },
        ),
        Cycle::new(30),
        &mut out,
    );
    assert_eq!(out.sends.len(), 1);
    assert_eq!(out.sends[0].dests.as_single(), Some(NodeId::new(3)));
}

/// Bug 3b: a requester that completed before its persistent request
/// reached the home must release the arbiter when the stale activation
/// finally arrives — otherwise the entry stays active forever and every
/// later starver queues behind it.
#[test]
fn stale_persistent_activation_is_released_by_starver() {
    let mut home = tokenb(4, 2); // home of block 2
    let addr = BlockAddr::new(2);
    // Node 1's persistent request arrives (its miss actually completed
    // already, but the home cannot know).
    let mut out = Outbox::new();
    home.handle_message(
        Msg::new(
            addr,
            MsgBody::Request {
                kind: AccessKind::Write,
                requester: NodeId::new(1),
                serial: 5,
                style: patchsim_protocol::RequestStyle::Persistent,
            },
        ),
        Cycle::new(10),
        &mut out,
    );
    assert!(out.sends.iter().any(|s| matches!(
        s.msg.body,
        MsgBody::PersistentActivate { starver, .. } if starver == NodeId::new(1)
    )));

    // Node 1 receives its own activation with no transaction open: it
    // must answer with a deactivation to release the arbiter.
    let mut n1 = tokenb(4, 1);
    let mut out = Outbox::new();
    n1.handle_message(
        Msg::new(
            addr,
            MsgBody::PersistentActivate {
                starver: NodeId::new(1),
                kind: AccessKind::Write,
                serial: 5,
            },
        ),
        Cycle::new(20),
        &mut out,
    );
    let deact = out
        .sends
        .iter()
        .find(|s| matches!(s.msg.body, MsgBody::Deactivate { .. }))
        .expect("stale activation must be released");
    assert_eq!(
        deact.dests.as_single(),
        Some(NodeId::new(2)),
        "to the arbiter"
    );

    // The home processes it: entry freed, next starver activates.
    let mut out = Outbox::new();
    home.handle_message(deact.msg.clone(), Cycle::new(30), &mut out);
    assert!(out.sends.iter().any(|s| matches!(
        s.msg.body,
        MsgBody::PersistentDeactivate { starver, .. } if starver == NodeId::new(1)
    )));
    assert!(home.is_quiescent());
}

/// A deactivation from a node that is not the active starver (early or
/// duplicated) must be ignored by the arbiter.
#[test]
fn arbiter_ignores_foreign_deactivations() {
    let mut home = tokenb(4, 2);
    let addr = BlockAddr::new(2);
    let mut out = Outbox::new();
    home.handle_message(
        Msg::new(
            addr,
            MsgBody::Request {
                kind: AccessKind::Write,
                requester: NodeId::new(1),
                serial: 0,
                style: patchsim_protocol::RequestStyle::Persistent,
            },
        ),
        Cycle::new(10),
        &mut out,
    );
    // Node 3's early deactivation (for a request still in flight) arrives.
    let mut out = Outbox::new();
    home.handle_message(
        Msg::new(
            addr,
            MsgBody::Deactivate {
                requester: NodeId::new(3),
                serial: 0,
                new_owner: false,
                keeps_copy: false,
            },
        ),
        Cycle::new(20),
        &mut out,
    );
    assert!(out.sends.is_empty(), "node 1's entry must stay active");
    assert!(!home.is_quiescent());
}
