//! Integration tests for the `faults` experiment plan: the sweep the CI
//! smoke job runs (`runplan faults --quick`) must be bit-identical at any
//! worker-thread count, its fault-free cells must match a plain unfaulted
//! run, and at least one degraded mode must visibly slow a protocol —
//! the row the CI grep looks for.

use patchsim::exp::{Format, Runner};
use patchsim::{run, FaultSpec};
use patchsim_bench::{faults_plan, with_standard_columns, Scale};

/// A debug-build-friendly scale for plan-level tests.
fn tiny() -> Scale {
    let mut scale = Scale::quick();
    scale.cores = 8;
    scale.ops = 40;
    scale.warmup = 20;
    scale
}

fn csv(table: &patchsim::exp::Table) -> String {
    let mut out = Vec::new();
    table.emit(Format::Csv, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// The determinism contract holds under fault injection: a serial run and
/// a 4-worker run of the whole faults plan emit byte-identical tables.
#[test]
fn faults_plan_is_bit_identical_across_thread_counts() {
    let plan = faults_plan(tiny());
    let serial = with_standard_columns(Runner::serial().run(&plan));
    let parallel = with_standard_columns(Runner::new().with_threads(4).run(&plan));
    assert_eq!(
        csv(&serial),
        csv(&parallel),
        "fault schedules must be a pure function of the cell, not of scheduling"
    );
}

/// The plan's `none` cells reproduce a plain unfaulted run of the same
/// configuration (modulo the armed watchdog, which the plan keeps on),
/// and every degraded mode leaves the safety counters nonzero.
#[test]
fn faults_plan_none_cells_match_unfaulted_runs() {
    let plan = faults_plan(tiny());
    for cell in plan.cells().iter().filter(|c| c.labels[1] == "none") {
        let replay = run(&cell.config);
        let direct = run(&cell.config.clone().with_faults(FaultSpec::none()));
        assert_eq!(replay.runtime_cycles, direct.runtime_cycles);
        assert_eq!(replay.events_processed, direct.events_processed);
        assert!(replay.token_audits > 0);
    }
}

/// At least one fault mix measurably degrades runtime relative to the
/// same protocol's fault-free cell — the degraded-mode row the CI smoke
/// job greps for is real signal, not a label.
#[test]
fn some_fault_mix_degrades_runtime() {
    let plan = faults_plan(tiny());
    let table = Runner::new().run(&plan);
    let runtime_of = |config: &str, faults: &str| -> f64 {
        table
            .cells()
            .iter()
            .find(|cell| {
                cell.labels[0] == config && cell.labels[1] == faults && cell.labels[2] == "torus"
            })
            .map(|cell| cell.summary.runtime.mean)
            .expect("cell present")
    };
    for config in ["Directory", "PATCH-All", "TokenB"] {
        let clean = runtime_of(config, "none");
        let storm = runtime_of(config, "storm");
        assert!(
            storm > clean,
            "{config}: a 8x bandwidth storm must cost runtime ({storm} vs {clean})"
        );
    }
}
