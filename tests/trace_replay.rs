//! Record/replay bit-identity: a run recorded to a `.ptrc` trace and
//! replayed via `WorkloadSpec::Trace` must reproduce the original
//! `RunResult` exactly — same runtime, traffic, counters, and latency
//! histogram — including when the interconnect injects faults, and the
//! trace must survive a disk round-trip unchanged.

use std::path::PathBuf;

use patchsim::{
    presets, run, service_presets, FabricKind, FaultSpec, PredictorChoice, ProtocolKind, SimConfig,
    TraceReader, WorkloadSpec,
};

/// A unique scratch path for one test's trace file.
fn scratch(name: &str) -> PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("patchsim_{}_{}.ptrc", name, std::process::id()));
    path
}

/// Records `config` to a trace file, replays the trace through a config
/// that is identical except for the workload, and asserts the full
/// result digests match.
fn assert_replay_identity(config: SimConfig, name: &str) {
    let path = scratch(name);
    let recorded = run(&config.clone().with_record_trace(&path));

    let trace = TraceReader::read_path(&path).expect("recorded trace decodes");
    assert_eq!(trace.seed, config.seed, "trace stores the recording seed");
    assert_eq!(
        trace.num_nodes, config.protocol.num_nodes,
        "trace stores the recording system size"
    );
    assert_eq!(
        trace.total_items(),
        (config.ops_per_core + config.warmup_ops_per_core) * u64::from(config.protocol.num_nodes),
        "one recorded item per generated operation"
    );

    let mut replay_config = config;
    replay_config.record_trace = None;
    replay_config.workload = WorkloadSpec::trace(trace);
    let replayed = run(&replay_config);

    assert_eq!(
        recorded.digest(),
        replayed.digest(),
        "replayed run diverged from the recorded run for {name}"
    );
    assert_eq!(recorded.runtime_cycles, replayed.runtime_cycles);
    assert_eq!(recorded.traffic, replayed.traffic);
    assert_eq!(recorded.miss_latency_mean, replayed.miss_latency_mean);
    std::fs::remove_file(&path).ok();
}

/// The headline acceptance gate: OLTP on the paper's torus records and
/// replays bit-identically under the directory protocol.
#[test]
fn oltp_on_torus_replays_bit_identically() {
    let config = SimConfig::new(ProtocolKind::Directory, 16)
        .with_workload(presets::oltp())
        .with_ops_per_core(120)
        .with_warmup(30)
        .with_seed(0xA11CE)
        .with_checks();
    assert_replay_identity(config, "oltp_torus");
}

/// Replay identity holds under chaos fault injection on the hierarchical
/// fabric with PATCH: the fault schedule is seeded from a dedicated
/// stream of the run seed (stored in the trace), so faults replay too.
#[test]
fn chaos_faulted_patch_on_hier_replays_bit_identically() {
    let config = SimConfig::new(ProtocolKind::Patch, 16)
        .with_predictor(PredictorChoice::All)
        .with_fabric(FabricKind::Hierarchical { cluster: None })
        .with_faults(FaultSpec::parse("chaos").expect("shipped preset"))
        .with_workload(presets::oltp())
        .with_ops_per_core(80)
        .with_warmup(20)
        .with_seed(0xFA57)
        .with_checks()
        .with_liveness_horizon(300_000);
    assert_replay_identity(config, "chaos_hier");
}

/// Service-shaped traffic records and replays like any other workload:
/// the Zipfian generator's draws are captured as concrete accesses.
#[test]
fn zipfian_service_workload_replays_bit_identically() {
    let config = SimConfig::new(ProtocolKind::TokenB, 8)
        .with_workload(service_presets::zipf_hot())
        .with_ops_per_core(100)
        .with_warmup(25)
        .with_seed(7)
        .with_checks();
    assert_replay_identity(config, "svc_hot");
}

/// Replaying on the wrong system size is a configuration error, caught
/// before any simulation runs.
#[test]
#[should_panic(expected = "recorded on 8 cores")]
fn replaying_on_the_wrong_node_count_panics() {
    let path = scratch("wrong_nodes");
    let config = SimConfig::new(ProtocolKind::Directory, 8)
        .with_ops_per_core(10)
        .with_record_trace(&path);
    run(&config);
    let trace = TraceReader::read_path(&path).expect("trace decodes");
    std::fs::remove_file(&path).ok();
    let bad = SimConfig::new(ProtocolKind::Directory, 16)
        .with_workload(WorkloadSpec::trace(trace))
        .with_ops_per_core(10);
    run(&bad);
}

/// Recording must not disturb the run it observes: the recorded run's
/// results equal a plain run of the same configuration.
#[test]
fn recording_is_invisible_to_the_recorded_run() {
    let path = scratch("invisible");
    let config = SimConfig::new(ProtocolKind::Patch, 8)
        .with_predictor(PredictorChoice::BroadcastIfShared)
        .with_workload(presets::apache())
        .with_ops_per_core(60)
        .with_warmup(10)
        .with_seed(42);
    let plain = run(&config);
    let recorded = run(&config.clone().with_record_trace(&path));
    std::fs::remove_file(&path).ok();
    assert_eq!(plain.digest(), recorded.digest());
}
