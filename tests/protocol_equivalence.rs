//! Cross-protocol integration tests: all three protocols run the same
//! workloads to completion under full invariant checking, and the
//! paper's qualitative relationships hold.

use patchsim::{
    run, CheckLevel, PredictorChoice, ProtocolKind, SimConfig, TrafficClass, WorkloadSpec,
};

fn base(kind: ProtocolKind, n: u16) -> SimConfig {
    SimConfig::new(kind, n)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 512,
            write_frac: 0.3,
            think_mean: 8,
        })
        .with_ops_per_core(400)
        .with_seed(21)
        .with_checks()
}

#[test]
fn all_protocols_complete_with_invariants() {
    for kind in [
        ProtocolKind::Directory,
        ProtocolKind::Patch,
        ProtocolKind::TokenB,
    ] {
        let r = run(&base(kind, 8));
        assert_eq!(r.ops_completed, 8 * 400, "{kind} completed all ops");
        assert!(r.coherence_checks > 0);
    }
}

#[test]
fn patch_none_tracks_directory_runtime() {
    // Paper §8.2: "PATCH configured not to send any direct requests and
    // DIRECTORY perform similarly" — no common-case penalty from token
    // counting + token tenure.
    let dir = run(&base(ProtocolKind::Directory, 8));
    let patch = run(&base(ProtocolKind::Patch, 8));
    let ratio = patch.runtime_cycles as f64 / dir.runtime_cycles as f64;
    assert!(
        (0.8..1.2).contains(&ratio),
        "PATCH-None runtime should track DIRECTORY: ratio {ratio:.3}"
    );
}

#[test]
fn patch_none_traffic_is_close_to_directory() {
    // Paper §8.2: PATCH-None traffic is "somewhat higher (only 2% on
    // average)" — non-silent clean writebacks and activation messages.
    let dir = run(&base(ProtocolKind::Directory, 8));
    let patch = run(&base(ProtocolKind::Patch, 8));
    let ratio = patch.bytes_per_miss() / dir.bytes_per_miss();
    assert!(
        (0.85..1.35).contains(&ratio),
        "PATCH-None traffic should be near DIRECTORY's: ratio {ratio:.3}"
    );
}

#[test]
fn patch_all_is_faster_than_directory_when_bandwidth_is_rich() {
    // The headline result: direct requests convert 3-hop sharing misses
    // into 2-hop misses.
    let dir = run(&base(ProtocolKind::Directory, 8));
    let all = run(&base(ProtocolKind::Patch, 8).with_predictor(PredictorChoice::All));
    assert!(
        all.runtime_cycles < dir.runtime_cycles,
        "PATCH-All ({}) should beat DIRECTORY ({})",
        all.runtime_cycles,
        dir.runtime_cycles
    );
    // And its average miss latency is lower.
    assert!(all.miss_latency_mean < dir.miss_latency_mean);
    // At the cost of more traffic.
    assert!(all.bytes_per_miss() > dir.bytes_per_miss());
}

#[test]
fn patch_all_latency_is_comparable_to_tokenb() {
    // Paper §8.2: PATCH-All "generally performs the same as" TokenB.
    let all = run(&base(ProtocolKind::Patch, 8).with_predictor(PredictorChoice::All));
    let tokenb = run(&base(ProtocolKind::TokenB, 8));
    let ratio = all.runtime_cycles as f64 / tokenb.runtime_cycles as f64;
    assert!(
        (0.8..1.25).contains(&ratio),
        "PATCH-All vs TokenB runtime ratio {ratio:.3}"
    );
}

#[test]
fn every_workload_preset_runs_on_every_protocol() {
    for workload in patchsim::presets::all() {
        for kind in [
            ProtocolKind::Directory,
            ProtocolKind::Patch,
            ProtocolKind::TokenB,
        ] {
            let cfg = SimConfig::new(kind, 8)
                .with_workload(workload.clone())
                .with_ops_per_core(120)
                .with_seed(3)
                .with_checks();
            let r = run(&cfg);
            assert_eq!(r.ops_completed, 8 * 120, "{kind} on {}", workload.name());
        }
    }
}

#[test]
fn patch_sends_no_acks_for_unshared_data() {
    // Token counting elides zero-token acknowledgements entirely: a
    // private (unshared) workload generates no ack traffic in PATCH.
    let private_only = WorkloadSpec::Synthetic(patchsim::SharingProfile {
        name: "private",
        cluster_size: 4,
        shared_frac: 0.0,
        shared_blocks: 1,
        migratory_frac: 0.0,
        producer_consumer_frac: 0.0,
        pc_blocks_per_core: 1,
        shared_write_frac: 0.0,
        private_blocks: 512,
        private_write_frac: 0.4,
        think_mean: 5,
    });
    let cfg = base(ProtocolKind::Patch, 4).with_workload(private_only);
    let r = run(&cfg);
    assert_eq!(r.traffic.bytes(TrafficClass::Ack), 0, "no sharers, no acks");
}

#[test]
fn checks_can_be_disabled_for_scale() {
    let mut cfg = base(ProtocolKind::Patch, 8);
    cfg.check = CheckLevel::Off;
    let r = run(&cfg);
    assert_eq!(r.token_audits, 0);
    assert_eq!(r.coherence_checks, 0);
    assert_eq!(r.ops_completed, 8 * 400);
}
