//! Integration tests for the open-loop arrival subsystem and the
//! `saturation` plan: sweep-level byte-identity across worker-thread
//! counts, the arrivals = completions + drops + in-flight conservation
//! identity, the closed-vs-open divergence under overload that
//! motivates the subsystem, deterministic composition with `--faults`,
//! the `block` overload policy, and the `--shard` / `store-stats`
//! command-line surface.

use std::process::Command;

use patchsim::exp::{Format, Runner};
use patchsim::{run, ArrivalProfile, FaultSpec, ProtocolKind, SimConfig, WorkloadSpec};
use patchsim_bench::{saturation_plan, with_saturation_columns, Scale};

/// A debug-build-friendly scale for plan-level tests.
fn tiny() -> Scale {
    let mut scale = Scale::quick();
    scale.cores = 8;
    scale.ops = 40;
    scale.warmup = 20;
    scale
}

fn csv(table: &patchsim::exp::Table) -> String {
    let mut out = Vec::new();
    table.emit(Format::Csv, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

fn open_config(spec: &str) -> SimConfig {
    SimConfig::new(ProtocolKind::Patch, 8)
        .with_workload(WorkloadSpec::OpenLoop(
            ArrivalProfile::parse(spec).expect("valid arrival spec"),
        ))
        .with_ops_per_core(60)
        .with_seed(7)
}

/// The determinism contract extends to open-loop arrivals: a serial run
/// and a 4-worker run of the whole saturation plan emit byte-identical
/// tables. Arrival gaps come from a dedicated per-core RNG stream and
/// all arrival events flow through the one event queue, so results are
/// a pure function of the cell, not of scheduling.
#[test]
fn saturation_plan_is_bit_identical_across_thread_counts() {
    let plan = saturation_plan(tiny());
    let serial = with_saturation_columns(Runner::serial().run(&plan));
    let parallel = with_saturation_columns(Runner::new().with_threads(4).run(&plan));
    assert_eq!(
        csv(&serial),
        csv(&parallel),
        "open-loop arrivals must be a pure function of the cell, not of scheduling"
    );
}

/// No arrival is lost or double-counted: every drawn arrival either
/// completes, is dropped, or (never, for a finished run) remains in
/// flight. With zero warmup every arrival and completion is measured,
/// so the identity is exact against the run's own counters.
#[test]
fn drop_accounting_conserves_arrivals() {
    // A hopelessly overloaded core (arrivals every cycle, tiny backlog)
    // and a comfortable one both conserve.
    for spec in ["fixed:1,cap=2", "poisson:100"] {
        let result = run(&open_config(spec).with_warmup(0));
        let ol = result.open_loop.as_ref().expect("open-loop stats");
        assert_eq!(
            ol.arrivals,
            result.ops_completed + ol.drops + ol.in_flight_at_horizon,
            "conservation violated for '{spec}'"
        );
        assert_eq!(
            ol.in_flight_at_horizon, 0,
            "a finished run has drained everything"
        );
        assert_eq!(ol.arrivals, 8 * 60, "every core draws its full quota");
    }
}

/// The divergence the subsystem exists to expose: past the knee, the
/// open-loop arrival→completion sojourn keeps growing while the
/// closed-loop issue→completion miss latency stays flat — a closed loop
/// self-throttles and cannot show saturation.
#[test]
fn open_loop_sojourn_diverges_from_closed_loop_latency_under_overload() {
    let light = run(&open_config("poisson:400"));
    // The cap must sit below the per-core arrival quota (60) or a
    // bounded test run can absorb its whole arrival stream without
    // overflowing — but deep enough that queueing delay, not the cap,
    // dominates the sojourn.
    let heavy = run(&open_config("poisson:4,cap=32"));
    let soj_p95 = |r: &patchsim::RunResult| {
        r.open_loop
            .as_ref()
            .expect("open-loop run")
            .sojourn
            .percentile(0.95)
    };
    // Sojourn explodes under overload...
    assert!(
        soj_p95(&heavy) >= 5 * soj_p95(&light).max(1),
        "overloaded sojourn p95 {} not >= 5x light {}",
        soj_p95(&heavy),
        soj_p95(&light)
    );
    assert!(
        heavy.open_loop.as_ref().unwrap().drops > 0,
        "overload must shed load"
    );
    // ...while the per-operation service latency stays the same order:
    // the backlog delays service *start*, not the coherence protocol.
    let lat_heavy = heavy.miss_latency.percentile(0.95);
    let lat_light = light.miss_latency.percentile(0.95).max(1);
    assert!(
        lat_heavy <= 4 * lat_light,
        "closed-loop-style miss latency should stay flat: {lat_heavy} vs {lat_light}"
    );
}

/// Open-loop workloads compose with the deterministic fault layer: a
/// storm preset degrades service, which (at a load near the knee) shows
/// up as strictly more drops — and identically so on every run.
#[test]
fn faults_compose_deterministically_with_open_arrivals() {
    let base = open_config("poisson:28,cap=16");
    let stormy = base
        .clone()
        .with_faults(FaultSpec::parse("storm").expect("shipped preset"));
    let clean = run(&base);
    let storm_a = run(&stormy);
    let storm_b = run(&stormy);
    assert_eq!(
        storm_a.digest(),
        storm_b.digest(),
        "faulted open-loop runs are deterministic"
    );
    let drops = |r: &patchsim::RunResult| r.open_loop.as_ref().unwrap().drops;
    assert!(
        drops(&storm_a) > drops(&clean),
        "storm faults slow service, so a near-knee load must drop more \
         (storm {} vs clean {})",
        drops(&storm_a),
        drops(&clean)
    );
}

/// The `block` overload policy never drops: a full backlog stalls the
/// arrival process instead, and the stall shows up as blocked cycles.
#[test]
fn block_policy_stalls_instead_of_dropping() {
    let result = run(&open_config("fixed:1,cap=2,policy=block").with_warmup(0));
    let ol = result.open_loop.as_ref().expect("open-loop stats");
    assert_eq!(ol.drops, 0, "block policy must not drop");
    assert!(
        ol.blocked_cycles > 0,
        "overload must register as stall time"
    );
    assert_eq!(ol.arrivals, result.ops_completed, "everything completes");
    // The backlog never exceeds its cap.
    assert!(ol.backlog_hwm <= 2, "hwm {} breaks cap=2", ol.backlog_hwm);
}

/// `--shard K/N` with a malformed spec is a usage error: exit status 2
/// with the usage text, before anything runs.
#[test]
fn runplan_rejects_malformed_shards() {
    for bad in ["0/4", "5/4", "1/0", "2"] {
        let output = Command::new(env!("CARGO_BIN_EXE_runplan"))
            .args(["fig4", "--quick", "--shard", bad])
            .output()
            .expect("runplan executes");
        assert_eq!(output.status.code(), Some(2), "--shard {bad} must exit 2");
        let stderr = String::from_utf8_lossy(&output.stderr);
        assert!(
            stderr.contains("--shard"),
            "stderr names the flag: {stderr}"
        );
    }
}

/// `runplan store-stats` inventories a store written by a sharded run
/// and exits 0; a missing directory is a usage error.
#[test]
fn runplan_store_stats_reads_a_sharded_store() {
    let dir = std::env::temp_dir().join(format!("patchsim_shard_store_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Run one shard of the faults plan into a store. At 2 shards, the
    // key partition leaves a non-empty shard 1 (checked below via the
    // store's own entry count).
    let run_out = Command::new(env!("CARGO_BIN_EXE_runplan"))
        .args([
            "faults",
            "--quick",
            "--shard",
            "1/2",
            "--store",
            dir.to_str().unwrap(),
            "--format",
            "csv",
        ])
        .output()
        .expect("runplan executes");
    assert!(
        run_out.status.success(),
        "sharded run failed: {}",
        String::from_utf8_lossy(&run_out.stderr)
    );

    let stats = Command::new(env!("CARGO_BIN_EXE_runplan"))
        .args(["store-stats", dir.to_str().unwrap()])
        .output()
        .expect("runplan executes");
    assert_eq!(stats.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&stats.stdout);
    assert!(
        stdout.contains("code v") && stdout.contains("entries"),
        "stats output: {stdout}"
    );
    assert!(stdout.contains("quarantined: 0"), "stats output: {stdout}");

    // Pruning a store with no stale entries removes nothing.
    let prune = Command::new(env!("CARGO_BIN_EXE_runplan"))
        .args(["store-stats", dir.to_str().unwrap(), "--prune-stale"])
        .output()
        .expect("runplan executes");
    assert_eq!(prune.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&prune.stdout).contains("pruned: 0 stale entries"));
    let _ = std::fs::remove_dir_all(&dir);

    let missing = Command::new(env!("CARGO_BIN_EXE_runplan"))
        .args(["store-stats", "/definitely/not/a/store"])
        .output()
        .expect("runplan executes");
    assert_eq!(missing.status.code(), Some(2));
}
