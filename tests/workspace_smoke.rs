//! Workspace smoke test: run the `quickstart` doc-example configuration
//! end-to-end through the full stack (kernel → noc/mem/predictor →
//! protocol → workload → core) with invariant checking enabled, so CI
//! exercises every crate in one deterministic run.

use patchsim::{run, PredictorChoice, ProtocolKind, SimConfig};

#[test]
fn quickstart_config_runs_end_to_end() {
    // The exact configuration from the `patchsim` crate-level docs.
    let config = SimConfig::new(ProtocolKind::Patch, 16)
        .with_predictor(PredictorChoice::All)
        .with_ops_per_core(200)
        .with_seed(42)
        .with_checks();
    let result = run(&config);

    // Every core retires its full measured-operation quota.
    assert_eq!(result.ops_completed, 16 * 200);
    assert!(result.runtime_cycles > 0);

    // `with_checks` turns on the token-conservation auditor (which panics
    // on any violation); a completed run with a nonzero audit count is a
    // machine-checked witness that conservation held throughout.
    assert!(
        result.token_audits > 0,
        "token-conservation auditor never ran"
    );
    assert!(result.coherence_checks > 0, "coherence checker never ran");
}

#[test]
fn quickstart_config_is_deterministic() {
    let config = || {
        SimConfig::new(ProtocolKind::Patch, 16)
            .with_predictor(PredictorChoice::All)
            .with_ops_per_core(200)
            .with_seed(42)
    };
    let a = run(&config());
    let b = run(&config());
    assert_eq!(a.runtime_cycles, b.runtime_cycles);
    assert_eq!(a.traffic.total_bytes(), b.traffic.total_bytes());
}
