//! Larger-system smoke tests (checks off, like the paper's measured
//! configurations) plus the qualitative scalability claims of §8.5.

use patchsim::{
    run, LinkBandwidth, PredictorChoice, ProtocolKind, SharerEncoding, SimConfig, TrafficClass,
    WorkloadSpec,
};
use patchsim_protocol::ProtocolConfig;

fn micro(n: u16) -> WorkloadSpec {
    let _ = n;
    WorkloadSpec::Microbenchmark {
        table_blocks: 16 * 1024,
        write_frac: 0.3,
        think_mean: 10,
    }
}

#[test]
fn sixty_four_cores_all_protocols() {
    for kind in [
        ProtocolKind::Directory,
        ProtocolKind::Patch,
        ProtocolKind::TokenB,
    ] {
        let cfg = SimConfig::new(kind, 64)
            .with_predictor(PredictorChoice::All)
            .with_workload(micro(64))
            .with_ops_per_core(150)
            .with_seed(2);
        let r = run(&cfg);
        assert_eq!(r.ops_completed, 64 * 150, "{kind}");
    }
}

#[test]
fn patch_acks_scale_better_than_directory_under_coarse_encoding() {
    // §8.5: with a coarse sharer vector, DIRECTORY's invalidation acks
    // come from every implicated core; PATCH hears only from token
    // holders.
    let n = 64;
    let coarse = SharerEncoding::Coarse { cores_per_bit: 16 };
    let mut acks = Vec::new();
    for kind in [ProtocolKind::Directory, ProtocolKind::Patch] {
        let protocol = ProtocolConfig::new(kind, n).with_sharer_encoding(coarse);
        let cfg = SimConfig::new(kind, n)
            .with_protocol(protocol)
            .with_workload(micro(n))
            .with_ops_per_core(150)
            .with_seed(4);
        let r = run(&cfg);
        acks.push(r.class_bytes_per_miss(TrafficClass::Ack));
    }
    let (dir_acks, patch_acks) = (acks[0], acks[1]);
    assert!(
        patch_acks < dir_acks / 2.0,
        "PATCH ack traffic ({patch_acks:.1} B/miss) should be far below \
         DIRECTORY's ({dir_acks:.1} B/miss) under coarse encoding"
    );
}

#[test]
fn directory_acks_grow_with_coarseness_patch_flat() {
    let n = 64;
    let mut dir_growth = Vec::new();
    let mut patch_growth = Vec::new();
    for k in [1u16, 64] {
        let encoding = if k == 1 {
            SharerEncoding::FullMap
        } else {
            SharerEncoding::Coarse { cores_per_bit: k }
        };
        for (kind, out) in [
            (ProtocolKind::Directory, &mut dir_growth),
            (ProtocolKind::Patch, &mut patch_growth),
        ] {
            let protocol = ProtocolConfig::new(kind, n).with_sharer_encoding(encoding);
            let cfg = SimConfig::new(kind, n)
                .with_protocol(protocol)
                .with_workload(micro(n))
                .with_ops_per_core(120)
                .with_seed(6);
            let r = run(&cfg);
            out.push(r.class_bytes_per_miss(TrafficClass::Ack));
        }
    }
    let dir_ratio = dir_growth[1] / dir_growth[0].max(1e-9);
    let patch_delta = patch_growth[1] - patch_growth[0];
    assert!(
        dir_ratio > 2.0,
        "DIRECTORY acks should blow up with a single-bit encoding (x{dir_ratio:.1})"
    );
    assert!(
        patch_delta.abs() < 8.0,
        "PATCH ack traffic should stay nearly flat (delta {patch_delta:.1} B/miss)"
    );
}

#[test]
fn best_effort_keeps_patch_at_directory_speed_under_narrow_links() {
    // §8.4: with narrow links, non-adaptive broadcast collapses while
    // best-effort PATCH-All stays at (or better than) DIRECTORY.
    let n = 32;
    let bw = LinkBandwidth::BytesPerCycle(0.5);
    let run_kind = |kind: ProtocolKind, non_adaptive: bool| {
        let mut protocol = ProtocolConfig::new(kind, n).with_predictor(PredictorChoice::All);
        if non_adaptive {
            protocol = protocol.non_adaptive();
        }
        let cfg = SimConfig::new(kind, n)
            .with_protocol(protocol)
            .with_bandwidth(bw)
            .with_workload(micro(n))
            .with_ops_per_core(120)
            .with_seed(8);
        run(&cfg)
    };
    let dir = run_kind(ProtocolKind::Directory, false);
    let adaptive = run_kind(ProtocolKind::Patch, false);
    let non_adaptive = run_kind(ProtocolKind::Patch, true);
    let adaptive_ratio = adaptive.runtime_cycles as f64 / dir.runtime_cycles as f64;
    let na_ratio = non_adaptive.runtime_cycles as f64 / dir.runtime_cycles as f64;
    assert!(
        adaptive_ratio < 1.15,
        "adaptive PATCH-All should stay near DIRECTORY (ratio {adaptive_ratio:.2})"
    );
    assert!(
        na_ratio > adaptive_ratio,
        "non-adaptive ({na_ratio:.2}) should be slower than adaptive ({adaptive_ratio:.2})"
    );
    assert!(
        adaptive.traffic.dropped_packets() > 0,
        "adaptivity visibly dropped stale hints"
    );
}

#[test]
fn hundred_twenty_eight_cores_smoke() {
    let cfg = SimConfig::new(ProtocolKind::Patch, 128)
        .with_predictor(PredictorChoice::All)
        .with_workload(micro(128))
        .with_ops_per_core(60)
        .with_seed(10);
    let r = run(&cfg);
    assert_eq!(r.ops_completed, 128 * 60);
}
