//! Integration tests of the declarative experiment-plan API: the
//! parallel runner's determinism guarantee and golden outputs for the
//! machine-readable emitters.

use patchsim::exp::{AxisValue, CellResult, Format, Runner, Sweep, Table};
use patchsim::{
    replicate_seed, run_many, ClassBytes, ConfidenceInterval, LatencyPercentiles, ProtocolKind,
    RunSummary, SimConfig, WorkloadSpec,
};

fn grid_plan(seeds: u64) -> patchsim::exp::ExperimentPlan {
    let base = SimConfig::new(ProtocolKind::Directory, 8)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 128,
            write_frac: 0.4,
            think_mean: 3,
        })
        .with_ops_per_core(80)
        .with_warmup(20);
    Sweep::new("determinism grid", base)
        .axis(
            "config",
            vec![
                AxisValue::new("Directory", |c| c),
                AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
                AxisValue::new("TokenB", |c| c.with_kind(ProtocolKind::TokenB)),
            ],
        )
        .axis(
            "cores",
            vec![
                AxisValue::new("4", |c| {
                    let mut p = c.protocol.clone();
                    p.num_nodes = 4;
                    p.total_tokens = 4;
                    c.with_protocol(p)
                }),
                AxisValue::new("8", |c| c),
            ],
        )
        .seeds(seeds)
        .build()
}

/// The runner's core guarantee: thread count never changes the results.
/// Every per-run measurement of every cell must match bit-for-bit between
/// serial execution and a saturated worker pool.
#[test]
fn parallel_runner_is_bit_identical_to_serial() {
    let plan = grid_plan(3);
    let serial = Runner::serial().run(&plan);
    let parallel = Runner::new().with_threads(8).run(&plan);
    assert_eq!(serial.cells().len(), plan.len());
    assert_eq!(parallel.cells().len(), plan.len());
    for (a, b) in serial.cells().iter().zip(parallel.cells().iter()) {
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.summary.runtime, b.summary.runtime, "cell {:?}", a.labels);
        assert_eq!(a.summary.bytes_per_miss, b.summary.bytes_per_miss);
        assert_eq!(
            a.summary.miss_latency_percentiles,
            b.summary.miss_latency_percentiles
        );
        assert_eq!(a.summary.runs.len(), b.summary.runs.len());
        for (ra, rb) in a.summary.runs.iter().zip(b.summary.runs.iter()) {
            assert_eq!(ra.runtime_cycles, rb.runtime_cycles);
            assert_eq!(ra.ops_completed, rb.ops_completed);
            assert_eq!(ra.traffic, rb.traffic);
            assert_eq!(ra.measured_misses, rb.measured_misses);
            assert_eq!(ra.miss_latency_mean, rb.miss_latency_mean);
        }
    }
}

/// The runner's replication seeds must match the serial `run_many`
/// derivation exactly — the runner is a drop-in replacement for the old
/// per-binary loops.
#[test]
fn runner_replications_match_run_many() {
    let plan = grid_plan(3);
    let table = Runner::new().with_threads(4).run(&plan);
    for cell in table.cells() {
        let expected = run_many(&cell.config, 3);
        for (from_runner, from_loop) in cell.summary.runs.iter().zip(expected.iter()) {
            assert_eq!(from_runner.runtime_cycles, from_loop.runtime_cycles);
            assert_eq!(from_runner.traffic, from_loop.traffic);
        }
    }
}

/// Seed derivation is mixing, not addition: experiments started from
/// adjacent base seeds must not share any replication stream.
#[test]
fn adjacent_base_seeds_do_not_share_replications() {
    let mut seen = std::collections::HashSet::new();
    for base in [1u64, 2, 3] {
        for rep in 0..8 {
            assert!(
                seen.insert(replicate_seed(base, rep)),
                "base {base} rep {rep} collided"
            );
        }
    }
}

fn fixed_summary(runtime: f64, half_width: f64, bytes: f64) -> RunSummary {
    let ci = |mean, hw| ConfidenceInterval {
        mean,
        half_width: hw,
        n: 2,
    };
    RunSummary {
        protocol: "Directory",
        runtime: ci(runtime, half_width),
        bytes_per_miss: ci(bytes, 0.5),
        miss_latency: ci(40.0, 1.0),
        miss_latency_percentiles: LatencyPercentiles {
            p50: 32,
            p95: 128,
            p99: 256,
        },
        class_bytes_per_miss: ClassBytes::from_fn(|_| 0.0),
        dropped_packets: 3.0,
        open_loop: None,
        spans: None,
        runs: Vec::new(),
    }
}

/// A two-cell, one-axis table with fully synthetic numbers, so emitter
/// output is stable by construction.
fn golden_table() -> Table {
    let config = SimConfig::new(ProtocolKind::Directory, 4);
    let cells = vec![
        CellResult {
            labels: vec!["Directory".into()],
            config: config.clone(),
            summary: fixed_summary(1000.0, 0.0, 72.0),
        },
        CellResult {
            labels: vec!["PATCH, \"adaptive\"".into()],
            config,
            summary: fixed_summary(860.0, 12.5, 96.0),
        },
    ];
    Table::new("golden", vec!["config".into()], cells)
        .with_ci_column("runtime", 1, |cell| cell.summary.runtime)
        .with_normalized_column("norm_runtime", 3, "config", "Directory", |cell| {
            cell.summary.runtime.mean
        })
        .with_column("drops", 0, |cell| cell.summary.dropped_packets)
        .with_note("synthetic numbers")
}

#[test]
fn csv_emitter_golden_output() {
    let mut out = Vec::new();
    golden_table().emit(Format::Csv, &mut out).unwrap();
    let expected = "\
config,runtime,runtime_ci95,norm_runtime,drops
Directory,1000.0,0.0,1.000,3
\"PATCH, \"\"adaptive\"\"\",860.0,12.5,0.860,3
";
    assert_eq!(String::from_utf8(out).unwrap(), expected);
}

#[test]
fn json_emitter_golden_output() {
    let mut out = Vec::new();
    golden_table().emit(Format::Json, &mut out).unwrap();
    let expected = r#"{
  "title": "golden",
  "axes": ["config"],
  "notes": ["synthetic numbers"],
  "rows": [
    {"config": "Directory", "runtime": {"mean": 1000.0, "ci95": 0.0, "n": 2}, "norm_runtime": 1.000, "drops": 3},
    {"config": "PATCH, \"adaptive\"", "runtime": {"mean": 860.0, "ci95": 12.5, "n": 2}, "norm_runtime": 0.860, "drops": 3}
  ]
}
"#;
    assert_eq!(String::from_utf8(out).unwrap(), expected);
}

#[test]
fn text_emitter_aligns_and_carries_notes() {
    let mut out = Vec::new();
    golden_table().emit(Format::Text, &mut out).unwrap();
    let text = String::from_utf8(out).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines[0], "golden");
    assert!(lines[2].contains("config") && lines[2].contains("norm_runtime"));
    assert!(lines[3].contains("1.000"));
    assert!(lines[4].contains("0.860"));
    assert_eq!(*lines.last().unwrap(), "# synthetic numbers");
}

/// A normalized table emitted per format stays self-consistent when the
/// grid came from a real (tiny) run.
#[test]
fn real_grid_emits_in_every_format() {
    let base = SimConfig::new(ProtocolKind::Directory, 4)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 64,
            write_frac: 0.3,
            think_mean: 2,
        })
        .with_ops_per_core(40);
    let plan = Sweep::new("tiny", base)
        .axis(
            "config",
            vec![
                AxisValue::new("Directory", |c| c),
                AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
            ],
        )
        .seeds(2)
        .build();
    let table = Runner::new()
        .run(&plan)
        .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
        .with_normalized_column("norm", 3, "config", "Directory", |cell| {
            cell.summary.runtime.mean
        });
    for format in Format::ALL {
        let mut out = Vec::new();
        table.emit(format, &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Directory"), "{format} output missing label");
        assert!(!text.trim().is_empty());
    }
}
