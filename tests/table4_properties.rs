//! The paper's Table 4, as executable properties: a comparison of
//! forward-progress mechanisms for token counting protocols.
//!
//! | Mechanism          | Broadcast-free? | Interconnect | Reissues? |
//! |--------------------|-----------------|--------------|-----------|
//! | Persistent requests| no              | any          | yes       |
//! | Ring-Order         | no              | ring         | no        |
//! | Token tenure       | yes             | any          | no        |

use patchsim::{
    run, LinkBandwidth, PredictorChoice, ProtocolKind, SimConfig, TrafficClass, WorkloadSpec,
};

fn contended(kind: ProtocolKind, n: u16) -> SimConfig {
    // High write contention on few blocks: the regime where forward
    // progress mechanisms actually fire.
    SimConfig::new(kind, n)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 8,
            write_frac: 0.6,
            think_mean: 2,
        })
        .with_ops_per_core(300)
        .with_seed(31)
        .with_checks()
}

#[test]
fn token_tenure_is_broadcast_free() {
    // PATCH with no predictor sends *zero* multi-destination request
    // traffic: no direct requests, no reissues, no persistent broadcasts —
    // yet it completes a heavily contended workload. Forward progress
    // required no broadcast of any kind.
    let r = run(&contended(ProtocolKind::Patch, 8));
    assert_eq!(r.ops_completed, 8 * 300);
    assert_eq!(
        r.traffic.bytes(TrafficClass::DirectRequest),
        0,
        "no direct-request traffic at all"
    );
    assert_eq!(
        r.traffic.bytes(TrafficClass::Reissue),
        0,
        "no reissue or persistent-request traffic"
    );
}

#[test]
fn token_tenure_needs_no_reissues() {
    // Even PATCH-All (direct requests racing everywhere) never reissues a
    // request: the indirect request through the home is issued exactly
    // once per miss.
    let r = run(&contended(ProtocolKind::Patch, 8).with_predictor(PredictorChoice::All));
    assert_eq!(r.ops_completed, 8 * 300);
    assert_eq!(r.counters.reissues, 0);
    assert_eq!(r.counters.persistent_requests, 0);
    assert_eq!(r.traffic.bytes(TrafficClass::Reissue), 0);
}

#[test]
fn tokenb_relies_on_broadcast() {
    // The comparison point: TokenB's transient requests are broadcasts,
    // and under contention it reissues and escalates to persistent
    // requests (which are broadcast too).
    let r = run(&contended(ProtocolKind::TokenB, 8));
    assert_eq!(r.ops_completed, 8 * 300);
    assert!(
        r.traffic.bytes(TrafficClass::DirectRequest) > 0,
        "TokenB requests are broadcast"
    );
    // Per-miss broadcast cost grows with system size.
    let small = run(&contended(ProtocolKind::TokenB, 4));
    let req_small =
        small.traffic.bytes(TrafficClass::DirectRequest) as f64 / small.measured_misses as f64;
    let req_large = r.traffic.bytes(TrafficClass::DirectRequest) as f64 / r.measured_misses as f64;
    assert!(
        req_large > req_small * 1.3,
        "broadcast request traffic per miss must grow with cores \
         ({req_small:.1} -> {req_large:.1})"
    );
}

#[test]
fn tokenb_reissues_under_contention() {
    // Sustained write races on a handful of blocks make transient
    // requests fail, forcing reissues (and possibly persistent requests).
    let cfg = SimConfig::new(ProtocolKind::TokenB, 8)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 2,
            write_frac: 0.8,
            think_mean: 0,
        })
        .with_ops_per_core(300)
        .with_seed(31)
        .with_checks();
    let r = run(&cfg);
    assert_eq!(r.ops_completed, 8 * 300);
    assert!(
        r.counters.reissues > 0,
        "contention should force TokenB reissues"
    );
}

#[test]
fn token_tenure_works_on_any_interconnect_shape() {
    // "Interconnect: any" — non-square tori, odd node counts, unbounded
    // and constrained links all work, because nothing in PATCH depends on
    // interconnect ordering.
    for n in [2u16, 3, 6, 12] {
        for bw in [LinkBandwidth::Unbounded, LinkBandwidth::BytesPerCycle(1.0)] {
            let cfg = contended(ProtocolKind::Patch, n)
                .with_predictor(PredictorChoice::All)
                .with_bandwidth(bw)
                .with_ops_per_core(150);
            let r = run(&cfg);
            assert_eq!(r.ops_completed, n as u64 * 150, "n={n}, bw={bw:?}");
        }
    }
}

#[test]
fn state_at_home_is_directory_plus_tokens_only() {
    // Token tenure's home-side state is the directory PATCH already has:
    // no per-processor persistent-request tables exist. Structurally this
    // is a compile-time fact (PatchController has no table field); at
    // runtime we can at least confirm no persistent machinery activates.
    let r = run(&contended(ProtocolKind::Patch, 8).with_predictor(PredictorChoice::All));
    assert_eq!(r.counters.persistent_requests, 0);
}
