//! Protocol fuzzing: randomized workloads on small systems with tiny
//! caches (to force evictions and writeback races), full invariant
//! checking on, across many seeds and all three protocols.
//!
//! Every run continuously asserts token conservation and the
//! single-writer/read-latest property, and finishes by asserting full
//! quiescence — so "it completed" is a strong statement.

use patchsim::{run, CacheGeometry, PredictorChoice, ProtocolKind, SimConfig, WorkloadSpec};
use patchsim_protocol::ProtocolConfig;

/// A deliberately hostile configuration: few nodes, a tiny shared table
/// (maximal contention), a tiny cache (constant evictions), short think
/// times.
fn hostile(kind: ProtocolKind, n: u16, seed: u64, predictor: PredictorChoice) -> SimConfig {
    let protocol = ProtocolConfig::new(kind, n)
        .with_predictor(predictor)
        .with_cache_geometry(CacheGeometry::new(4, 2)); // 8 blocks!
    SimConfig::new(kind, n)
        .with_protocol(protocol)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 24, // 3x the cache: eviction storm
            write_frac: 0.5,
            think_mean: 3,
        })
        .with_ops_per_core(250)
        .with_seed(seed)
        .with_checks()
}

#[test]
fn fuzz_directory_small_cache() {
    for seed in 0..8 {
        for n in [2u16, 3, 4, 5] {
            let r = run(&hostile(
                ProtocolKind::Directory,
                n,
                seed,
                PredictorChoice::None,
            ));
            assert_eq!(r.ops_completed, n as u64 * 250, "n={n} seed={seed}");
            assert!(r.counters.writebacks > 0, "evictions exercised");
        }
    }
}

#[test]
fn fuzz_patch_none_small_cache() {
    for seed in 0..8 {
        for n in [2u16, 3, 4, 5] {
            let r = run(&hostile(
                ProtocolKind::Patch,
                n,
                seed,
                PredictorChoice::None,
            ));
            assert_eq!(r.ops_completed, n as u64 * 250, "n={n} seed={seed}");
            assert!(r.token_audits > 0);
        }
    }
}

#[test]
fn fuzz_patch_all_small_cache() {
    // Direct requests + tiny caches + high write contention is the
    // densest race mix: tenure timeouts, bounced tokens, redirects.
    for seed in 0..8 {
        for n in [3u16, 4, 5, 8] {
            let r = run(&hostile(ProtocolKind::Patch, n, seed, PredictorChoice::All));
            assert_eq!(r.ops_completed, n as u64 * 250, "n={n} seed={seed}");
        }
    }
}

#[test]
fn fuzz_patch_owner_and_bcast_if_shared() {
    for seed in 0..4 {
        for predictor in [PredictorChoice::Owner, PredictorChoice::BroadcastIfShared] {
            let r = run(&hostile(ProtocolKind::Patch, 4, seed, predictor));
            assert_eq!(r.ops_completed, 1000, "{predictor} seed={seed}");
        }
    }
}

#[test]
fn fuzz_tokenb_small_cache() {
    for seed in 0..8 {
        for n in [2u16, 3, 4, 5] {
            let r = run(&hostile(
                ProtocolKind::TokenB,
                n,
                seed,
                PredictorChoice::None,
            ));
            assert_eq!(r.ops_completed, n as u64 * 250, "n={n} seed={seed}");
        }
    }
}

#[test]
fn fuzz_single_hot_block() {
    // Every core hammers one block with writes: the worst possible race
    // density for token movement.
    for kind in [
        ProtocolKind::Directory,
        ProtocolKind::Patch,
        ProtocolKind::TokenB,
    ] {
        for seed in 0..4 {
            let protocol = ProtocolConfig::new(kind, 4).with_predictor(PredictorChoice::All);
            let cfg = SimConfig::new(kind, 4)
                .with_protocol(protocol)
                .with_workload(WorkloadSpec::Microbenchmark {
                    table_blocks: 1,
                    write_frac: 0.7,
                    think_mean: 0,
                })
                .with_ops_per_core(200)
                .with_seed(seed)
                .with_checks();
            let r = run(&cfg);
            assert_eq!(r.ops_completed, 800, "{kind} seed={seed}");
        }
    }
}

#[test]
fn fuzz_constrained_bandwidth() {
    // Narrow links change message orderings dramatically (and exercise
    // the best-effort drop path under checking).
    for kind in [
        ProtocolKind::Directory,
        ProtocolKind::Patch,
        ProtocolKind::TokenB,
    ] {
        let protocol = ProtocolConfig::new(kind, 4)
            .with_predictor(PredictorChoice::All)
            .with_cache_geometry(CacheGeometry::new(8, 2));
        let cfg = SimConfig::new(kind, 4)
            .with_protocol(protocol)
            .with_bandwidth(patchsim::LinkBandwidth::BytesPerCycle(0.5))
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 64,
                write_frac: 0.4,
                think_mean: 5,
            })
            .with_ops_per_core(150)
            .with_seed(17)
            .with_checks();
        let r = run(&cfg);
        assert_eq!(r.ops_completed, 600, "{kind}");
    }
}

#[test]
fn fuzz_migratory_heavy_sharing() {
    // Read-modify-write chains exercise the migratory optimization and
    // its interaction with direct requests.
    let profile = patchsim::SharingProfile {
        name: "migratory-fuzz",
        cluster_size: 4,
        shared_frac: 0.9,
        shared_blocks: 16,
        migratory_frac: 0.8,
        producer_consumer_frac: 0.0,
        pc_blocks_per_core: 1,
        shared_write_frac: 0.5,
        private_blocks: 32,
        private_write_frac: 0.3,
        think_mean: 2,
    };
    for kind in [
        ProtocolKind::Directory,
        ProtocolKind::Patch,
        ProtocolKind::TokenB,
    ] {
        for seed in 0..4 {
            let protocol = ProtocolConfig::new(kind, 4)
                .with_predictor(PredictorChoice::All)
                .with_cache_geometry(CacheGeometry::new(4, 2));
            let cfg = SimConfig::new(kind, 4)
                .with_protocol(protocol)
                .with_workload(WorkloadSpec::Synthetic(profile.clone()))
                .with_ops_per_core(200)
                .with_seed(seed)
                .with_checks();
            let r = run(&cfg);
            assert_eq!(r.ops_completed, 800, "{kind} seed={seed}");
        }
    }
}

#[test]
fn fuzz_coarse_encodings_under_checks() {
    for kind in [ProtocolKind::Directory, ProtocolKind::Patch] {
        for k in [2u16, 4] {
            let protocol = ProtocolConfig::new(kind, 4)
                .with_predictor(PredictorChoice::All)
                .with_sharer_encoding(patchsim::SharerEncoding::Coarse { cores_per_bit: k })
                .with_cache_geometry(CacheGeometry::new(8, 2));
            let cfg = SimConfig::new(kind, 4)
                .with_protocol(protocol)
                .with_workload(WorkloadSpec::Microbenchmark {
                    table_blocks: 48,
                    write_frac: 0.4,
                    think_mean: 4,
                })
                .with_ops_per_core(200)
                .with_seed(23)
                .with_checks();
            let r = run(&cfg);
            assert_eq!(r.ops_completed, 800, "{kind} K={k}");
        }
    }
}
