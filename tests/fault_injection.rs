//! Integration tests for the deterministic fault-injection layer: every
//! shipped fault mix must preserve the safety oracles (token conservation
//! and coherence checking stay on and clean), satisfy the liveness
//! oracles (no miss outlives the starvation horizon; every run
//! completes), replay exactly from `(spec, seed)`, and leave fault-free
//! runs untouched.

use patchsim::{run, FaultSpec, PredictorChoice, ProtocolKind, RunResult, SimConfig, WorkloadSpec};

/// A contended small-system configuration that exercises every protocol
/// path (forwards, invalidations, token returns) in a debug-build-friendly
/// number of cycles.
fn base(kind: ProtocolKind) -> SimConfig {
    let config = SimConfig::new(kind, 8)
        .with_workload(WorkloadSpec::Microbenchmark {
            table_blocks: 32,
            write_frac: 0.4,
            think_mean: 3,
        })
        .with_ops_per_core(50)
        .with_warmup(20)
        .with_checks()
        .with_liveness_horizon(300_000);
    if kind == ProtocolKind::Patch {
        config.with_predictor(PredictorChoice::All)
    } else {
        config
    }
}

/// The protocol families the `faults` experiment plan sweeps.
const KINDS: [ProtocolKind; 3] = [
    ProtocolKind::Directory,
    ProtocolKind::Patch,
    ProtocolKind::TokenB,
];

/// The observable fingerprint of a run, for replay comparisons.
fn fingerprint(result: &RunResult) -> (u64, u64, u64, u64) {
    (
        result.runtime_cycles,
        result.events_processed,
        result.traffic.total_bytes(),
        result.measured_misses,
    )
}

/// Safety + liveness oracles hold for every shipped fault preset on every
/// protocol family: the run completes (liveness — the armed watchdog
/// panics on starvation, `max_cycles` on livelock), every core retires
/// its quota, and the token-conservation and coherence checkers both ran
/// (safety — they panic on any violation).
#[test]
fn every_fault_preset_passes_safety_and_liveness_oracles() {
    for kind in KINDS {
        for preset in FaultSpec::PRESETS {
            let spec = FaultSpec::parse(preset).expect("shipped preset parses");
            let config = base(kind).with_faults(spec).with_seed(7);
            let result = run(&config);
            assert_eq!(
                result.ops_completed,
                8 * 50,
                "{kind:?} under '{preset}' lost operations"
            );
            assert!(
                result.token_audits > 0,
                "{kind:?} under '{preset}': token auditor never ran"
            );
            assert!(
                result.coherence_checks > 0,
                "{kind:?} under '{preset}': coherence checker never ran"
            );
        }
    }
}

/// The same `(spec, seed)` pair replays the exact same execution, and a
/// different seed draws a different fault schedule.
#[test]
fn fault_schedules_replay_from_spec_and_seed() {
    let config = base(ProtocolKind::Patch)
        .with_faults(FaultSpec::parse("chaos").unwrap())
        .with_seed(11);
    let first = fingerprint(&run(&config));
    let again = fingerprint(&run(&config));
    assert_eq!(first, again, "identical (spec, seed) must replay exactly");

    let other = fingerprint(&run(&config.with_seed(12)));
    assert_ne!(
        first, other,
        "a different seed must draw a different fault schedule"
    );
}

/// An explicit `--faults none` is indistinguishable from never mentioning
/// faults: same timing, same traffic, same event count — the golden
/// figures and the pinned perf hash cannot move.
#[test]
fn explicit_none_is_identical_to_the_default() {
    for kind in KINDS {
        let plain = base(kind).with_seed(3);
        let mut labeled = plain.clone().with_faults(FaultSpec::none());
        labeled.liveness_horizon = None; // watchdog events off, like the default
        let mut plain = plain;
        plain.liveness_horizon = None;
        assert_eq!(
            fingerprint(&run(&plain)),
            fingerprint(&run(&labeled)),
            "{kind:?}: '--faults none' must not perturb the run"
        );
    }
}

/// The armed liveness horizon actually fires: with an impossible
/// 1-cycle bound, the first completed miss trips the oracle.
#[test]
#[should_panic(expected = "liveness violation")]
fn watchdog_flags_horizon_violations() {
    let config = base(ProtocolKind::Directory).with_liveness_horizon(1);
    run(&config);
}

/// Regression guard for the PR 1 TokenB deadlock class (stale
/// `PersistentActivate`/`PersistentDeactivate` arbitration), re-triggered
/// through the fault layer instead of a hand-built delivery schedule: a
/// heavily reordered, spiky interconnect on a write-contended table
/// drives TokenB through reissue and persistent-request arbitration while
/// activations and deactivations arrive out of order. Before the
/// serial-number fix this shape deadlocked (two nodes each waiting on the
/// other's stale activation); with it, every run completes under the
/// starvation watchdog.
#[test]
fn tokenb_persistent_arbitration_survives_heavy_reordering() {
    let mut persistent_requests = 0;
    for seed in [1, 2, 3] {
        let config = SimConfig::new(ProtocolKind::TokenB, 8)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 16,
                write_frac: 0.6,
                think_mean: 2,
            })
            .with_ops_per_core(80)
            .with_warmup(20)
            .with_checks()
            .with_liveness_horizon(300_000)
            .with_faults(FaultSpec::parse("reorder:256+delay:0.05:400").unwrap())
            .with_seed(seed);
        let result = run(&config);
        assert_eq!(result.ops_completed, 8 * 80, "seed {seed} lost operations");
        persistent_requests += result.counters.persistent_requests;
    }
    assert!(
        persistent_requests > 0,
        "the adversarial schedule never reached persistent arbitration, \
         so it no longer covers the PR 1 deadlock class"
    );
}
