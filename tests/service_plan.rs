//! Integration tests for the `service` experiment plan and the
//! `--workload`/`--record-trace` command line: the sweep the CI smoke
//! job runs (`runplan service --quick`) must be bit-identical at any
//! worker-thread count, its burst cells must actually burst, and the
//! `runplan` binary must reject a trace replayed at the wrong system
//! size with usage and exit status 2.

use std::process::Command;

use patchsim::exp::{Format, Runner};
use patchsim::{TraceWriter, WorkloadSpec};
use patchsim_bench::{service_plan, with_standard_columns, Scale, SERVICE_BURST};

/// A debug-build-friendly scale for plan-level tests.
fn tiny() -> Scale {
    let mut scale = Scale::quick();
    scale.cores = 8;
    scale.ops = 40;
    scale.warmup = 20;
    scale
}

fn csv(table: &patchsim::exp::Table) -> String {
    let mut out = Vec::new();
    table.emit(Format::Csv, &mut out).unwrap();
    String::from_utf8(out).unwrap()
}

/// The determinism contract holds for the service generators: a serial
/// run and a 4-worker run of the whole service plan emit byte-identical
/// tables. The Zipfian/burst draws come from a dedicated RNG stream that
/// is still a pure function of the cell's seed.
#[test]
fn service_plan_is_bit_identical_across_thread_counts() {
    let plan = service_plan(tiny());
    let serial = with_standard_columns(Runner::serial().run(&plan));
    let parallel = with_standard_columns(Runner::new().with_threads(4).run(&plan));
    assert_eq!(
        csv(&serial),
        csv(&parallel),
        "service traffic must be a pure function of the cell, not of scheduling"
    );
}

/// The grid shape is skew x arrivals x protocol, and the burst axis
/// actually arms the burst parameters on (only) its cells.
#[test]
fn service_plan_burst_cells_are_bursty() {
    let plan = service_plan(tiny());
    assert_eq!(plan.axis_names(), &["skew", "arrivals", "config"]);
    assert_eq!(plan.len(), 3 * 2 * 3);
    let (period, len, div) = SERVICE_BURST;
    for cell in plan.cells() {
        let WorkloadSpec::Service(profile) = &cell.config.workload else {
            panic!("service cell without a service workload");
        };
        if cell.labels[1] == "burst" {
            assert_eq!(profile.burst_period, period);
            assert_eq!(profile.burst_len, len);
            assert_eq!(profile.burst_think_div, div);
        } else {
            assert_eq!(cell.labels[1], "steady");
            assert_eq!(profile.burst_period, 0, "steady cells must not burst");
        }
    }
}

/// Replaying a trace at the wrong system size is a usage error: the
/// `runplan` binary prints the mismatch and exits with status 2 before
/// running anything.
#[test]
fn runplan_rejects_a_trace_with_the_wrong_node_count() {
    // An 8-core trace; `--quick` plans run 16 cores.
    let mut path = std::env::temp_dir();
    path.push(format!("patchsim_wrong_scale_{}.ptrc", std::process::id()));
    let mut writer = TraceWriter::new("mismatch", 1, 8, 32);
    let _ = &mut writer; // no items needed: the size check precedes replay
    writer.write_path(&path).expect("trace writes");

    let output = Command::new(env!("CARGO_BIN_EXE_runplan"))
        .args([
            "faults",
            "--quick",
            "--workload",
            &format!("trace:{}", path.display()),
        ])
        .output()
        .expect("runplan executes");
    std::fs::remove_file(&path).ok();

    assert_eq!(output.status.code(), Some(2), "usage errors exit 2");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("recorded on 8 cores"),
        "stderr names the mismatch: {stderr}"
    );
    assert!(stderr.contains("Usage:"), "usage text follows the error");
}

/// An unreadable trace path is also a usage error, not a panic.
#[test]
fn runplan_rejects_a_missing_trace_file() {
    let output = Command::new(env!("CARGO_BIN_EXE_runplan"))
        .args(["faults", "--quick", "--workload", "trace:/nonexistent.ptrc"])
        .output()
        .expect("runplan executes");
    assert_eq!(output.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("cannot replay trace"), "stderr: {stderr}");
}
