//! Coherence protocols for the `patchsim` simulator.
//!
//! Three protocols, sharing one message vocabulary and one controller
//! interface:
//!
//! * [`DirectoryController`] — **DIRECTORY**, the baseline: a blocking
//!   GEMS-style MOESI+F directory protocol (§5.1 of the paper). Races are
//!   resolved without nacks by a busy state per block at the home; write
//!   misses complete by counting invalidation acknowledgements.
//! * [`PatchController`] — **PATCH**, the paper's contribution (§5.2): the
//!   same directory skeleton with token state added everywhere, completion
//!   by token counting, predictive best-effort direct requests, and
//!   forward progress by **token tenure** (§4).
//! * [`TokenBController`] — **TokenB**, the broadcast token-coherence
//!   comparator: transient broadcast requests, reissue on timeout, and
//!   persistent requests with per-node tables as the forward-progress
//!   backstop.
//!
//! Controllers are *node* objects: each hosts the node's private cache
//! side and its slice of the distributed home (directory/memory). They
//! communicate only through [`Msg`] values exchanged via an [`Outbox`] —
//! the `patchsim` core crate wires outboxes to the torus interconnect and
//! the event queue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod common;
mod config;
mod controller;
mod directory;
mod msg;
mod patch;
mod tokenb;

pub use common::{LatencyEstimator, MigratoryDetector};
pub use config::{ProtocolConfig, ProtocolKind, TenureConfig};
pub use controller::{
    build_controller, Completion, Controller, CoreResponse, MemOp, OutMsg, Outbox,
    ProtocolCounters, ProtocolGauges, SpanMarks, TimerKey, TimerKind,
};
pub use directory::DirectoryController;
pub use msg::{Msg, MsgBody, RequestStyle, CONTROL_MSG_BYTES, DATA_MSG_BYTES};
pub use patch::PatchController;
pub use tokenb::TokenBController;
