//! The coherence message vocabulary shared by all three protocols.

use patchsim_mem::{AccessKind, BlockAddr, TokenSet};
use patchsim_noc::{NocPayload, NodeId, TrafficClass};

/// Wire size of a control (data-less) message: command + address + token
/// count + misc. 8 bytes, as in GEMS-style traffic accounting.
pub const CONTROL_MSG_BYTES: u64 = 8;
/// Wire size of a message carrying a 64-byte cache block plus header.
pub const DATA_MSG_BYTES: u64 = 72;

/// How a request message was issued; determines both its routing and its
/// traffic-accounting class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RequestStyle {
    /// Requester → home: the ordering-establishing request of DIRECTORY
    /// and PATCH.
    Indirect,
    /// Requester → predicted peers (PATCH's best-effort hints) or the
    /// initial broadcast transient request (TokenB).
    Direct,
    /// A reissued transient request (TokenB).
    Reissue,
    /// A persistent-request invocation sent to the home arbiter (TokenB).
    Persistent,
}

/// A coherence message: an address plus a protocol-specific body.
#[derive(Clone, Debug, PartialEq)]
pub struct Msg {
    /// The cache block this message concerns.
    pub addr: BlockAddr,
    /// The message body.
    pub body: MsgBody,
}

/// Message bodies. One shared enum keeps the interconnect and system
/// plumbing monomorphic; each protocol uses the subset it needs.
#[derive(Clone, Debug, PartialEq)]
pub enum MsgBody {
    /// A coherence request.
    Request {
        /// Read (GetS) or write (GetM).
        kind: AccessKind,
        /// The requesting node.
        requester: NodeId,
        /// The requester's transaction serial number (unique per node).
        serial: u64,
        /// How the request was issued.
        style: RequestStyle,
    },
    /// Home → owner/sharers: a forwarded request (serves as the
    /// invalidation message for write requests).
    Fwd {
        /// The forwarded request's kind.
        kind: AccessKind,
        /// Who the response should go to.
        requester: NodeId,
        /// The requester's transaction serial.
        serial: u64,
        /// DIRECTORY: how many invalidation acks the requester should
        /// expect. Unused (0) in the token-counting protocols.
        acks_expected: u32,
        /// Whether the home upgraded a read to an exclusive grant
        /// (migratory-sharing optimization).
        exclusive: bool,
    },
    /// A response carrying the cache block.
    Data {
        /// Responding node (trains destination-set predictors).
        from: NodeId,
        /// The requester's transaction serial this responds to.
        serial: u64,
        /// Tokens transferred (empty for DIRECTORY).
        tokens: TokenSet,
        /// Logical block contents (version stamp) for coherence checking.
        version: u64,
        /// DIRECTORY: invalidation acks the requester must collect.
        acks_expected: u32,
        /// Whether this grants exclusive permission to a read request.
        exclusive: bool,
        /// DIRECTORY: whether the data is dirty with respect to memory.
        dirty: bool,
        /// PATCH: whether the home has activated this request.
        activation: bool,
    },
    /// A data-less acknowledgement: DIRECTORY invalidation acks and
    /// PATCH/TokenB token transfers.
    Ack {
        /// Responding node.
        from: NodeId,
        /// The requester's transaction serial this responds to.
        serial: u64,
        /// Tokens transferred (empty for DIRECTORY; never a dirty owner —
        /// Rule 4 forces those onto [`MsgBody::Data`]).
        tokens: TokenSet,
        /// PATCH: whether the home has activated this request.
        activation: bool,
    },
    /// Home → requester: standalone activation notice. PATCH sends this
    /// when activating a request whose response carries no payload from
    /// the home (e.g. owner-upgrade misses); DIRECTORY reuses it to carry
    /// the ack count on upgrade misses.
    Activation {
        /// The requester's transaction serial being activated.
        serial: u64,
        /// DIRECTORY: invalidation acks the requester must collect.
        acks_expected: u32,
        /// Whether the home upgraded a read to an exclusive grant.
        exclusive: bool,
    },
    /// Requester → home: transaction complete; unblock the block and
    /// update the directory (DIRECTORY's "unblock", PATCH's deactivation,
    /// TokenB's persistent-request completion).
    Deactivate {
        /// The completing requester.
        requester: NodeId,
        /// Its transaction serial.
        serial: u64,
        /// Whether the requester now holds ownership (owner token or
        /// directory ownership).
        new_owner: bool,
        /// Whether the requester retains a readable copy.
        keeps_copy: bool,
    },
    /// Cache → home: writeback / token return. Carries all of the
    /// sender's tokens for the block; `version` is `Some` when the
    /// message carries data.
    Put {
        /// The evicting/discarding node.
        node: NodeId,
        /// Tokens returned (empty for DIRECTORY writebacks).
        tokens: TokenSet,
        /// Block contents if the writeback carries data.
        version: Option<u64>,
        /// DIRECTORY: whether the written-back data is dirty.
        dirty: bool,
    },
    /// Home → cache: DIRECTORY writeback acknowledgement.
    WbAck {
        /// Whether the writeback was stale (the block had already moved
        /// on; the cache simply drops its writeback state).
        stale: bool,
    },
    /// TokenB: home arbiter → everyone; activate a persistent request.
    PersistentActivate {
        /// The starving node all tokens must flow to.
        starver: NodeId,
        /// What the starver needs.
        kind: AccessKind,
        /// The starver's transaction serial, as carried by its persistent
        /// request. On an unordered network this is what lets the starver
        /// (and the arbiter, on deactivation) tell a live activation from
        /// a stale one left over from an earlier miss on the same block.
        serial: u64,
    },
    /// TokenB: home arbiter → everyone; the persistent request completed.
    PersistentDeactivate {
        /// The node whose persistent request is done.
        starver: NodeId,
        /// The transaction serial of the completed persistent request; a
        /// late deactivation for an old serial must not clear a fresh
        /// table entry for the same starver.
        serial: u64,
    },
}

impl Msg {
    /// Convenience constructor.
    pub fn new(addr: BlockAddr, body: MsgBody) -> Self {
        Msg { addr, body }
    }

    /// The tokens this message carries (for conservation auditing).
    pub fn tokens(&self) -> TokenSet {
        match &self.body {
            MsgBody::Data { tokens, .. }
            | MsgBody::Ack { tokens, .. }
            | MsgBody::Put { tokens, .. } => *tokens,
            _ => TokenSet::empty(),
        }
    }

    /// Whether this message carries the cache block.
    pub fn carries_data(&self) -> bool {
        matches!(
            self.body,
            MsgBody::Data { .. }
                | MsgBody::Put {
                    version: Some(_),
                    ..
                }
        )
    }
}

impl NocPayload for Msg {
    fn size_bytes(&self) -> u64 {
        if self.carries_data() {
            DATA_MSG_BYTES
        } else {
            CONTROL_MSG_BYTES
        }
    }

    fn traffic_class(&self) -> TrafficClass {
        match &self.body {
            MsgBody::Request { style, .. } => match style {
                RequestStyle::Indirect => TrafficClass::IndirectRequest,
                RequestStyle::Direct => TrafficClass::DirectRequest,
                RequestStyle::Reissue | RequestStyle::Persistent => TrafficClass::Reissue,
            },
            MsgBody::Fwd { .. } => TrafficClass::Forward,
            MsgBody::Data { .. } => TrafficClass::Data,
            MsgBody::Ack { .. } => TrafficClass::Ack,
            MsgBody::Activation { .. } | MsgBody::Deactivate { .. } => TrafficClass::Activation,
            MsgBody::Put { .. } | MsgBody::WbAck { .. } => TrafficClass::Writeback,
            MsgBody::PersistentActivate { .. } | MsgBody::PersistentDeactivate { .. } => {
                TrafficClass::Reissue
            }
        }
    }

    /// Direct requests are pure hints: token-free, best-effort, and
    /// already tolerated in duplicate (a second copy at a node that
    /// cannot help is simply ignored). Everything else — token carriers,
    /// activations, persistent-request arbitration — assumes at-most-once
    /// delivery, so the fault layer models retransmission instead of
    /// duplicating them.
    fn dup_safe(&self) -> bool {
        matches!(
            self.body,
            MsgBody::Request {
                style: RequestStyle::Direct,
                ..
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_mem::OwnerStatus;

    fn addr() -> BlockAddr {
        BlockAddr::new(42)
    }

    #[test]
    fn sizes_follow_data_rule() {
        let data = Msg::new(
            addr(),
            MsgBody::Data {
                from: NodeId::new(0),
                serial: 1,
                tokens: TokenSet::empty(),
                version: 0,
                acks_expected: 0,
                exclusive: false,
                dirty: false,
                activation: false,
            },
        );
        assert_eq!(data.size_bytes(), DATA_MSG_BYTES);
        let ack = Msg::new(
            addr(),
            MsgBody::Ack {
                from: NodeId::new(0),
                serial: 1,
                tokens: TokenSet::plain(3),
                activation: false,
            },
        );
        assert_eq!(ack.size_bytes(), CONTROL_MSG_BYTES);
        // A writeback with data is data-sized; a token return without data
        // is control-sized.
        let put_data = Msg::new(
            addr(),
            MsgBody::Put {
                node: NodeId::new(1),
                tokens: TokenSet::full(4, OwnerStatus::Dirty),
                version: Some(7),
                dirty: true,
            },
        );
        assert_eq!(put_data.size_bytes(), DATA_MSG_BYTES);
        let put_clean = Msg::new(
            addr(),
            MsgBody::Put {
                node: NodeId::new(1),
                tokens: TokenSet::plain(1),
                version: None,
                dirty: false,
            },
        );
        assert_eq!(put_clean.size_bytes(), CONTROL_MSG_BYTES);
    }

    #[test]
    fn traffic_classes_match_figure_categories() {
        let req = |style| {
            Msg::new(
                addr(),
                MsgBody::Request {
                    kind: AccessKind::Read,
                    requester: NodeId::new(0),
                    serial: 0,
                    style,
                },
            )
            .traffic_class()
        };
        assert_eq!(req(RequestStyle::Indirect), TrafficClass::IndirectRequest);
        assert_eq!(req(RequestStyle::Direct), TrafficClass::DirectRequest);
        assert_eq!(req(RequestStyle::Reissue), TrafficClass::Reissue);
        assert_eq!(req(RequestStyle::Persistent), TrafficClass::Reissue);

        let deact = Msg::new(
            addr(),
            MsgBody::Deactivate {
                requester: NodeId::new(0),
                serial: 0,
                new_owner: true,
                keeps_copy: true,
            },
        );
        assert_eq!(deact.traffic_class(), TrafficClass::Activation);
    }

    #[test]
    fn tokens_extracted_for_auditing() {
        let msg = Msg::new(
            addr(),
            MsgBody::Ack {
                from: NodeId::new(2),
                serial: 9,
                tokens: TokenSet::plain(5),
                activation: false,
            },
        );
        assert_eq!(msg.tokens().count(), 5);
        let fwd = Msg::new(
            addr(),
            MsgBody::Fwd {
                kind: AccessKind::Write,
                requester: NodeId::new(0),
                serial: 0,
                acks_expected: 0,
                exclusive: false,
            },
        );
        assert!(fwd.tokens().is_empty());
    }
}
