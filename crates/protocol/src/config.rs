//! Protocol configuration.

use patchsim_mem::{CacheGeometry, SharerEncoding};
use patchsim_noc::{FabricKind, Priority};
use patchsim_predictor::PredictorChoice;

/// Which coherence protocol to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// The blocking MOESI+F directory baseline (§5.1).
    Directory,
    /// PATCH: directory + token counting + token tenure (§5.2).
    Patch,
    /// TokenB: broadcast token coherence with persistent requests.
    TokenB,
}

impl ProtocolKind {
    /// The label used in figures.
    pub fn label(self) -> &'static str {
        match self {
            ProtocolKind::Directory => "Directory",
            ProtocolKind::Patch => "PATCH",
            ProtocolKind::TokenB => "TokenB",
        }
    }
}

impl std::fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Token-tenure timeout policy.
///
/// The paper "adaptively sets the value of the tenure timeout to twice the
/// dynamic average round trip latency"; a fixed timeout is provided for
/// the ablation benches.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TenureConfig {
    /// `multiplier ×` the node's running average miss round-trip, but
    /// never below `floor` cycles.
    Adaptive {
        /// Multiple of the dynamic average round-trip (paper: 2.0).
        multiplier: f64,
        /// Lower bound in cycles, so cold-start estimates cannot produce
        /// degenerate timeouts.
        floor: u64,
    },
    /// A fixed timeout in cycles.
    Fixed(u64),
}

impl TenureConfig {
    /// The paper's adaptive policy (2× average round trip).
    pub fn paper_default() -> Self {
        TenureConfig::Adaptive {
            multiplier: 2.0,
            floor: 50,
        }
    }

    /// The timeout to use given the current average round-trip estimate.
    pub fn timeout(self, avg_round_trip: f64) -> u64 {
        match self {
            TenureConfig::Adaptive { multiplier, floor } => {
                ((avg_round_trip * multiplier) as u64).max(floor)
            }
            TenureConfig::Fixed(cycles) => cycles,
        }
    }
}

/// Full configuration for one protocol instance.
///
/// Defaults reproduce the paper's baseline system: per-node private 1MB
/// 4-way caches with 64-byte blocks, a 16-cycle directory, 80-cycle DRAM,
/// full-map sharer encoding, the migratory-sharing optimization on, and —
/// for PATCH — best-effort direct requests with the adaptive tenure
/// timeout and the post-deactivation ignore window.
///
/// # Examples
///
/// ```
/// use patchsim_protocol::{ProtocolConfig, ProtocolKind};
/// use patchsim_predictor::PredictorChoice;
///
/// let cfg = ProtocolConfig::new(ProtocolKind::Patch, 64)
///     .with_predictor(PredictorChoice::All);
/// assert_eq!(cfg.total_tokens, 64);
/// ```
#[derive(Clone, Debug)]
pub struct ProtocolConfig {
    /// Which protocol to run.
    pub kind: ProtocolKind,
    /// System size.
    pub num_nodes: u16,
    /// Interconnect topology the system is assembled on. Protocols are
    /// fabric-agnostic (they address nodes, not links), but the choice
    /// lives here beside `num_nodes` so every layer that resizes or
    /// clones the system configuration carries it along.
    pub fabric: FabricKind,
    /// Tokens per block (`T`); the paper uses one per processor.
    pub total_tokens: u32,
    /// Private cache shape.
    pub cache_geometry: CacheGeometry,
    /// Directory sharer encoding (Figures 9–10 sweep the coarse variants).
    pub sharer_encoding: SharerEncoding,
    /// Directory lookup latency in cycles (paper: 16).
    pub dir_latency: u64,
    /// DRAM access latency in cycles (paper: 80).
    pub dram_latency: u64,
    /// Private cache hit latency in cycles (paper: 12-cycle L2).
    pub cache_hit_latency: u64,
    /// Whether the home applies the migratory-sharing optimization.
    pub migratory_opt: bool,
    /// PATCH: destination-set prediction policy for direct requests.
    pub predictor: PredictorChoice,
    /// PATCH: delivery priority of direct requests. `BestEffort` is
    /// PATCH's bandwidth adaptivity; `Normal` gives the non-adaptive
    /// variant of Figures 6–8.
    pub direct_priority: Priority,
    /// PATCH: tenure timeout policy.
    pub tenure: TenureConfig,
    /// PATCH: whether to reuse the timer after deactivation to keep
    /// ignoring direct requests (the §5.2 race-mitigation window).
    pub deact_window: bool,
    /// PATCH/TokenB: whether zero-token acknowledgements are elided
    /// (`true`, the protocols' defining optimization) or sent anyway
    /// (`false`, for the ablation quantifying ack implosion).
    pub ack_elision: bool,
    /// TokenB: transient reissues before escalating to a persistent
    /// request.
    pub reissues_before_persistent: u32,
    /// Expected distinct blocks the workload touches, used to pre-size
    /// the controllers' block-keyed tables so the event loop never grows
    /// a hash map mid-run. A hint, not a bound: tables still grow past it
    /// correctly. `None` (the default) lets the simulation core derive it
    /// from the workload's footprint; setting it explicitly wins.
    pub working_set_hint: Option<u64>,
}

impl ProtocolConfig {
    /// Paper-default configuration for `kind` on `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(kind: ProtocolKind, num_nodes: u16) -> Self {
        assert!(num_nodes > 0, "a system needs at least one node");
        ProtocolConfig {
            kind,
            num_nodes,
            fabric: FabricKind::Torus,
            total_tokens: num_nodes as u32,
            cache_geometry: CacheGeometry::from_capacity(1 << 20, 64, 4),
            sharer_encoding: SharerEncoding::FullMap,
            dir_latency: 16,
            dram_latency: 80,
            cache_hit_latency: 12,
            migratory_opt: true,
            predictor: PredictorChoice::None,
            direct_priority: Priority::BestEffort,
            tenure: TenureConfig::paper_default(),
            deact_window: true,
            ack_elision: true,
            reissues_before_persistent: 2,
            working_set_hint: None,
        }
    }

    /// Sets the expected working-set size in blocks (pre-sizes the
    /// controllers' block-keyed tables). Overrides the simulation core's
    /// workload-derived estimate.
    pub fn with_working_set_hint(mut self, blocks: u64) -> Self {
        self.working_set_hint = Some(blocks);
        self
    }

    /// The working-set hint, defaulting to the paper's 16k-block
    /// microbenchmark table when neither the user nor the simulation
    /// core supplied one.
    fn working_set(&self) -> u64 {
        self.working_set_hint.unwrap_or(16 * 1024)
    }

    /// Pre-size for a home-side table: each node homes an interleaved
    /// `1/num_nodes` slice of the working set. Clamped so degenerate
    /// hints can neither underprovision nor balloon memory.
    pub fn home_table_capacity(&self) -> usize {
        (self.working_set() / self.num_nodes as u64).clamp(64, 1 << 16) as usize
    }

    /// Pre-size for a cache-side transaction table: bounded by the blocks
    /// a node can have in flight or recently tracked, far below the full
    /// working set.
    pub fn cache_table_capacity(&self) -> usize {
        64
    }

    /// Sets the destination-set predictor (PATCH).
    pub fn with_predictor(mut self, predictor: PredictorChoice) -> Self {
        self.predictor = predictor;
        self
    }

    /// Sets the interconnect fabric the system is assembled on.
    pub fn with_fabric(mut self, fabric: FabricKind) -> Self {
        self.fabric = fabric;
        self
    }

    /// Sets the sharer encoding.
    pub fn with_sharer_encoding(mut self, encoding: SharerEncoding) -> Self {
        self.sharer_encoding = encoding;
        self
    }

    /// Makes PATCH's direct requests guaranteed-delivery (the
    /// "NonAdaptive" variant of Figures 6–8).
    pub fn non_adaptive(mut self) -> Self {
        self.direct_priority = Priority::Normal;
        self
    }

    /// Sets the cache geometry.
    pub fn with_cache_geometry(mut self, geometry: CacheGeometry) -> Self {
        self.cache_geometry = geometry;
        self
    }

    /// Sets the tenure policy (PATCH).
    pub fn with_tenure(mut self, tenure: TenureConfig) -> Self {
        self.tenure = tenure;
        self
    }

    /// Disables the post-deactivation direct-request ignore window
    /// (ablation).
    pub fn without_deact_window(mut self) -> Self {
        self.deact_window = false;
        self
    }

    /// Disables zero-token ack elision (ablation).
    pub fn without_ack_elision(mut self) -> Self {
        self.ack_elision = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let cfg = ProtocolConfig::new(ProtocolKind::Directory, 64);
        assert_eq!(cfg.dir_latency, 16);
        assert_eq!(cfg.dram_latency, 80);
        assert_eq!(cfg.cache_hit_latency, 12);
        assert_eq!(cfg.total_tokens, 64);
        assert_eq!(cfg.cache_geometry.blocks(), 16384); // 1MB / 64B
        assert!(cfg.migratory_opt);
        assert!(cfg.ack_elision);
        assert_eq!(cfg.sharer_encoding, SharerEncoding::FullMap);
        assert_eq!(cfg.fabric, FabricKind::Torus);
    }

    #[test]
    fn fabric_choice_survives_builders() {
        let cfg = ProtocolConfig::new(ProtocolKind::Patch, 16)
            .with_fabric(FabricKind::Ring)
            .with_predictor(PredictorChoice::All)
            .non_adaptive();
        assert_eq!(cfg.fabric, FabricKind::Ring);
    }

    #[test]
    fn tenure_timeout_policies() {
        let adaptive = TenureConfig::paper_default();
        assert_eq!(adaptive.timeout(200.0), 400);
        assert_eq!(adaptive.timeout(1.0), 50, "floor applies");
        assert_eq!(TenureConfig::Fixed(123).timeout(9999.0), 123);
    }

    #[test]
    fn builders_apply() {
        let cfg = ProtocolConfig::new(ProtocolKind::Patch, 16)
            .with_predictor(PredictorChoice::All)
            .non_adaptive()
            .without_deact_window()
            .without_ack_elision();
        assert_eq!(cfg.predictor, PredictorChoice::All);
        assert_eq!(cfg.direct_priority, Priority::Normal);
        assert!(!cfg.deact_window);
        assert!(!cfg.ack_elision);
    }

    #[test]
    fn table_capacities_scale_and_clamp() {
        let cfg = ProtocolConfig::new(ProtocolKind::Patch, 16).with_working_set_hint(16 * 1024);
        assert_eq!(cfg.home_table_capacity(), 1024);
        // Tiny hints clamp up, giant hints clamp down.
        assert_eq!(
            ProtocolConfig::new(ProtocolKind::Patch, 64)
                .with_working_set_hint(1)
                .home_table_capacity(),
            64
        );
        assert_eq!(
            ProtocolConfig::new(ProtocolKind::Patch, 1)
                .with_working_set_hint(u64::MAX)
                .home_table_capacity(),
            1 << 16
        );
    }

    #[test]
    fn labels() {
        assert_eq!(ProtocolKind::Directory.to_string(), "Directory");
        assert_eq!(ProtocolKind::Patch.to_string(), "PATCH");
        assert_eq!(ProtocolKind::TokenB.to_string(), "TokenB");
    }
}
