//! The controller interface between protocols and the simulation core.

use patchsim_kernel::Cycle;
use patchsim_mem::{AccessKind, BlockAddr, TokenSet};
use patchsim_noc::{DestSet, NodeId, Priority};

use crate::{Msg, ProtocolConfig, ProtocolKind};

/// A memory operation issued by a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemOp {
    /// The block to access.
    pub addr: BlockAddr,
    /// Load or store.
    pub kind: AccessKind,
}

/// The controller's immediate answer to a core request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreResponse {
    /// The access hit; it completes after the cache hit latency. The
    /// returned version is the value read (or written).
    Hit {
        /// The block version observed (reads) or produced (writes).
        version: u64,
    },
    /// The access missed (or is deferred behind a pending writeback); a
    /// [`Completion`] will be emitted later.
    MissPending,
}

/// A completed miss, reported through the [`Outbox`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The completed access's block.
    pub addr: BlockAddr,
    /// The completed access's kind.
    pub kind: AccessKind,
    /// The block version observed (reads) or produced (writes) — consumed
    /// by the single-writer/valid-data checker.
    pub version: u64,
    /// When the miss was issued (for latency accounting).
    pub issued_at: Cycle,
    /// Intermediate phase timestamps for the miss (span telemetry).
    pub marks: SpanMarks,
}

/// Phase timestamps a controller stamps onto an in-flight miss, carried
/// through the TBE and reported with its [`Completion`].
///
/// Recording a mark is a pure data write — it never alters protocol
/// decisions, message contents, or RNG state — so spans are observation
/// only and results are bit-identical whether or not anyone reads them.
///
/// The core derives a three-phase breakdown from these two marks:
/// *network* (issue → `first_progress`), *home/ordering*
/// (`first_progress` → `ordered`), and *token wait* (`ordered` →
/// completion). Missing marks collapse their phase to zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanMarks {
    /// First cycle any response for this miss arrived (first token,
    /// data, or ack) — the end of the pure network/request phase.
    pub first_progress: Option<Cycle>,
    /// Cycle the miss was ordered by its point of ordering: the
    /// directory's grant/activation (DIRECTORY, PATCH) or the persistent
    /// arbiter's activation (TokenB). Unset for misses satisfied
    /// entirely by direct responses.
    pub ordered: Option<Cycle>,
}

/// Instantaneous controller-occupancy gauges, sampled by the epoch
/// metrics layer. Reading them has no side effects.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolGauges {
    /// Outstanding demand-miss TBEs at this node.
    pub tbes: u64,
    /// Home-side table entries materialized at this node.
    pub home_entries: u64,
    /// Persistent-request table entries (TokenB) at this node.
    pub persistent_entries: u64,
}

impl ProtocolGauges {
    /// Accumulates another node's gauges into a system-wide total.
    pub fn add(&mut self, other: ProtocolGauges) {
        self.tbes += other.tbes;
        self.home_entries += other.home_entries;
        self.persistent_entries += other.persistent_entries;
    }
}

/// What a pending timer means to its controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// PATCH: the token-tenure probationary period expired.
    Tenure,
    /// PATCH: the post-deactivation direct-request ignore window closed.
    DeactWindow,
    /// TokenB: a transient request timed out (reissue or go persistent).
    Reissue,
}

/// Identifies a timer registration. Controllers use the `generation`
/// field to ignore stale timers (timers cannot be cancelled; they are
/// simply disregarded when they no longer match current state).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TimerKey {
    /// The block the timer concerns.
    pub addr: BlockAddr,
    /// What the timer means.
    pub kind: TimerKind,
    /// Registration generation, compared against the controller's current
    /// generation for the block.
    pub generation: u64,
}

/// An outbound message: destinations, delivery class, and an optional
/// send delay modelling controller occupancy (directory lookup, DRAM).
#[derive(Clone, Debug)]
pub struct OutMsg {
    /// Destination set (multicasts are fanned out by the interconnect).
    pub dests: DestSet,
    /// Delivery priority: `BestEffort` only for PATCH's direct requests.
    pub priority: Priority,
    /// Cycles the sender spends before injecting the message.
    pub delay: u64,
    /// The message.
    pub msg: Msg,
}

/// Collects a controller's outputs during one event: messages to send,
/// timers to arm, and completed misses to report.
#[derive(Debug, Default)]
pub struct Outbox {
    /// Messages to inject into the interconnect.
    pub sends: Vec<OutMsg>,
    /// Timers to arm: `(fire_at, key)`.
    pub timers: Vec<(Cycle, TimerKey)>,
    /// Misses that completed during this event.
    pub completions: Vec<Completion>,
}

impl Outbox {
    /// Creates an empty outbox.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `msg` to `dests` at normal priority with no send delay.
    pub fn send(&mut self, dests: DestSet, msg: Msg) {
        self.send_with(dests, Priority::Normal, 0, msg);
    }

    /// Queues `msg` to a single destination at normal priority after
    /// `delay` cycles of sender occupancy.
    pub fn send_one_after(&mut self, num_nodes: u16, to: NodeId, delay: u64, msg: Msg) {
        self.send_with(DestSet::single(num_nodes, to), Priority::Normal, delay, msg);
    }

    /// Queues `msg` to a single destination at normal priority.
    pub fn send_one(&mut self, num_nodes: u16, to: NodeId, msg: Msg) {
        self.send_one_after(num_nodes, to, 0, msg);
    }

    /// Queues `msg` with full control over priority and delay.
    pub fn send_with(&mut self, dests: DestSet, priority: Priority, delay: u64, msg: Msg) {
        self.sends.push(OutMsg {
            dests,
            priority,
            delay,
            msg,
        });
    }

    /// Arms a timer.
    pub fn arm_timer(&mut self, at: Cycle, key: TimerKey) {
        self.timers.push((at, key));
    }

    /// Reports a completed miss.
    pub fn complete(&mut self, completion: Completion) {
        self.completions.push(completion);
    }

    /// Empties the outbox, keeping its allocations, for drivers that
    /// reuse one outbox across events. (The `patchsim` core's event loop
    /// drains its reusable outbox field-by-field instead, which empties
    /// it equally; `clear` is the one-call equivalent for tests and
    /// external harnesses.)
    pub fn clear(&mut self) {
        self.sends.clear();
        self.timers.clear();
        self.completions.clear();
    }

    /// Whether nothing was produced.
    pub fn is_empty(&self) -> bool {
        self.sends.is_empty() && self.timers.is_empty() && self.completions.is_empty()
    }
}

/// Per-controller event counters, exposed for tests and experiment
/// reports.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolCounters {
    /// Cache hits served locally.
    pub hits: u64,
    /// Demand misses issued.
    pub misses: u64,
    /// Misses satisfied before the home's activation arrived (i.e. by
    /// direct requests) — PATCH only.
    pub satisfied_before_activation: u64,
    /// Token-tenure timeouts that discarded untenured tokens — PATCH only.
    pub tenure_timeouts: u64,
    /// Responses sent to direct requests — PATCH only.
    pub direct_responses: u64,
    /// Direct requests ignored (miss outstanding, untenured tokens, or
    /// deactivation window) — PATCH only.
    pub direct_ignored: u64,
    /// Transient-request reissues — TokenB only.
    pub reissues: u64,
    /// Persistent-request invocations — TokenB only.
    pub persistent_requests: u64,
    /// Writebacks (evictions and token returns) sent to the home.
    pub writebacks: u64,
}

/// A per-node coherence controller hosting the node's private cache side
/// and its slice of the distributed home.
///
/// Controllers are purely reactive: every entry point takes the current
/// cycle and an [`Outbox`]; all effects (messages, timers, completions)
/// flow out through it. The `patchsim` core crate owns the event loop.
pub trait Controller {
    /// Handles a memory operation from this node's core.
    ///
    /// The core is blocking: it will not issue another operation until a
    /// `Hit` response or the miss's [`Completion`] arrives.
    fn core_request(&mut self, op: MemOp, now: Cycle, out: &mut Outbox) -> CoreResponse;

    /// Handles a message delivered by the interconnect.
    fn handle_message(&mut self, msg: Msg, now: Cycle, out: &mut Outbox);

    /// Handles a previously armed timer.
    fn timer_fired(&mut self, key: TimerKey, now: Cycle, out: &mut Outbox);

    /// Whether the controller has no in-flight transactions (used by the
    /// end-of-run drain check).
    fn is_quiescent(&self) -> bool;

    /// All tokens this node currently holds for `addr` (cache side plus
    /// home side), or `None` if the protocol does not use tokens
    /// (DIRECTORY). Homes report their implicit full holdings for blocks
    /// they have never seen. Used by the conservation auditor.
    fn held_tokens(&self, addr: BlockAddr) -> Option<TokenSet>;

    /// Event counters.
    fn counters(&self) -> ProtocolCounters;

    /// Instantaneous occupancy gauges for the epoch metrics sampler.
    /// The default reports empty tables, for harness stubs.
    fn gauges(&self) -> ProtocolGauges {
        ProtocolGauges::default()
    }

    /// The protocol's display name.
    fn protocol_name(&self) -> &'static str;
}

/// Builds the controller for `node` according to `config`.
///
/// # Examples
///
/// ```
/// use patchsim_protocol::{build_controller, ProtocolConfig, ProtocolKind};
/// use patchsim_noc::NodeId;
///
/// let cfg = ProtocolConfig::new(ProtocolKind::Patch, 4);
/// let ctrl = build_controller(&cfg, NodeId::new(0));
/// assert_eq!(ctrl.protocol_name(), "PATCH");
/// ```
pub fn build_controller(config: &ProtocolConfig, node: NodeId) -> Box<dyn Controller + Send> {
    match config.kind {
        ProtocolKind::Directory => Box::new(crate::DirectoryController::new(config.clone(), node)),
        ProtocolKind::Patch => Box::new(crate::PatchController::new(config.clone(), node)),
        ProtocolKind::TokenB => Box::new(crate::TokenBController::new(config.clone(), node)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outbox_helpers_accumulate() {
        let mut out = Outbox::new();
        assert!(out.is_empty());
        out.send_one(
            4,
            NodeId::new(1),
            Msg::new(BlockAddr::new(0), crate::MsgBody::WbAck { stale: false }),
        );
        out.arm_timer(
            Cycle::new(10),
            TimerKey {
                addr: BlockAddr::new(0),
                kind: TimerKind::Tenure,
                generation: 1,
            },
        );
        out.complete(Completion {
            addr: BlockAddr::new(0),
            kind: AccessKind::Read,
            version: 0,
            issued_at: Cycle::ZERO,
            marks: SpanMarks::default(),
        });
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.timers.len(), 1);
        assert_eq!(out.completions.len(), 1);
        assert!(!out.is_empty());
        let capacity = out.sends.capacity();
        out.clear();
        assert!(out.is_empty());
        assert_eq!(out.sends.capacity(), capacity, "clear keeps allocations");
    }

    #[test]
    fn build_controller_dispatches() {
        for (kind, name) in [
            (ProtocolKind::Directory, "Directory"),
            (ProtocolKind::Patch, "PATCH"),
            (ProtocolKind::TokenB, "TokenB"),
        ] {
            let cfg = ProtocolConfig::new(kind, 4);
            let c = build_controller(&cfg, NodeId::new(0));
            assert_eq!(c.protocol_name(), name);
            assert!(c.is_quiescent());
        }
    }
}
