//! PATCH: Predictive/Adaptive Token Counting Hybrid (paper §5.2).
//!
//! PATCH is DIRECTORY plus four changes:
//!
//! 1. **Token state** in cache lines, directory entries, and data/ack
//!    messages; clean blocks are never silently evicted (a data-less token
//!    writeback goes to the home instead).
//! 2. **Token counting completion**: misses complete when enough tokens
//!    have arrived — writers need all `T`, readers one plus valid data.
//!    Zero-token acknowledgements are simply never sent, which is what
//!    lets PATCH out-scale DIRECTORY under inexact sharer encodings.
//! 3. **Direct requests**: each miss may also be multicast directly to a
//!    predicted destination set, on a best-effort lowest-priority virtual
//!    network. Token holders answer them exactly like forwarded requests;
//!    everyone else ignores them. Losing one is harmless.
//! 4. **Token tenure** (§4) for broadcast-free forward progress: tokens
//!    arriving at a processor are *untenured* until the home's activation
//!    names that processor the block's active requester. Untenured tokens
//!    time out (after twice the dynamic average round-trip) and are
//!    written back to the home, which redirects them to the active
//!    requester. The directory's sharer set is maintained as a superset of
//!    the caches holding tenured tokens, so activation forwards always
//!    reach every tenured holder.
//!
//! Two implementation rules keep the directory's owner pointer
//! authoritative (and are asserted in the module tests):
//!
//! * The home *always* delivers an activation to the requester it
//!   activates — merged into its token/data response when it sends one,
//!   or as a standalone 8-byte activation message otherwise (this is the
//!   paper's "home-to-requester message for activation on owner upgrade
//!   misses", applied uniformly).
//! * A cache that receives tokens while it has no transaction outstanding
//!   for the block immediately bounces them to the home. Tenured owner
//!   tokens therefore only rest at caches the directory knows about.

use patchsim_kernel::collections::{fx_map_with_capacity, FxHashMap};

use patchsim_kernel::Cycle;
use patchsim_mem::{AccessKind, BlockAddr, CacheArray, OwnerStatus, SharerSet, TokenSet};
use patchsim_noc::{DestSet, NodeId, Priority};
use patchsim_predictor::Predictor;

use crate::common::{LatencyEstimator, MigratoryDetector};
use crate::controller::{
    Completion, Controller, CoreResponse, MemOp, Outbox, ProtocolCounters, ProtocolGauges,
    SpanMarks, TimerKey, TimerKind,
};
use crate::{Msg, MsgBody, ProtocolConfig, RequestStyle};

#[derive(Clone, Copy, Debug)]
struct PatchLine {
    tokens: TokenSet,
    version: u64,
    /// The valid-data bit (Table 1, Rule 5).
    valid: bool,
}

#[derive(Debug)]
struct PatchTbe {
    addr: BlockAddr,
    kind: AccessKind,
    serial: u64,
    issued_at: Cycle,
    /// The access has been performed (tokens sufficed at some point).
    performed: bool,
    /// The home has named this node the block's active requester.
    activated: bool,
    /// Guards against stale tenure timers.
    timer_generation: u64,
    /// Whether a tenure timer is currently armed.
    timer_armed: bool,
    /// Span telemetry phase timestamps (pure observation).
    marks: SpanMarks,
}

#[derive(Debug)]
struct PatchBusy {
    requester: NodeId,
    kind: AccessKind,
    exclusive: bool,
    serial: u64,
    old_owner: Option<NodeId>,
}

#[derive(Debug)]
struct PatchHomeEntry {
    /// Tokens currently held by memory.
    tokens: TokenSet,
    /// Memory's valid-data bit (Rule 5).
    valid: bool,
    version: u64,
    owner: Option<NodeId>,
    sharers: SharerSet,
    busy: Option<PatchBusy>,
    queue: std::collections::VecDeque<(AccessKind, NodeId, u64)>,
}

/// The PATCH controller for one node: private cache side plus the node's
/// slice of the distributed home.
///
/// See the module-level documentation for the protocol description.
pub struct PatchController {
    config: ProtocolConfig,
    id: NodeId,
    cache: CacheArray<PatchLine>,
    /// Open transactions, one per block. A transaction can outlive its
    /// access: a miss satisfied early by direct requests stays open until
    /// the home's activation lets it deactivate, while the core moves on.
    tbes: FxHashMap<BlockAddr, PatchTbe>,
    /// A core op waiting for this block's open transaction to close.
    deferred: Option<MemOp>,
    home: FxHashMap<BlockAddr, PatchHomeEntry>,
    /// Blocks whose post-deactivation direct-request ignore window is
    /// still open (maps to the window's end).
    deact_windows: FxHashMap<BlockAddr, Cycle>,
    predictor: Box<dyn Predictor + Send>,
    migratory: MigratoryDetector,
    latency: LatencyEstimator,
    counters: ProtocolCounters,
    next_serial: u64,
}

impl std::fmt::Debug for PatchController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PatchController")
            .field("id", &self.id)
            .field("open_tbes", &self.tbes.len())
            .finish()
    }
}

impl PatchController {
    /// Creates the controller for `node`, instantiating the configured
    /// destination-set predictor.
    pub fn new(config: ProtocolConfig, node: NodeId) -> Self {
        let cache = CacheArray::new(config.cache_geometry);
        let (home_cap, cache_cap) = (config.home_table_capacity(), config.cache_table_capacity());
        let predictor = config.predictor.build(config.num_nodes);
        PatchController {
            config,
            id: node,
            cache,
            tbes: fx_map_with_capacity(cache_cap),
            deferred: None,
            home: fx_map_with_capacity(home_cap),
            deact_windows: fx_map_with_capacity(cache_cap),
            predictor,
            migratory: MigratoryDetector::with_capacity(home_cap),
            latency: LatencyEstimator::default(),
            counters: ProtocolCounters::default(),
            next_serial: 0,
        }
    }

    fn n(&self) -> u16 {
        self.config.num_nodes
    }

    fn total(&self) -> u32 {
        self.config.total_tokens
    }

    fn home_entry(&mut self, addr: BlockAddr) -> &mut PatchHomeEntry {
        debug_assert_eq!(addr.home(self.config.num_nodes), self.id);
        let encoding = self.config.sharer_encoding;
        let n = self.config.num_nodes;
        let total = self.config.total_tokens;
        self.home.entry(addr).or_insert_with(|| PatchHomeEntry {
            tokens: TokenSet::full(total, OwnerStatus::Clean),
            valid: true,
            version: 0,
            owner: None,
            sharers: SharerSet::new(n, encoding),
            busy: None,
            queue: std::collections::VecDeque::new(),
        })
    }

    fn tenure_timeout(&self) -> u64 {
        self.config.tenure.timeout(self.latency.average())
    }

    // ------------------------------------------------------------------
    // Cache side
    // ------------------------------------------------------------------

    fn issue_miss(&mut self, op: MemOp, now: Cycle, out: &mut Outbox) {
        debug_assert!(!self.tbes.contains_key(&op.addr));
        let serial = self.next_serial;
        self.next_serial += 1;
        self.counters.misses += 1;
        self.tbes.insert(
            op.addr,
            PatchTbe {
                addr: op.addr,
                kind: op.kind,
                serial,
                issued_at: now,
                performed: false,
                activated: false,
                timer_generation: 0,
                timer_armed: false,
                marks: SpanMarks::default(),
            },
        );
        let home = op.addr.home(self.n());
        out.send_one(
            self.n(),
            home,
            Msg::new(
                op.addr,
                MsgBody::Request {
                    kind: op.kind,
                    requester: self.id,
                    serial,
                    style: RequestStyle::Indirect,
                },
            ),
        );
        let predicted = self.predictor.predict(op.addr, op.kind, self.id);
        if !predicted.is_empty() {
            out.send_with(
                predicted,
                self.config.direct_priority,
                0,
                Msg::new(
                    op.addr,
                    MsgBody::Request {
                        kind: op.kind,
                        requester: self.id,
                        serial,
                        style: RequestStyle::Direct,
                    },
                ),
            );
        }
        // The transaction may already be satisfiable from tokens the line
        // retained (e.g. a write upgrade that raced); check immediately.
        self.try_progress(op.addr, now, out);
        // An untenured line (upgrade with tokens, not yet activated) needs
        // its probation clock running from the start.
        self.arm_tenure_timer_if_needed(op.addr, now, out);
    }

    /// Answers a request (direct or forwarded) from this cache's current
    /// holdings. Returns `true` if a response was sent.
    fn respond_with_tokens(
        &mut self,
        addr: BlockAddr,
        kind: AccessKind,
        requester: NodeId,
        serial: u64,
        invalidating: bool,
        out: &mut Outbox,
    ) -> bool {
        let Some(line) = self.cache.get_mut(addr) else {
            return false;
        };
        if line.tokens.is_empty() {
            self.cache.remove(addr);
            return false;
        }
        if invalidating || kind.is_write() {
            // Hand over everything we hold.
            let tokens = line.tokens.take_all();
            let version = line.version;
            let has_owner = tokens.has_owner();
            debug_assert!(!has_owner || line.valid, "owner token implies valid data");
            self.cache.remove(addr);
            let body = if has_owner {
                MsgBody::Data {
                    from: self.id,
                    serial,
                    tokens,
                    version,
                    acks_expected: 0,
                    exclusive: false,
                    dirty: tokens.owner_status() == Some(OwnerStatus::Dirty),
                    activation: false,
                }
            } else {
                MsgBody::Ack {
                    from: self.id,
                    serial,
                    tokens,
                    activation: false,
                }
            };
            out.send_one(self.n(), requester, Msg::new(addr, body));
            true
        } else {
            // Read: only the owner-token holder supplies data. It sends
            // the owner token (ownership migrates) and keeps any plain
            // tokens, staying a sharer.
            if !line.tokens.has_owner() {
                return false;
            }
            debug_assert!(line.valid);
            let tokens = line.tokens.split_owner(0);
            let version = line.version;
            if line.tokens.is_empty() {
                self.cache.remove(addr);
            }
            out.send_one(
                self.n(),
                requester,
                Msg::new(
                    addr,
                    MsgBody::Data {
                        from: self.id,
                        serial,
                        tokens,
                        version,
                        acks_expected: 0,
                        exclusive: false,
                        dirty: tokens.owner_status() == Some(OwnerStatus::Dirty),
                        activation: false,
                    },
                ),
            );
            true
        }
    }

    /// Returns all of this cache's tokens for `addr` to the home (tenure
    /// timeout, eviction, or bounced stray arrivals).
    fn put_tokens(&mut self, addr: BlockAddr, tokens: TokenSet, version: u64, out: &mut Outbox) {
        if tokens.is_empty() {
            return;
        }
        self.counters.writebacks += 1;
        let home = addr.home(self.n());
        let with_data = tokens.owner_status() == Some(OwnerStatus::Dirty);
        out.send_one(
            self.n(),
            home,
            Msg::new(
                addr,
                MsgBody::Put {
                    node: self.id,
                    tokens,
                    version: with_data.then_some(version),
                    dirty: with_data,
                },
            ),
        );
    }

    /// Folds arriving tokens (and data) into the line backing the current
    /// demand miss, allocating (and possibly evicting) as needed.
    fn absorb_tokens(
        &mut self,
        addr: BlockAddr,
        tokens: TokenSet,
        data_version: Option<u64>,
        out: &mut Outbox,
    ) {
        if let Some(line) = self.cache.get_mut(addr) {
            line.tokens.merge(tokens);
            if let Some(v) = data_version {
                line.valid = true;
                line.version = v;
            }
            return;
        }
        let line = PatchLine {
            tokens,
            version: data_version.unwrap_or(0),
            valid: data_version.is_some(),
        };
        if let Some(victim) = self.cache.insert(addr, line) {
            self.put_tokens(
                victim.addr,
                victim.payload.tokens,
                victim.payload.version,
                out,
            );
        }
    }

    fn arm_tenure_timer_if_needed(&mut self, addr: BlockAddr, now: Cycle, out: &mut Outbox) {
        let timeout = self.tenure_timeout();
        let has_tokens = self.cache.peek(addr).is_some_and(|l| !l.tokens.is_empty());
        let Some(tbe) = self.tbes.get_mut(&addr) else {
            return;
        };
        if tbe.activated || tbe.timer_armed || !has_tokens {
            return;
        }
        tbe.timer_generation += 1;
        tbe.timer_armed = true;
        out.arm_timer(
            now + timeout,
            TimerKey {
                addr: tbe.addr,
                kind: TimerKind::Tenure,
                generation: tbe.timer_generation,
            },
        );
    }

    /// Advances the outstanding miss: performs the access once tokens
    /// suffice, and deactivates once both performed and activated.
    fn try_progress(&mut self, addr: BlockAddr, now: Cycle, out: &mut Outbox) {
        let total = self.total();
        let Some(tbe) = self.tbes.get_mut(&addr) else {
            return;
        };
        let satisfied = match self.cache.peek(addr) {
            Some(line) => match tbe.kind {
                AccessKind::Read => line.valid && line.tokens.can_read(),
                AccessKind::Write => line.valid && line.tokens.can_write(total),
            },
            None => false,
        };
        if satisfied && !tbe.performed {
            tbe.performed = true;
            if !tbe.activated {
                self.counters.satisfied_before_activation += 1;
            }
            let kind = tbe.kind;
            let issued_at = tbe.issued_at;
            let marks = tbe.marks;
            let line = self.cache.get_mut(addr).expect("satisfied implies line");
            let version = match kind {
                AccessKind::Read => line.version,
                AccessKind::Write => {
                    line.version += 1;
                    line.tokens.set_owner_dirty();
                    line.version
                }
            };
            self.latency.record(now - issued_at);
            out.complete(Completion {
                addr,
                kind,
                version,
                issued_at,
                marks,
            });
        }
        let tbe = self.tbes.get_mut(&addr).expect("still present");
        if tbe.activated && satisfied {
            // Deactivate: report the resulting state to the home.
            let serial = tbe.serial;
            let line = self.cache.peek(addr).expect("satisfied implies line");
            let new_owner = line.tokens.has_owner();
            self.tbes.remove(&addr);
            let home = addr.home(self.n());
            out.send_one(
                self.n(),
                home,
                Msg::new(
                    addr,
                    MsgBody::Deactivate {
                        requester: self.id,
                        serial,
                        new_owner,
                        keeps_copy: true,
                    },
                ),
            );
            if self.config.deact_window {
                let until = now + self.tenure_timeout();
                self.deact_windows.insert(addr, until);
                out.arm_timer(
                    until,
                    TimerKey {
                        addr,
                        kind: TimerKind::DeactWindow,
                        generation: 0,
                    },
                );
            }
            // A deferred core op for this block can now proceed (it may
            // even hit on the tokens the transaction just collected).
            if self.deferred.is_some_and(|op| op.addr == addr) {
                let op = self.deferred.take().expect("checked");
                if let CoreResponse::Hit { version } = self.core_request(op, now, out) {
                    out.complete(Completion {
                        addr: op.addr,
                        kind: op.kind,
                        version,
                        issued_at: now,
                        marks: SpanMarks::default(),
                    });
                }
            }
        } else {
            self.arm_tenure_timer_if_needed(addr, now, out);
        }
    }

    fn handle_direct_request(
        &mut self,
        addr: BlockAddr,
        kind: AccessKind,
        requester: NodeId,
        serial: u64,
        now: Cycle,
        out: &mut Outbox,
    ) {
        self.predictor.observe_request(addr, requester);
        // Rule 6c + §5.2: ignore when a miss is outstanding for the block
        // (which is also where untenured tokens live), or within the
        // post-deactivation window.
        if self.tbes.contains_key(&addr) {
            self.counters.direct_ignored += 1;
            return;
        }
        if let Some(&until) = self.deact_windows.get(&addr) {
            if now < until {
                self.counters.direct_ignored += 1;
                return;
            }
        }
        if self.respond_with_tokens(addr, kind, requester, serial, false, out) {
            self.counters.direct_responses += 1;
        } else {
            self.counters.direct_ignored += 1;
        }
    }

    fn handle_fwd(
        &mut self,
        addr: BlockAddr,
        kind: AccessKind,
        requester: NodeId,
        serial: u64,
        exclusive: bool,
        out: &mut Outbox,
    ) {
        self.predictor.observe_request(addr, requester);
        // Rule 6a: the *active* requester hoards; everyone else (including
        // non-active requesters with untenured tokens, Rule 6b) responds
        // to forwards.
        if self.tbes.get(&addr).is_some_and(|t| t.activated) {
            return;
        }
        let responded = self.respond_with_tokens(addr, kind, requester, serial, exclusive, out);
        if !responded && !self.config.ack_elision && (kind.is_write() || exclusive) {
            // Ablation: mimic DIRECTORY's unconditional invalidation acks.
            out.send_one(
                self.n(),
                requester,
                Msg::new(
                    addr,
                    MsgBody::Ack {
                        from: self.id,
                        serial,
                        tokens: TokenSet::empty(),
                        activation: false,
                    },
                ),
            );
        }
    }

    /// Tokens arrived addressed to this cache.
    #[allow(clippy::too_many_arguments)] // mirrors the Data/Ack message fields
    fn handle_token_arrival(
        &mut self,
        addr: BlockAddr,
        tokens: TokenSet,
        data_version: Option<u64>,
        activation: bool,
        serial: u64,
        from: Option<NodeId>,
        now: Cycle,
        out: &mut Outbox,
    ) {
        if let Some(from) = from {
            self.predictor.observe_response(addr, from);
        }
        let has_tbe = self.tbes.contains_key(&addr);
        if let Some(tbe) = self.tbes.get_mut(&addr) {
            // Span telemetry: the first response of any kind ends the
            // network phase. Pure data write — no protocol effect.
            if tbe.marks.first_progress.is_none() {
                tbe.marks.first_progress = Some(now);
            }
        }
        if !has_tbe {
            // No transaction outstanding: bounce stray tokens to the home
            // immediately (an instant probation expiry). This keeps
            // tenured owner tokens only where the directory can find
            // them.
            self.put_tokens(addr, tokens, data_version.unwrap_or(0), out);
            return;
        }
        if !tokens.is_empty() || data_version.is_some() {
            self.absorb_tokens(addr, tokens, data_version, out);
        }
        if activation {
            // The activation bit is transaction-specific: a late response
            // from a *previous* transaction on this block must not
            // activate the current one (its tokens are still welcome).
            let tbe = self.tbes.get_mut(&addr).expect("checked above");
            if tbe.serial == serial {
                tbe.activated = true;
                tbe.timer_armed = false; // pending timers are now stale
                if tbe.marks.ordered.is_none() {
                    tbe.marks.ordered = Some(now);
                }
            }
        }
        self.try_progress(addr, now, out);
    }

    // ------------------------------------------------------------------
    // Home side
    // ------------------------------------------------------------------

    fn activate_request(
        &mut self,
        addr: BlockAddr,
        kind: AccessKind,
        requester: NodeId,
        serial: u64,
        out: &mut Outbox,
    ) {
        let n = self.n();
        let dir_latency = self.config.dir_latency;
        let dram_latency = self.config.dram_latency;
        let exclusive = if self.config.migratory_opt {
            self.migratory.observe(addr, requester, kind)
        } else {
            false
        };
        let entry = self.home_entry(addr);
        debug_assert!(entry.busy.is_none());
        entry.busy = Some(PatchBusy {
            requester,
            kind,
            exclusive,
            serial,
            old_owner: entry.owner,
        });
        let invalidating = kind.is_write() || exclusive;

        // The home contributes everything it holds, with the activation
        // bit riding along; if it holds nothing, a standalone activation
        // is sent.
        let home_tokens = entry.tokens.take_all();
        let (valid, version) = (entry.valid, entry.version);
        let owner = entry.busy.as_ref().expect("just set").old_owner;
        let fwd_targets = {
            let mut t = if invalidating {
                entry.sharers.members()
            } else {
                DestSet::empty(n)
            };
            if let Some(o) = owner {
                t.insert(o);
            }
            t.remove(requester);
            t
        };

        if home_tokens.is_empty() {
            out.send_one_after(
                n,
                requester,
                dir_latency,
                Msg::new(
                    addr,
                    MsgBody::Activation {
                        serial,
                        acks_expected: 0,
                        exclusive,
                    },
                ),
            );
        } else if home_tokens.has_owner() {
            debug_assert!(valid, "home owner token implies valid memory data (Rule 5)");
            out.send_one_after(
                n,
                requester,
                dir_latency + dram_latency,
                Msg::new(
                    addr,
                    MsgBody::Data {
                        from: self.id,
                        serial,
                        tokens: home_tokens,
                        version,
                        acks_expected: 0,
                        exclusive,
                        dirty: false,
                        activation: true,
                    },
                ),
            );
        } else {
            out.send_one_after(
                n,
                requester,
                dir_latency,
                Msg::new(
                    addr,
                    MsgBody::Ack {
                        from: self.id,
                        serial,
                        tokens: home_tokens,
                        activation: true,
                    },
                ),
            );
        }

        if !fwd_targets.is_empty() {
            out.send_with(
                fwd_targets,
                Priority::Normal,
                dir_latency,
                Msg::new(
                    addr,
                    MsgBody::Fwd {
                        kind,
                        requester,
                        serial,
                        acks_expected: 0,
                        exclusive,
                    },
                ),
            );
        }
    }

    /// Tokens returned to the home: redirect to the active requester if
    /// the block is busy (Rule 5 of token tenure), absorb into memory
    /// otherwise.
    fn home_receive_put(
        &mut self,
        addr: BlockAddr,
        node: NodeId,
        mut tokens: TokenSet,
        version: Option<u64>,
        out: &mut Outbox,
    ) {
        let n = self.n();
        let dir_latency = self.config.dir_latency;
        let entry = self.home_entry(addr);
        entry.sharers.remove_if_exact(node);
        if let Some(busy) = &entry.busy {
            // Redirect everything to the active requester — including a
            // requester's own discarded tokens coming back after a tenure
            // timeout that raced its activation. If the tokens include a
            // clean owner (a data-less return), memory's copy is valid
            // (Rule 5), so data is attached from memory.
            let requester = busy.requester;
            let serial = busy.serial;
            let send_version = match version {
                Some(v) => Some(v),
                None if tokens.has_owner() => {
                    debug_assert!(entry.valid, "clean owner implies valid memory data");
                    Some(entry.version)
                }
                None => None,
            };
            let body = if let Some(v) = send_version {
                MsgBody::Data {
                    from: self.id,
                    serial,
                    tokens,
                    version: v,
                    acks_expected: 0,
                    exclusive: false,
                    dirty: tokens.owner_status() == Some(OwnerStatus::Dirty),
                    activation: true,
                }
            } else {
                MsgBody::Ack {
                    from: self.id,
                    serial,
                    tokens,
                    activation: true,
                }
            };
            out.send_one_after(n, requester, dir_latency, Msg::new(addr, body));
        } else {
            // Absorb into memory: Rule 1 cleans the owner token, Rule 5
            // sets the valid-data bit. If the returning node was the
            // directory's owner pointer, ownership reverts to memory.
            if let Some(v) = version {
                entry.version = v;
            }
            if tokens.has_owner() {
                tokens.set_owner_clean();
                entry.valid = true;
                if entry.owner == Some(node) {
                    entry.owner = None;
                }
            }
            entry.tokens.merge(tokens);
        }
    }

    fn process_deactivate(
        &mut self,
        addr: BlockAddr,
        requester: NodeId,
        serial: u64,
        new_owner: bool,
        out: &mut Outbox,
    ) {
        let entry = self.home_entry(addr);
        let busy = entry.busy.take().expect("deactivate at idle home");
        assert_eq!(busy.requester, requester);
        assert_eq!(busy.serial, serial);
        if busy.kind.is_write() || busy.exclusive {
            entry.sharers.clear();
            entry.owner = Some(requester);
        } else {
            if new_owner {
                entry.owner = Some(requester);
            } else {
                entry.sharers.insert(requester);
            }
            if let Some(old) = busy.old_owner {
                if old != requester && entry.owner != Some(old) {
                    entry.sharers.insert(old);
                }
            }
        }
        // Requesters always keep at least one token on completion; track
        // them as sharers unless they became the owner.
        if entry.owner != Some(requester) {
            entry.sharers.insert(requester);
        }
        self.drain_queue(addr, out);
    }

    fn drain_queue(&mut self, addr: BlockAddr, out: &mut Outbox) {
        let entry = self.home_entry(addr);
        if entry.busy.is_some() {
            return;
        }
        if let Some((kind, requester, serial)) = entry.queue.pop_front() {
            self.activate_request(addr, kind, requester, serial, out);
        }
    }
}

impl Controller for PatchController {
    fn core_request(&mut self, op: MemOp, now: Cycle, out: &mut Outbox) -> CoreResponse {
        let total = self.total();
        if let Some(line) = self.cache.get_mut(op.addr) {
            match op.kind {
                AccessKind::Read if line.valid && line.tokens.can_read() => {
                    self.counters.hits += 1;
                    return CoreResponse::Hit {
                        version: line.version,
                    };
                }
                AccessKind::Write if line.valid && line.tokens.can_write(total) => {
                    line.version += 1;
                    line.tokens.set_owner_dirty();
                    self.counters.hits += 1;
                    return CoreResponse::Hit {
                        version: line.version,
                    };
                }
                _ => {}
            }
        }
        if self.tbes.contains_key(&op.addr) {
            // An earlier transaction for this block is still open (e.g.
            // its tokens were discarded by a tenure timeout while it
            // awaited activation): wait for it to close.
            debug_assert!(self.deferred.is_none());
            self.deferred = Some(op);
            return CoreResponse::MissPending;
        }
        self.issue_miss(op, now, out);
        CoreResponse::MissPending
    }

    fn handle_message(&mut self, msg: Msg, now: Cycle, out: &mut Outbox) {
        let addr = msg.addr;
        match msg.body {
            // ------------- home side -------------
            MsgBody::Request {
                kind,
                requester,
                serial,
                style: RequestStyle::Indirect,
            } => {
                let entry = self.home_entry(addr);
                if entry.busy.is_some() {
                    entry.queue.push_back((kind, requester, serial));
                } else {
                    self.activate_request(addr, kind, requester, serial, out);
                }
            }
            MsgBody::Put {
                node,
                tokens,
                version,
                ..
            } => {
                self.home_receive_put(addr, node, tokens, version, out);
            }
            MsgBody::Deactivate {
                requester,
                serial,
                new_owner,
                ..
            } => {
                self.process_deactivate(addr, requester, serial, new_owner, out);
            }

            // ------------- cache side -------------
            MsgBody::Request {
                kind,
                requester,
                serial,
                style: RequestStyle::Direct,
            } => {
                self.handle_direct_request(addr, kind, requester, serial, now, out);
            }
            MsgBody::Request { style, .. } => {
                unreachable!("PATCH does not use {style:?} requests")
            }
            MsgBody::Fwd {
                kind,
                requester,
                serial,
                exclusive,
                ..
            } => {
                self.handle_fwd(addr, kind, requester, serial, exclusive, out);
            }
            MsgBody::Data {
                from,
                tokens,
                version,
                activation,
                serial,
                ..
            } => {
                self.handle_token_arrival(
                    addr,
                    tokens,
                    Some(version),
                    activation,
                    serial,
                    Some(from),
                    now,
                    out,
                );
            }
            MsgBody::Ack {
                from,
                tokens,
                activation,
                serial,
            } => {
                self.handle_token_arrival(
                    addr,
                    tokens,
                    None,
                    activation,
                    serial,
                    Some(from),
                    now,
                    out,
                );
            }
            MsgBody::Activation { serial, .. } => {
                // The activation may also have ridden a token response or
                // redirect that arrived first and already closed the
                // transaction; a late standalone activation (or one for a
                // previous transaction on this block) is simply stale.
                if let Some(tbe) = self.tbes.get_mut(&addr) {
                    if tbe.serial == serial {
                        tbe.activated = true;
                        tbe.timer_armed = false;
                        if tbe.marks.ordered.is_none() {
                            tbe.marks.ordered = Some(now);
                        }
                        self.try_progress(addr, now, out);
                    }
                }
            }
            MsgBody::WbAck { .. } => unreachable!("PATCH writebacks are unacknowledged"),
            MsgBody::PersistentActivate { .. } | MsgBody::PersistentDeactivate { .. } => {
                unreachable!("persistent requests are TokenB-only")
            }
        }
    }

    fn timer_fired(&mut self, key: TimerKey, now: Cycle, out: &mut Outbox) {
        match key.kind {
            TimerKind::Tenure => {
                let Some(tbe) = self.tbes.get_mut(&key.addr) else {
                    return;
                };
                if tbe.timer_generation != key.generation || !tbe.timer_armed || tbe.activated {
                    return;
                }
                tbe.timer_armed = false;
                // Probation expired: discard all untenured tokens to the
                // home (Rule 4 of token tenure).
                if let Some(line) = self.cache.get_mut(key.addr) {
                    let tokens = line.tokens.take_all();
                    let version = line.version;
                    self.cache.remove(key.addr);
                    if !tokens.is_empty() {
                        self.counters.tenure_timeouts += 1;
                        self.put_tokens(key.addr, tokens, version, out);
                    }
                }
                let _ = now;
            }
            TimerKind::DeactWindow => {
                if self
                    .deact_windows
                    .get(&key.addr)
                    .is_some_and(|&until| now >= until)
                {
                    self.deact_windows.remove(&key.addr);
                }
            }
            TimerKind::Reissue => unreachable!("reissue timers are TokenB-only"),
        }
    }

    fn is_quiescent(&self) -> bool {
        self.tbes.is_empty()
            && self.deferred.is_none()
            && self
                .home
                .values()
                .all(|e| e.busy.is_none() && e.queue.is_empty())
    }

    fn held_tokens(&self, addr: BlockAddr) -> Option<TokenSet> {
        let mut total = TokenSet::empty();
        if let Some(line) = self.cache.peek(addr) {
            total.merge(line.tokens);
        }
        if addr.home(self.config.num_nodes) == self.id {
            match self.home.get(&addr) {
                Some(entry) => total.merge(entry.tokens),
                None => total.merge(TokenSet::full(self.config.total_tokens, OwnerStatus::Clean)),
            }
        }
        Some(total)
    }

    fn counters(&self) -> ProtocolCounters {
        self.counters
    }

    fn gauges(&self) -> ProtocolGauges {
        ProtocolGauges {
            tbes: self.tbes.len() as u64,
            home_entries: self.home.len() as u64,
            persistent_entries: 0,
        }
    }

    fn protocol_name(&self) -> &'static str {
        "PATCH"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;
    use patchsim_predictor::PredictorChoice;

    fn config(n: u16) -> ProtocolConfig {
        ProtocolConfig::new(ProtocolKind::Patch, n)
    }

    fn ctrl(n: u16, node: u16) -> PatchController {
        PatchController::new(config(n), NodeId::new(node))
    }

    fn a(x: u64) -> BlockAddr {
        BlockAddr::new(x)
    }

    fn stable_line(c: &mut PatchController, addr: BlockAddr, tokens: TokenSet, version: u64) {
        c.cache.insert(
            addr,
            PatchLine {
                tokens,
                version,
                valid: true,
            },
        );
    }

    #[test]
    fn miss_sends_indirect_plus_predicted_direct_requests() {
        let mut c = PatchController::new(
            config(4).with_predictor(PredictorChoice::All),
            NodeId::new(1),
        );
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        // One indirect to home, one best-effort multicast to the other 3.
        assert_eq!(out.sends.len(), 2);
        let indirect = &out.sends[0];
        assert!(matches!(
            indirect.msg.body,
            MsgBody::Request {
                style: RequestStyle::Indirect,
                ..
            }
        ));
        let direct = &out.sends[1];
        assert_eq!(direct.priority, Priority::BestEffort);
        assert_eq!(direct.dests.len(), 3);
        assert!(!direct.dests.contains(NodeId::new(1)));
    }

    #[test]
    fn home_cold_block_sends_all_tokens_with_activation() {
        let mut home = ctrl(4, 0);
        let mut out = Outbox::new();
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Read,
                    requester: NodeId::new(2),
                    serial: 0,
                    style: RequestStyle::Indirect,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        assert_eq!(out.sends.len(), 1);
        match &out.sends[0].msg.body {
            MsgBody::Data {
                tokens, activation, ..
            } => {
                assert_eq!(tokens.count(), 4, "home sends all tokens");
                assert!(tokens.has_owner());
                assert!(*activation);
            }
            other => panic!("expected Data, got {other:?}"),
        }
        assert_eq!(out.sends[0].delay, 16 + 80, "directory + DRAM");
    }

    #[test]
    fn requester_completes_by_token_count_and_deactivates() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Data {
                    from: NodeId::new(2),
                    serial: 0,
                    tokens: TokenSet::full(4, OwnerStatus::Clean),
                    version: 0,
                    acks_expected: 0,
                    exclusive: false,
                    dirty: false,
                    activation: true,
                },
            ),
            Cycle::new(100),
            &mut out,
        );
        assert_eq!(out.completions.len(), 1);
        assert_eq!(out.completions[0].version, 1, "write bumps the version");
        assert!(
            out.sends.iter().any(|s| matches!(
                s.msg.body,
                MsgBody::Deactivate {
                    new_owner: true,
                    ..
                }
            )),
            "deactivates once active and satisfied"
        );
        assert!(c.is_quiescent());
        // The line is M: all tokens, dirty owner.
        let held = c.held_tokens(a(2)).unwrap();
        assert_eq!(held.count(), 4);
        assert!(held.requires_data());
    }

    #[test]
    fn partial_tokens_do_not_complete_a_write() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Data {
                    from: NodeId::new(2),
                    serial: 0,
                    tokens: TokenSet::full(3, OwnerStatus::Clean), // 3 of 4
                    version: 0,
                    acks_expected: 0,
                    exclusive: false,
                    dirty: false,
                    activation: true,
                },
            ),
            Cycle::new(100),
            &mut out,
        );
        assert!(out.completions.is_empty());
        // The final token arrives in a zero-data ack.
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Ack {
                    from: NodeId::new(3),
                    serial: 0,
                    tokens: TokenSet::plain(1),
                    activation: false,
                },
            ),
            Cycle::new(150),
            &mut out,
        );
        assert_eq!(out.completions.len(), 1);
    }

    #[test]
    fn reader_can_use_untenured_tokens_before_activation() {
        // Satisfying a miss off the critical path of activation is the
        // whole point of direct requests.
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Read,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Data {
                    from: NodeId::new(3),
                    serial: 0,
                    tokens: TokenSet::full(1, OwnerStatus::Dirty),
                    version: 9,
                    acks_expected: 0,
                    exclusive: false,
                    dirty: true,
                    activation: false, // direct response: no activation
                },
            ),
            Cycle::new(40),
            &mut out,
        );
        // Performed (completion reported) but not deactivated.
        assert_eq!(out.completions.len(), 1);
        assert_eq!(out.completions[0].version, 9);
        assert!(!c.is_quiescent(), "TBE stays open until activation");
        assert_eq!(c.counters().satisfied_before_activation, 1);
        // A tenure timer was armed.
        assert!(out.timers.iter().any(|(_, k)| k.kind == TimerKind::Tenure));
        // Activation arrives later: deactivate.
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Activation {
                    serial: 0,
                    acks_expected: 0,
                    exclusive: false,
                },
            ),
            Cycle::new(80),
            &mut out,
        );
        assert!(out
            .sends
            .iter()
            .any(|s| matches!(s.msg.body, MsgBody::Deactivate { .. })));
        assert!(c.is_quiescent());
    }

    #[test]
    fn tenure_timeout_discards_untenured_tokens_to_home() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Ack {
                    from: NodeId::new(3),
                    serial: 0,
                    tokens: TokenSet::plain(2),
                    activation: false,
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        let (at, key) = out.timers[0];
        assert_eq!(key.kind, TimerKind::Tenure);
        // Fire the timer without an activation: tokens go home.
        let mut out = Outbox::new();
        c.timer_fired(key, at, &mut out);
        assert_eq!(c.counters().tenure_timeouts, 1);
        let put = out
            .sends
            .iter()
            .find(|s| matches!(s.msg.body, MsgBody::Put { .. }))
            .expect("token return");
        assert_eq!(put.msg.tokens().count(), 2);
        assert_eq!(put.dests.as_single(), Some(NodeId::new(2)), "to the home");
        // The TBE is still open, waiting for redirected tokens.
        assert!(!c.is_quiescent());
    }

    #[test]
    fn stale_tenure_timer_is_ignored_after_activation() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Ack {
                    from: NodeId::new(3),
                    serial: 0,
                    tokens: TokenSet::plain(2),
                    activation: true, // home ack: activation rides along
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        let timer = out.timers.first().copied();
        // Any timer armed before activation must now be disregarded.
        if let Some((at, key)) = timer {
            let mut out = Outbox::new();
            c.timer_fired(key, at, &mut out);
            assert!(out.sends.is_empty(), "activated: no discard");
            assert_eq!(c.counters().tenure_timeouts, 0);
        }
    }

    #[test]
    fn home_redirects_returned_tokens_to_active_requester() {
        let mut home = ctrl(4, 0);
        let mut out = Outbox::new();
        // Drain home tokens to P1 via a write.
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(1),
                    serial: 0,
                    style: RequestStyle::Indirect,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        // While busy, P3 returns 2 stray tokens.
        let mut out = Outbox::new();
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Put {
                    node: NodeId::new(3),
                    tokens: TokenSet::plain(2),
                    version: None,
                    dirty: false,
                },
            ),
            Cycle::new(50),
            &mut out,
        );
        assert_eq!(out.sends.len(), 1);
        let redirect = &out.sends[0];
        assert_eq!(redirect.dests.as_single(), Some(NodeId::new(1)));
        assert_eq!(redirect.msg.tokens().count(), 2);
    }

    #[test]
    fn home_absorbs_returns_when_idle_and_cleans_owner() {
        let mut home = ctrl(4, 0);
        // Prime: drain tokens via a write transaction, complete it.
        let mut out = Outbox::new();
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(1),
                    serial: 0,
                    style: RequestStyle::Indirect,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Deactivate {
                    requester: NodeId::new(1),
                    serial: 0,
                    new_owner: true,
                    keeps_copy: true,
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        // P1 evicts: all 4 tokens with dirty owner and data come home.
        let mut out = Outbox::new();
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Put {
                    node: NodeId::new(1),
                    tokens: TokenSet::full(4, OwnerStatus::Dirty),
                    version: Some(5),
                    dirty: true,
                },
            ),
            Cycle::new(20),
            &mut out,
        );
        assert!(out.sends.is_empty(), "absorbed, not redirected");
        let held = home.held_tokens(a(0)).unwrap();
        assert_eq!(held.count(), 4);
        assert_eq!(
            held.owner_status(),
            Some(OwnerStatus::Clean),
            "memory cleans the owner token (Rule 1)"
        );
    }

    #[test]
    fn direct_request_ignored_with_outstanding_miss() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Read,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(3),
                    serial: 7,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::new(5),
            &mut out,
        );
        assert!(out.sends.is_empty());
        assert_eq!(c.counters().direct_ignored, 1);
    }

    #[test]
    fn direct_request_served_from_tenured_line() {
        let mut c = ctrl(4, 1);
        stable_line(&mut c, a(0), TokenSet::full(4, OwnerStatus::Dirty), 3);
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(3),
                    serial: 7,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::new(5),
            &mut out,
        );
        assert_eq!(c.counters().direct_responses, 1);
        match &out.sends[0].msg.body {
            MsgBody::Data {
                tokens,
                version,
                dirty,
                ..
            } => {
                assert_eq!(tokens.count(), 4);
                assert_eq!(*version, 3);
                assert!(*dirty);
            }
            other => panic!("{other:?}"),
        }
        assert!(!c.cache.contains(a(0)));
    }

    #[test]
    fn direct_read_to_non_owner_is_ignored() {
        let mut c = ctrl(4, 1);
        stable_line(&mut c, a(0), TokenSet::plain(2), 3);
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Read,
                    requester: NodeId::new(3),
                    serial: 7,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::new(5),
            &mut out,
        );
        assert!(out.sends.is_empty(), "only the owner answers reads");
        assert_eq!(c.counters().direct_ignored, 1);
    }

    #[test]
    fn owner_answers_read_and_keeps_plain_tokens() {
        let mut c = ctrl(4, 1);
        stable_line(&mut c, a(0), TokenSet::full(3, OwnerStatus::Clean), 8);
        let mut out = Outbox::new();
        c.handle_fwd(a(0), AccessKind::Read, NodeId::new(2), 1, false, &mut out);
        match &out.sends[0].msg.body {
            MsgBody::Data { tokens, .. } => {
                assert_eq!(tokens.count(), 1);
                assert!(tokens.has_owner());
            }
            other => panic!("{other:?}"),
        }
        // Keeps two plain tokens: still a sharer.
        assert_eq!(c.cache.peek(a(0)).unwrap().tokens.count(), 2);
    }

    #[test]
    fn deact_window_blocks_direct_requests_but_not_forwards() {
        let mut c = ctrl(4, 1);
        // Open a window by completing a transaction.
        c.deact_windows.insert(a(0), Cycle::new(1000));
        stable_line(&mut c, a(0), TokenSet::plain(2), 0);
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(3),
                    serial: 1,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::new(100),
            &mut out,
        );
        assert!(out.sends.is_empty(), "window blocks direct requests");
        // But a forwarded request is always served.
        let mut out = Outbox::new();
        c.handle_fwd(a(0), AccessKind::Write, NodeId::new(3), 1, false, &mut out);
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].msg.tokens().count(), 2);
    }

    #[test]
    fn stray_tokens_bounce_to_home() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        // Tokens arrive with no outstanding miss and no line.
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Ack {
                    from: NodeId::new(3),
                    serial: 99,
                    tokens: TokenSet::plain(2),
                    activation: false,
                },
            ),
            Cycle::new(5),
            &mut out,
        );
        let put = &out.sends[0];
        assert!(matches!(put.msg.body, MsgBody::Put { .. }));
        assert_eq!(put.dests.as_single(), Some(NodeId::new(2)));
        assert_eq!(put.msg.tokens().count(), 2);
    }

    #[test]
    fn active_requester_hoards_through_forwards() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        // Receive partial tokens with activation.
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Ack {
                    from: NodeId::new(2),
                    serial: 0,
                    tokens: TokenSet::plain(2),
                    activation: true,
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        // A lingering forward arrives: the active requester ignores it.
        let mut out = Outbox::new();
        c.handle_fwd(a(2), AccessKind::Write, NodeId::new(3), 4, false, &mut out);
        assert!(out.sends.is_empty(), "rule 6a: hoard while active");
        // A *non-active* requester would have responded (rule 6b): check
        // via a second controller.
        let mut c2 = ctrl(4, 3);
        let mut out = Outbox::new();
        c2.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c2.handle_message(
            Msg::new(
                a(2),
                MsgBody::Ack {
                    from: NodeId::new(2),
                    serial: 0,
                    tokens: TokenSet::plain(2),
                    activation: false,
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        let mut out = Outbox::new();
        c2.handle_fwd(a(2), AccessKind::Write, NodeId::new(1), 4, false, &mut out);
        assert_eq!(out.sends.len(), 1, "rule 6b: non-active responds");
        assert_eq!(out.sends[0].msg.tokens().count(), 2);
    }

    #[test]
    fn upgrade_activation_is_standalone_when_home_has_nothing() {
        let mut home = ctrl(4, 0);
        let mut out = Outbox::new();
        // First: P1 takes everything via a write.
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(1),
                    serial: 0,
                    style: RequestStyle::Indirect,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Deactivate {
                    requester: NodeId::new(1),
                    serial: 0,
                    new_owner: true,
                    keeps_copy: true,
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        // P2 reads: tokens flow P1 -> P2 (suppose P2 ends up a sharer).
        let mut out = Outbox::new();
        home.handle_message(
            Msg::new(
                a(0),
                MsgBody::Request {
                    kind: AccessKind::Read,
                    requester: NodeId::new(2),
                    serial: 0,
                    style: RequestStyle::Indirect,
                },
            ),
            Cycle::new(20),
            &mut out,
        );
        // Home has no tokens: standalone activation + forward to owner.
        assert!(out
            .sends
            .iter()
            .any(|s| matches!(s.msg.body, MsgBody::Activation { .. })
                && s.dests.as_single() == Some(NodeId::new(2))));
        assert!(out
            .sends
            .iter()
            .any(|s| matches!(s.msg.body, MsgBody::Fwd { .. })
                && s.dests.as_single() == Some(NodeId::new(1))));
    }

    #[test]
    fn held_tokens_reports_implicit_home_holdings() {
        let c = ctrl(4, 0);
        // Block 0 homed at P0, untouched: full holdings.
        assert_eq!(c.held_tokens(a(0)).unwrap().count(), 4);
        // Block 1 homed elsewhere: nothing held here.
        assert_eq!(c.held_tokens(a(1)).unwrap().count(), 0);
    }

    #[test]
    fn non_adaptive_direct_requests_use_normal_priority() {
        let cfg = config(4)
            .with_predictor(PredictorChoice::All)
            .non_adaptive();
        let mut c = PatchController::new(cfg, NodeId::new(1));
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Read,
            },
            Cycle::ZERO,
            &mut out,
        );
        let direct = out
            .sends
            .iter()
            .find(|s| {
                matches!(
                    s.msg.body,
                    MsgBody::Request {
                        style: RequestStyle::Direct,
                        ..
                    }
                )
            })
            .expect("direct request");
        assert_eq!(direct.priority, Priority::Normal);
    }
}
