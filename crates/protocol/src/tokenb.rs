//! TokenB: broadcast token coherence with persistent requests.
//!
//! The comparator protocol of the paper's §8.2 (Figure 4's rightmost
//! bars), following Martin et al., *"Token Coherence: Decoupling
//! Performance and Correctness"* (ISCA 2003):
//!
//! * Misses **broadcast** a transient request to every node (including
//!   the block's home memory controller) on the unordered torus; there is
//!   no directory and no indirection. The owner answers reads with the
//!   owner token and data; writes collect every token.
//! * Transient requests may fail under races, so unsatisfied misses
//!   **reissue** after an adaptively estimated timeout (with exponential
//!   backoff).
//! * After a bounded number of reissues the requester invokes a
//!   **persistent request**: the block's home arbitrates (centralized
//!   arbitration, one starver at a time), broadcasting an activation that
//!   every node records in a persistent-request table. While the entry is
//!   active, every node forwards all tokens it holds — or later receives —
//!   for that block to the starver, guaranteeing eventual completion.
//!
//! The contrast with PATCH's token tenure is the point of the comparison:
//! TokenB needs broadcast and per-node tables for forward progress, where
//! token tenure needs only the directory's per-block point of ordering
//! and local timeouts (paper Table 4).

use std::collections::VecDeque;

use patchsim_kernel::collections::{fx_map_with_capacity, FxHashMap};

use patchsim_kernel::Cycle;
use patchsim_mem::{AccessKind, BlockAddr, CacheArray, OwnerStatus, TokenSet};
use patchsim_noc::{DestSet, NodeId};

use crate::common::LatencyEstimator;
use crate::controller::{
    Completion, Controller, CoreResponse, MemOp, Outbox, ProtocolCounters, ProtocolGauges,
    SpanMarks, TimerKey, TimerKind,
};
use crate::{Msg, MsgBody, ProtocolConfig, RequestStyle};

#[derive(Clone, Copy, Debug)]
struct TbLine {
    tokens: TokenSet,
    version: u64,
    valid: bool,
}

#[derive(Debug)]
struct TbTbe {
    addr: BlockAddr,
    kind: AccessKind,
    serial: u64,
    issued_at: Cycle,
    reissues: u32,
    timer_generation: u64,
    /// A persistent request has been invoked for this miss.
    persistent: bool,
    /// Span telemetry phase timestamps (pure observation).
    marks: SpanMarks,
}

/// The home memory controller's token holdings for one block.
#[derive(Debug)]
struct TbHome {
    tokens: TokenSet,
    valid: bool,
    version: u64,
}

/// Home-side persistent-request arbitration (centralized, per block).
///
/// Entries carry the starver's transaction serial so that, on an unordered
/// network, a stale deactivation (from an earlier miss of the same node)
/// can never tear down a newer activation.
#[derive(Debug, Default)]
struct ArbEntry {
    active: Option<(NodeId, AccessKind, u64)>,
    queue: VecDeque<(NodeId, AccessKind, u64)>,
}

/// The TokenB controller for one node: private cache, the node's slice of
/// memory, its persistent-request table, and (for blocks homed here) the
/// persistent-request arbiter.
///
/// See the module-level documentation for the protocol description.
pub struct TokenBController {
    config: ProtocolConfig,
    id: NodeId,
    cache: CacheArray<TbLine>,
    demand: Option<TbTbe>,
    home: FxHashMap<BlockAddr, TbHome>,
    arb: FxHashMap<BlockAddr, ArbEntry>,
    /// This node's persistent-request table: blocks whose tokens must be
    /// forwarded to a starver, keyed with the activation's serial.
    table: FxHashMap<BlockAddr, (NodeId, AccessKind, u64)>,
    latency: LatencyEstimator,
    counters: ProtocolCounters,
    next_serial: u64,
}

impl std::fmt::Debug for TokenBController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TokenBController")
            .field("id", &self.id)
            .field("demand", &self.demand)
            .field("table_entries", &self.table.len())
            .finish()
    }
}

impl TokenBController {
    /// Creates the controller for `node`.
    pub fn new(config: ProtocolConfig, node: NodeId) -> Self {
        let cache = CacheArray::new(config.cache_geometry);
        let (home_cap, cache_cap) = (config.home_table_capacity(), config.cache_table_capacity());
        TokenBController {
            config,
            id: node,
            cache,
            demand: None,
            home: fx_map_with_capacity(home_cap),
            arb: fx_map_with_capacity(cache_cap),
            table: fx_map_with_capacity(cache_cap),
            latency: LatencyEstimator::default(),
            counters: ProtocolCounters::default(),
            next_serial: 0,
        }
    }

    fn n(&self) -> u16 {
        self.config.num_nodes
    }

    fn total(&self) -> u32 {
        self.config.total_tokens
    }

    fn home_slice(&mut self, addr: BlockAddr) -> &mut TbHome {
        debug_assert_eq!(addr.home(self.config.num_nodes), self.id);
        let total = self.config.total_tokens;
        self.home.entry(addr).or_insert_with(|| TbHome {
            tokens: TokenSet::full(total, OwnerStatus::Clean),
            valid: true,
            version: 0,
        })
    }

    // ------------------------------------------------------------------
    // Issue / reissue
    // ------------------------------------------------------------------

    fn broadcast_request(&mut self, style: RequestStyle, now: Cycle, out: &mut Outbox) {
        let n = self.n();
        let num_nodes = self.config.num_nodes;
        let id = self.id;
        let timeout_base = self.latency.average();
        let tbe = self.demand.as_mut().expect("broadcast without a TBE");
        let mut dests = DestSet::all_except(n, id);
        if tbe.addr.home(num_nodes) == id {
            // Our own memory slice must also see the request; the
            // interconnect delivers to self after the local latency.
            dests.insert(id);
        }
        let msg = Msg::new(
            tbe.addr,
            MsgBody::Request {
                kind: tbe.kind,
                requester: id,
                serial: tbe.serial,
                style,
            },
        );
        tbe.timer_generation += 1;
        let generation = tbe.timer_generation;
        let timeout = ((timeout_base * 2.0) as u64).max(100) << tbe.reissues.min(8);
        let deadline = now + timeout;
        let addr = tbe.addr;
        out.send(dests, msg);
        out.arm_timer(
            deadline,
            TimerKey {
                addr,
                kind: TimerKind::Reissue,
                generation,
            },
        );
    }

    fn issue_miss(&mut self, op: MemOp, now: Cycle, out: &mut Outbox) {
        debug_assert!(self.demand.is_none());
        let serial = self.next_serial;
        self.next_serial += 1;
        self.counters.misses += 1;
        self.demand = Some(TbTbe {
            addr: op.addr,
            kind: op.kind,
            serial,
            issued_at: now,
            reissues: 0,
            timer_generation: 0,
            persistent: false,
            marks: SpanMarks::default(),
        });
        self.broadcast_request(RequestStyle::Direct, now, out);
        self.try_progress(now, out);
    }

    // ------------------------------------------------------------------
    // Responding to transient requests
    // ------------------------------------------------------------------

    /// Cache-side response to a transient request; mirrors PATCH's rules.
    fn cache_respond(
        &mut self,
        addr: BlockAddr,
        kind: AccessKind,
        requester: NodeId,
        serial: u64,
        out: &mut Outbox,
    ) {
        let Some(line) = self.cache.get_mut(addr) else {
            return;
        };
        if line.tokens.is_empty() {
            self.cache.remove(addr);
            return;
        }
        match kind {
            AccessKind::Write => {
                let tokens = line.tokens.take_all();
                let version = line.version;
                self.cache.remove(addr);
                self.send_tokens(addr, requester, serial, tokens, version, out);
            }
            AccessKind::Read => {
                if !line.tokens.has_owner() {
                    return;
                }
                debug_assert!(line.valid);
                let tokens = line.tokens.split_owner(0);
                let version = line.version;
                if line.tokens.is_empty() {
                    self.cache.remove(addr);
                }
                self.send_tokens(addr, requester, serial, tokens, version, out);
            }
        }
    }

    /// Memory-side response from this node's home slice.
    ///
    /// The memory controller must consult its per-block token state before
    /// responding — the same kind of lookup a directory performs — so
    /// responses are charged the directory lookup latency, plus DRAM when
    /// data is supplied.
    fn home_respond(
        &mut self,
        addr: BlockAddr,
        kind: AccessKind,
        requester: NodeId,
        serial: u64,
        out: &mut Outbox,
    ) {
        let lookup = self.config.dir_latency;
        let dram = self.config.dram_latency + lookup;
        let n = self.n();
        let slice = self.home_slice(addr);
        if slice.tokens.is_empty() {
            return;
        }
        match kind {
            AccessKind::Write => {
                let tokens = slice.tokens.take_all();
                let (version, valid) = (slice.version, slice.valid);
                if tokens.has_owner() {
                    debug_assert!(valid);
                    out.send_one_after(
                        n,
                        requester,
                        dram,
                        Msg::new(
                            addr,
                            MsgBody::Data {
                                from: self.id,
                                serial,
                                tokens,
                                version,
                                acks_expected: 0,
                                exclusive: false,
                                dirty: false,
                                activation: false,
                            },
                        ),
                    );
                } else {
                    out.send_one_after(
                        n,
                        requester,
                        lookup,
                        Msg::new(
                            addr,
                            MsgBody::Ack {
                                from: self.id,
                                serial,
                                tokens,
                                activation: false,
                            },
                        ),
                    );
                }
            }
            AccessKind::Read => {
                if !slice.tokens.has_owner() {
                    return;
                }
                debug_assert!(slice.valid);
                let tokens = slice.tokens.take_all();
                let version = slice.version;
                out.send_one_after(
                    n,
                    requester,
                    dram,
                    Msg::new(
                        addr,
                        MsgBody::Data {
                            from: self.id,
                            serial,
                            tokens,
                            version,
                            acks_expected: 0,
                            exclusive: false,
                            dirty: false,
                            activation: false,
                        },
                    ),
                );
            }
        }
    }

    fn send_tokens(
        &mut self,
        addr: BlockAddr,
        to: NodeId,
        serial: u64,
        tokens: TokenSet,
        version: u64,
        out: &mut Outbox,
    ) {
        debug_assert!(!tokens.is_empty());
        let body = if tokens.has_owner() {
            MsgBody::Data {
                from: self.id,
                serial,
                tokens,
                version,
                acks_expected: 0,
                exclusive: false,
                dirty: tokens.owner_status() == Some(OwnerStatus::Dirty),
                activation: false,
            }
        } else {
            MsgBody::Ack {
                from: self.id,
                serial,
                tokens,
                activation: false,
            }
        };
        out.send_one(self.n(), to, Msg::new(addr, body));
    }

    /// Returns tokens to the home memory slice (eviction or stray
    /// arrivals).
    fn put_tokens(&mut self, addr: BlockAddr, tokens: TokenSet, version: u64, out: &mut Outbox) {
        if tokens.is_empty() {
            return;
        }
        self.counters.writebacks += 1;
        let home = addr.home(self.n());
        let with_data = tokens.owner_status() == Some(OwnerStatus::Dirty);
        out.send_one(
            self.n(),
            home,
            Msg::new(
                addr,
                MsgBody::Put {
                    node: self.id,
                    tokens,
                    version: with_data.then_some(version),
                    dirty: with_data,
                },
            ),
        );
    }

    // ------------------------------------------------------------------
    // Token arrival / completion
    // ------------------------------------------------------------------

    fn handle_token_arrival(
        &mut self,
        addr: BlockAddr,
        tokens: TokenSet,
        data_version: Option<u64>,
        now: Cycle,
        out: &mut Outbox,
    ) {
        // Persistent-request table takes precedence: tokens for a starving
        // block are forwarded, not kept.
        if let Some(&(starver, _, _)) = self.table.get(&addr) {
            if starver != self.id {
                if !tokens.is_empty() {
                    self.send_tokens(addr, starver, 0, tokens, data_version.unwrap_or(0), out);
                }
                return;
            }
        }
        let has_tbe = self.demand.as_ref().is_some_and(|t| t.addr == addr);
        if has_tbe {
            // Span telemetry: the first token arrival for the outstanding
            // miss ends the network phase. Pure data write — no protocol
            // effect.
            if let Some(tbe) = self.demand.as_mut() {
                if tbe.marks.first_progress.is_none() {
                    tbe.marks.first_progress = Some(now);
                }
            }
        }
        if !has_tbe && !self.cache.contains(addr) {
            // Stray tokens with nowhere to live: return them to memory.
            self.put_tokens(addr, tokens, data_version.unwrap_or(0), out);
            return;
        }
        if let Some(line) = self.cache.get_mut(addr) {
            line.tokens.merge(tokens);
            if let Some(v) = data_version {
                line.valid = true;
                line.version = v;
            }
        } else {
            let line = TbLine {
                tokens,
                version: data_version.unwrap_or(0),
                valid: data_version.is_some(),
            };
            if let Some(victim) = self.cache.insert(addr, line) {
                self.put_tokens(
                    victim.addr,
                    victim.payload.tokens,
                    victim.payload.version,
                    out,
                );
            }
        }
        self.try_progress(now, out);
    }

    fn try_progress(&mut self, now: Cycle, out: &mut Outbox) {
        let total = self.total();
        let Some(tbe) = self.demand.as_mut() else {
            return;
        };
        let addr = tbe.addr;
        let satisfied = match self.cache.peek(addr) {
            Some(line) => match tbe.kind {
                AccessKind::Read => line.valid && line.tokens.can_read(),
                AccessKind::Write => line.valid && line.tokens.can_write(total),
            },
            None => false,
        };
        if !satisfied {
            return;
        }
        let tbe = self.demand.take().expect("present");
        let line = self.cache.get_mut(addr).expect("satisfied implies line");
        let version = match tbe.kind {
            AccessKind::Read => line.version,
            AccessKind::Write => {
                line.version += 1;
                line.tokens.set_owner_dirty();
                line.version
            }
        };
        let new_owner = line.tokens.has_owner();
        self.latency.record(now - tbe.issued_at);
        out.complete(Completion {
            addr,
            kind: tbe.kind,
            version,
            issued_at: tbe.issued_at,
            marks: tbe.marks,
        });
        if tbe.persistent {
            // Tell the home arbiter the starvation is over.
            let home = addr.home(self.n());
            out.send_one(
                self.n(),
                home,
                Msg::new(
                    addr,
                    MsgBody::Deactivate {
                        requester: self.id,
                        serial: tbe.serial,
                        new_owner,
                        keeps_copy: true,
                    },
                ),
            );
        }
    }

    // ------------------------------------------------------------------
    // Persistent requests
    // ------------------------------------------------------------------

    fn arb_activate(
        &mut self,
        addr: BlockAddr,
        starver: NodeId,
        kind: AccessKind,
        serial: u64,
        out: &mut Outbox,
    ) {
        out.send(
            DestSet::all(self.n()),
            Msg::new(
                addr,
                MsgBody::PersistentActivate {
                    starver,
                    kind,
                    serial,
                },
            ),
        );
    }

    fn handle_persistent_activate(
        &mut self,
        addr: BlockAddr,
        starver: NodeId,
        kind: AccessKind,
        serial: u64,
        now: Cycle,
        out: &mut Outbox,
    ) {
        if starver == self.id {
            // Only the transaction that invoked this persistent request may
            // consume the activation — matched by serial. Anything else
            // (the miss completed already, or this is a *different* miss on
            // the same block) must release the arbiter instead: marking an
            // unrelated TBE `persistent` would silence its reissue timer
            // while no live arbiter entry funnels tokens to it, which
            // deadlocks if the activation is stale.
            let ours = self
                .demand
                .as_ref()
                .is_some_and(|t| t.addr == addr && t.persistent && t.serial == serial);
            if !ours {
                let home = addr.home(self.config.num_nodes);
                out.send_one(
                    self.n(),
                    home,
                    Msg::new(
                        addr,
                        MsgBody::Deactivate {
                            requester: self.id,
                            serial,
                            new_owner: false,
                            keeps_copy: false,
                        },
                    ),
                );
                return;
            }
            // Span telemetry: our own persistent activation is the point
            // where the system serializes this starving miss. Pure data
            // write — no protocol effect.
            if let Some(tbe) = self.demand.as_mut() {
                if tbe.marks.ordered.is_none() {
                    tbe.marks.ordered = Some(now);
                }
            }
        }
        self.table.insert(addr, (starver, kind, serial));
        if starver != self.id {
            // Surrender current cache holdings.
            if let Some(line) = self.cache.get_mut(addr) {
                let tokens = line.tokens.take_all();
                let version = line.version;
                self.cache.remove(addr);
                if !tokens.is_empty() {
                    self.send_tokens(addr, starver, 0, tokens, version, out);
                }
            }
        }
        // Surrender the memory slice's holdings too.
        if addr.home(self.config.num_nodes) == self.id {
            let dram = self.config.dram_latency;
            let n = self.n();
            let id = self.id;
            let slice = self.home_slice(addr);
            if !slice.tokens.is_empty() {
                let tokens = slice.tokens.take_all();
                let (version, valid) = (slice.version, slice.valid);
                if tokens.has_owner() {
                    debug_assert!(valid);
                    out.send_one_after(
                        n,
                        starver,
                        dram,
                        Msg::new(
                            addr,
                            MsgBody::Data {
                                from: id,
                                serial: 0,
                                tokens,
                                version,
                                acks_expected: 0,
                                exclusive: false,
                                dirty: false,
                                activation: false,
                            },
                        ),
                    );
                } else {
                    out.send_one(
                        n,
                        starver,
                        Msg::new(
                            addr,
                            MsgBody::Ack {
                                from: id,
                                serial: 0,
                                tokens,
                                activation: false,
                            },
                        ),
                    );
                }
            }
        }
    }
}

impl Controller for TokenBController {
    fn core_request(&mut self, op: MemOp, now: Cycle, out: &mut Outbox) -> CoreResponse {
        let total = self.total();
        if let Some(line) = self.cache.get_mut(op.addr) {
            match op.kind {
                AccessKind::Read if line.valid && line.tokens.can_read() => {
                    self.counters.hits += 1;
                    return CoreResponse::Hit {
                        version: line.version,
                    };
                }
                AccessKind::Write if line.valid && line.tokens.can_write(total) => {
                    line.version += 1;
                    line.tokens.set_owner_dirty();
                    self.counters.hits += 1;
                    return CoreResponse::Hit {
                        version: line.version,
                    };
                }
                _ => {}
            }
        }
        self.issue_miss(op, now, out);
        CoreResponse::MissPending
    }

    fn handle_message(&mut self, msg: Msg, now: Cycle, out: &mut Outbox) {
        let addr = msg.addr;
        match msg.body {
            MsgBody::Request {
                kind,
                requester,
                serial,
                style,
            } => {
                debug_assert!(
                    matches!(
                        style,
                        RequestStyle::Direct | RequestStyle::Reissue | RequestStyle::Persistent
                    ),
                    "TokenB has no indirect requests"
                );
                if style == RequestStyle::Persistent {
                    // Home-side arbitration.
                    let entry = self.arb.entry(addr).or_default();
                    if entry.active.is_none() {
                        entry.active = Some((requester, kind, serial));
                        self.arb_activate(addr, requester, kind, serial, out);
                    } else {
                        entry.queue.push_back((requester, kind, serial));
                    }
                    return;
                }
                // Transient request: suppressed while a persistent request
                // is active for the block.
                if self.table.contains_key(&addr) {
                    return;
                }
                // Memory slice responds if this node is the home.
                if addr.home(self.config.num_nodes) == self.id {
                    self.home_respond(addr, kind, requester, serial, out);
                }
                // Cache side responds unless it has its own miss
                // outstanding for the block (races resolve by reissue).
                if requester != self.id && self.demand.as_ref().is_none_or(|t| t.addr != addr) {
                    self.cache_respond(addr, kind, requester, serial, out);
                }
            }
            MsgBody::Data {
                tokens, version, ..
            } => {
                self.handle_token_arrival(addr, tokens, Some(version), now, out);
            }
            MsgBody::Ack { tokens, .. } => {
                self.handle_token_arrival(addr, tokens, None, now, out);
            }
            MsgBody::Put {
                node: _,
                tokens,
                version,
                ..
            } => {
                // Tokens returned to memory. If a persistent request is
                // active, funnel them onward to the starver.
                if let Some(&(starver, _, _)) = self.table.get(&addr) {
                    if !tokens.is_empty() {
                        self.send_tokens(addr, starver, 0, tokens, version.unwrap_or(0), out);
                    }
                    return;
                }
                let slice = self.home_slice(addr);
                let mut tokens = tokens;
                if let Some(v) = version {
                    slice.version = v;
                }
                if tokens.has_owner() {
                    tokens.set_owner_clean();
                    slice.valid = true;
                }
                slice.tokens.merge(tokens);
            }
            MsgBody::Deactivate {
                requester, serial, ..
            } => {
                // Persistent-request completion at the home arbiter. A
                // requester can complete while its persistent request is
                // still in flight, so its deactivation may arrive early
                // (before the request) or while another starver is active;
                // only the *active* starver's deactivation — matched by
                // requester AND serial, so a stale release from an earlier
                // miss of the same node cannot tear down a fresh entry —
                // closes it. A stray activation is cancelled by the starver
                // itself when it arrives (see PersistentActivate below).
                let n = self.n();
                let entry = self.arb.entry(addr).or_default();
                if entry.active.map(|(node, _, s)| (node, s)) != Some((requester, serial)) {
                    return;
                }
                entry.active = None;
                out.send(
                    DestSet::all(n),
                    Msg::new(
                        addr,
                        MsgBody::PersistentDeactivate {
                            starver: requester,
                            serial,
                        },
                    ),
                );
                let next = entry.queue.pop_front();
                if let Some((next_node, kind, next_serial)) = next {
                    entry.active = Some((next_node, kind, next_serial));
                    self.arb_activate(addr, next_node, kind, next_serial, out);
                }
            }
            MsgBody::PersistentActivate {
                starver,
                kind,
                serial,
            } => {
                self.handle_persistent_activate(addr, starver, kind, serial, now, out);
            }
            MsgBody::PersistentDeactivate { starver, serial } => {
                // Guarded removal: on an unordered network this broadcast
                // can arrive after the *next* starver's activation; a late
                // deactivation for an old starver (or an old serial of the
                // same starver) must not clobber the fresh entry.
                if self
                    .table
                    .get(&addr)
                    .is_some_and(|&(active, _, s)| active == starver && s == serial)
                {
                    self.table.remove(&addr);
                }
            }
            MsgBody::Fwd { .. } | MsgBody::Activation { .. } | MsgBody::WbAck { .. } => {
                unreachable!("TokenB does not use {:?}", msg.body)
            }
        }
    }

    fn timer_fired(&mut self, key: TimerKey, now: Cycle, out: &mut Outbox) {
        debug_assert_eq!(key.kind, TimerKind::Reissue);
        let Some(tbe) = self.demand.as_mut() else {
            return;
        };
        if tbe.addr != key.addr || tbe.timer_generation != key.generation || tbe.persistent {
            return;
        }
        if tbe.reissues < self.config.reissues_before_persistent {
            tbe.reissues += 1;
            self.counters.reissues += 1;
            self.broadcast_request(RequestStyle::Reissue, now, out);
        } else {
            tbe.persistent = true;
            self.counters.persistent_requests += 1;
            let home = tbe.addr.home(self.config.num_nodes);
            let (kind, serial) = (tbe.kind, tbe.serial);
            out.send_one(
                self.n(),
                home,
                Msg::new(
                    key.addr,
                    MsgBody::Request {
                        kind,
                        requester: self.id,
                        serial,
                        style: RequestStyle::Persistent,
                    },
                ),
            );
        }
    }

    fn is_quiescent(&self) -> bool {
        self.demand.is_none()
            && self
                .arb
                .values()
                .all(|e| e.active.is_none() && e.queue.is_empty())
    }

    fn held_tokens(&self, addr: BlockAddr) -> Option<TokenSet> {
        let mut total = TokenSet::empty();
        if let Some(line) = self.cache.peek(addr) {
            total.merge(line.tokens);
        }
        if addr.home(self.config.num_nodes) == self.id {
            match self.home.get(&addr) {
                Some(slice) => total.merge(slice.tokens),
                None => total.merge(TokenSet::full(self.config.total_tokens, OwnerStatus::Clean)),
            }
        }
        Some(total)
    }

    fn counters(&self) -> ProtocolCounters {
        self.counters
    }

    fn gauges(&self) -> ProtocolGauges {
        ProtocolGauges {
            tbes: u64::from(self.demand.is_some()),
            home_entries: (self.home.len() + self.arb.len()) as u64,
            persistent_entries: self.table.len() as u64,
        }
    }

    fn protocol_name(&self) -> &'static str {
        "TokenB"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProtocolKind;

    fn config(n: u16) -> ProtocolConfig {
        ProtocolConfig::new(ProtocolKind::TokenB, n)
    }

    fn ctrl(n: u16, node: u16) -> TokenBController {
        TokenBController::new(config(n), NodeId::new(node))
    }

    fn a(x: u64) -> BlockAddr {
        BlockAddr::new(x)
    }

    #[test]
    fn miss_broadcasts_to_everyone() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        assert_eq!(out.sends.len(), 1);
        let bcast = &out.sends[0];
        // Everyone except self (block 2's home is node 2, not us).
        assert_eq!(bcast.dests.len(), 3);
        assert!(!bcast.dests.contains(NodeId::new(1)));
        assert!(matches!(
            bcast.msg.body,
            MsgBody::Request {
                style: RequestStyle::Direct,
                ..
            }
        ));
        // And a reissue timer is armed.
        assert_eq!(out.timers.len(), 1);
        assert_eq!(out.timers[0].1.kind, TimerKind::Reissue);
    }

    #[test]
    fn broadcast_includes_self_when_home_is_local() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(1), // homed at node 1 = self
                kind: AccessKind::Read,
            },
            Cycle::ZERO,
            &mut out,
        );
        assert!(out.sends[0].dests.contains(NodeId::new(1)));
    }

    #[test]
    fn memory_answers_write_broadcast_with_all_tokens() {
        let mut c = ctrl(4, 2); // home of block 2
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(0),
                    serial: 0,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        assert_eq!(out.sends.len(), 1);
        match &out.sends[0].msg.body {
            MsgBody::Data { tokens, .. } => {
                assert_eq!(tokens.count(), 4);
                assert!(tokens.has_owner());
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(out.sends[0].delay, 96, "token-state lookup + DRAM");
    }

    #[test]
    fn requester_completes_and_closes_tbe() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Data {
                    from: NodeId::new(2),
                    serial: 0,
                    tokens: TokenSet::full(4, OwnerStatus::Clean),
                    version: 0,
                    acks_expected: 0,
                    exclusive: false,
                    dirty: false,
                    activation: false,
                },
            ),
            Cycle::new(100),
            &mut out,
        );
        assert_eq!(out.completions.len(), 1);
        assert!(c.is_quiescent());
        // No deactivation: the miss never went persistent.
        assert!(out
            .sends
            .iter()
            .all(|s| !matches!(s.msg.body, MsgBody::Deactivate { .. })));
    }

    #[test]
    fn reissue_then_persistent() {
        let mut c = ctrl(4, 1);
        let mut out = Outbox::new();
        c.core_request(
            MemOp {
                addr: a(2),
                kind: AccessKind::Write,
            },
            Cycle::ZERO,
            &mut out,
        );
        let (mut at, mut key) = out.timers[0];
        // Fire the timer config.reissues_before_persistent times: each
        // rebroadcasts.
        for i in 0..2 {
            let mut out = Outbox::new();
            c.timer_fired(key, at, &mut out);
            assert!(
                out.sends.iter().any(|s| matches!(
                    s.msg.body,
                    MsgBody::Request {
                        style: RequestStyle::Reissue,
                        ..
                    }
                )),
                "reissue {i}"
            );
            (at, key) = out.timers[0];
        }
        assert_eq!(c.counters().reissues, 2);
        // The next timeout escalates to a persistent request.
        let mut out = Outbox::new();
        c.timer_fired(key, at, &mut out);
        assert_eq!(c.counters().persistent_requests, 1);
        let persistent = &out.sends[0];
        assert_eq!(persistent.dests.as_single(), Some(NodeId::new(2)));
        assert!(matches!(
            persistent.msg.body,
            MsgBody::Request {
                style: RequestStyle::Persistent,
                ..
            }
        ));
    }

    #[test]
    fn home_arbitrates_persistent_requests_one_at_a_time() {
        let mut home = ctrl(4, 2);
        let persistent = |r: u16| {
            Msg::new(
                a(2),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(r),
                    serial: 0,
                    style: RequestStyle::Persistent,
                },
            )
        };
        let mut out = Outbox::new();
        home.handle_message(persistent(0), Cycle::ZERO, &mut out);
        // Broadcast activation for P0.
        assert!(out.sends.iter().any(|s| matches!(
            s.msg.body,
            MsgBody::PersistentActivate { starver, .. } if starver == NodeId::new(0)
        )));
        // P3's persistent request queues.
        let mut out = Outbox::new();
        home.handle_message(persistent(3), Cycle::ZERO, &mut out);
        assert!(out.sends.is_empty());
        // P0 completes: deactivation broadcast + P3 activated.
        let mut out = Outbox::new();
        home.handle_message(
            Msg::new(
                a(2),
                MsgBody::Deactivate {
                    requester: NodeId::new(0),
                    serial: 0,
                    new_owner: true,
                    keeps_copy: true,
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        assert!(out
            .sends
            .iter()
            .any(|s| matches!(s.msg.body, MsgBody::PersistentDeactivate { .. })));
        assert!(out.sends.iter().any(|s| matches!(
            s.msg.body,
            MsgBody::PersistentActivate { starver, .. } if starver == NodeId::new(3)
        )));
    }

    #[test]
    fn persistent_activation_surrenders_tokens() {
        let mut c = ctrl(4, 1);
        c.cache.insert(
            a(2),
            TbLine {
                tokens: TokenSet::plain(2),
                version: 0,
                valid: true,
            },
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::PersistentActivate {
                    starver: NodeId::new(3),
                    kind: AccessKind::Write,
                    serial: 0,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        assert_eq!(out.sends.len(), 1);
        assert_eq!(out.sends[0].dests.as_single(), Some(NodeId::new(3)));
        assert_eq!(out.sends[0].msg.tokens().count(), 2);
        // Tokens that arrive later are forwarded too.
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Ack {
                    from: NodeId::new(0),
                    serial: 0,
                    tokens: TokenSet::plain(1),
                    activation: false,
                },
            ),
            Cycle::new(5),
            &mut out,
        );
        assert_eq!(out.sends[0].dests.as_single(), Some(NodeId::new(3)));
        // Until the deactivation broadcast clears the table.
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::PersistentDeactivate {
                    starver: NodeId::new(3),
                    serial: 0,
                },
            ),
            Cycle::new(10),
            &mut out,
        );
        assert!(c.table.is_empty());
    }

    #[test]
    fn transient_requests_suppressed_during_persistent() {
        let mut c = ctrl(4, 1);
        c.cache.insert(
            a(2),
            TbLine {
                tokens: TokenSet::full(4, OwnerStatus::Dirty),
                version: 1,
                valid: true,
            },
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::PersistentActivate {
                    starver: NodeId::new(3),
                    kind: AccessKind::Write,
                    serial: 0,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        // Now a transient request from P0 arrives: ignored.
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Request {
                    kind: AccessKind::Write,
                    requester: NodeId::new(0),
                    serial: 1,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::new(5),
            &mut out,
        );
        assert!(out.sends.is_empty());
    }

    #[test]
    fn owner_answers_read_broadcast_with_owner_token() {
        let mut c = ctrl(4, 1);
        c.cache.insert(
            a(2),
            TbLine {
                tokens: TokenSet::full(3, OwnerStatus::Dirty),
                version: 6,
                valid: true,
            },
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Request {
                    kind: AccessKind::Read,
                    requester: NodeId::new(0),
                    serial: 0,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        match &out.sends[0].msg.body {
            MsgBody::Data {
                tokens,
                version,
                dirty,
                ..
            } => {
                assert_eq!(tokens.count(), 1);
                assert!(tokens.has_owner());
                assert_eq!(*version, 6);
                assert!(*dirty);
            }
            other => panic!("{other:?}"),
        }
        // Keeps its plain tokens as a sharer.
        assert_eq!(c.cache.peek(a(2)).unwrap().tokens.count(), 2);
    }

    #[test]
    fn sharer_ignores_read_broadcast() {
        let mut c = ctrl(4, 1);
        c.cache.insert(
            a(2),
            TbLine {
                tokens: TokenSet::plain(1),
                version: 0,
                valid: true,
            },
        );
        let mut out = Outbox::new();
        c.handle_message(
            Msg::new(
                a(2),
                MsgBody::Request {
                    kind: AccessKind::Read,
                    requester: NodeId::new(0),
                    serial: 0,
                    style: RequestStyle::Direct,
                },
            ),
            Cycle::ZERO,
            &mut out,
        );
        assert!(out.sends.is_empty(), "zero-token acks are elided");
    }
}
