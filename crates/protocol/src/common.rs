//! Helpers shared by the protocol implementations.

use patchsim_kernel::collections::{fx_map_with_capacity, FxHashMap};
use patchsim_kernel::stats::Ewma;
use patchsim_mem::{AccessKind, BlockAddr};
use patchsim_noc::NodeId;

/// A running estimate of miss round-trip latency, used for PATCH's
/// adaptive tenure timeout and TokenB's reissue timeout.
///
/// Starts from a conservative prior so that cold-start timeouts are sane,
/// then tracks the observed average with an exponentially weighted moving
/// average.
#[derive(Debug, Clone)]
pub struct LatencyEstimator {
    ewma: Ewma,
}

impl LatencyEstimator {
    /// Creates an estimator with the given prior mean (cycles).
    pub fn new(prior: f64) -> Self {
        LatencyEstimator {
            ewma: Ewma::new(0.1, prior),
        }
    }

    /// Records one observed miss round-trip.
    pub fn record(&mut self, cycles: u64) {
        self.ewma.record(cycles as f64);
    }

    /// The current average estimate.
    pub fn average(&self) -> f64 {
        self.ewma.value()
    }
}

impl Default for LatencyEstimator {
    fn default() -> Self {
        // A generous prior: a few traversals plus a DRAM access.
        LatencyEstimator::new(200.0)
    }
}

/// Per-block migratory-sharing detection at the home (§5.1: DIRECTORY
/// "supports ... a migratory sharing optimization", which PATCH inherits).
///
/// The classic pattern is a chain of read-modify-write pairs by different
/// processors. Detection: a write by the same processor that issued the
/// immediately preceding read marks the block migratory; from then on
/// reads are upgraded to exclusive grants, so each processor's pair costs
/// one miss instead of two. Two plain reads in a row mark the block as
/// genuinely shared again.
#[derive(Debug, Default)]
pub struct MigratoryDetector {
    state: FxHashMap<BlockAddr, MigState>,
}

#[derive(Debug, Clone, Copy)]
struct MigState {
    last: Option<(NodeId, AccessKind)>,
    migratory: bool,
}

impl MigratoryDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty detector pre-sized for `capacity` tracked blocks.
    pub fn with_capacity(capacity: usize) -> Self {
        MigratoryDetector {
            state: fx_map_with_capacity(capacity),
        }
    }

    /// Records a request the home is about to process and returns whether
    /// a read should be upgraded to an exclusive grant. `effective_kind`
    /// should be what the requester will effectively receive (reads that
    /// get upgraded count as writes for subsequent pattern detection).
    pub fn observe(&mut self, addr: BlockAddr, requester: NodeId, kind: AccessKind) -> bool {
        let entry = self.state.entry(addr).or_insert(MigState {
            last: None,
            migratory: false,
        });
        match kind {
            AccessKind::Write => {
                if let Some((prev_node, AccessKind::Read)) = entry.last {
                    if prev_node == requester {
                        entry.migratory = true;
                    }
                }
                entry.last = Some((requester, AccessKind::Write));
                false
            }
            AccessKind::Read => {
                if entry.migratory {
                    // Upgrade to exclusive; record as a write so the chain
                    // is not broken by the next processor's read.
                    entry.last = Some((requester, AccessKind::Write));
                    true
                } else {
                    if let Some((_, AccessKind::Read)) = entry.last {
                        entry.migratory = false;
                    }
                    entry.last = Some((requester, AccessKind::Read));
                    false
                }
            }
        }
    }

    /// Whether `addr` is currently classified migratory.
    pub fn is_migratory(&self, addr: BlockAddr) -> bool {
        self.state.get(&addr).is_some_and(|s| s.migratory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }
    fn p(n: u16) -> NodeId {
        NodeId::new(n)
    }

    #[test]
    fn latency_estimator_tracks() {
        let mut e = LatencyEstimator::new(100.0);
        for _ in 0..100 {
            e.record(300);
        }
        assert!((e.average() - 300.0).abs() < 5.0);
    }

    #[test]
    fn detects_read_write_pair() {
        let mut d = MigratoryDetector::new();
        assert!(!d.observe(a(1), p(0), AccessKind::Read));
        assert!(!d.observe(a(1), p(0), AccessKind::Write));
        assert!(d.is_migratory(a(1)));
        // Next processor's read is upgraded.
        assert!(d.observe(a(1), p(1), AccessKind::Read));
        // And the chain continues to a third processor.
        assert!(d.observe(a(1), p(2), AccessKind::Read));
    }

    #[test]
    fn different_processors_do_not_trigger() {
        let mut d = MigratoryDetector::new();
        d.observe(a(1), p(0), AccessKind::Read);
        d.observe(a(1), p(1), AccessKind::Write);
        assert!(!d.is_migratory(a(1)), "read and write by different nodes");
    }

    #[test]
    fn two_reads_break_migratory() {
        let mut d = MigratoryDetector::new();
        d.observe(a(1), p(0), AccessKind::Read);
        d.observe(a(1), p(0), AccessKind::Write);
        assert!(d.is_migratory(a(1)));
        // An upgraded read counts as a write, so break the pattern with a
        // block that was never migratory.
        let mut d2 = MigratoryDetector::new();
        d2.observe(a(2), p(0), AccessKind::Read);
        d2.observe(a(2), p(1), AccessKind::Read);
        d2.observe(a(2), p(1), AccessKind::Write); // prev read was same node? no: p1 read then p1 write
        assert!(d2.is_migratory(a(2)));
    }

    #[test]
    fn blocks_are_independent() {
        let mut d = MigratoryDetector::new();
        d.observe(a(1), p(0), AccessKind::Read);
        d.observe(a(1), p(0), AccessKind::Write);
        assert!(d.is_migratory(a(1)));
        assert!(!d.is_migratory(a(2)));
        assert!(!d.observe(a(2), p(1), AccessKind::Read));
    }
}
