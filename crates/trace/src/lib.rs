//! The `.ptrc` binary trace format: record and replay per-core access
//! streams.
//!
//! A trace captures exactly what a workload generator fed the simulator —
//! every core's sequence of `(block, read/write, think)` operations — plus
//! the metadata needed to rebuild the identical run (label, root seed,
//! node count, table-sizing hint). Replaying a trace through
//! [`WorkloadSpec::Trace`](patchsim_workload::WorkloadSpec::Trace)
//! reproduces the recorded run's `RunResult` bit-for-bit, including under
//! an active fault schedule, because the replay reuses the recorded seed
//! and nothing outside the workload stream differs.
//!
//! # Format (version 1)
//!
//! All multi-byte integers are little-endian; `varint` is LEB128.
//!
//! ```text
//! header:
//!   magic          4 bytes   "PTRC"
//!   version        u16       currently 1
//!   num_nodes      u16
//!   seed           u64       root seed of the recorded run
//!   content_hash   u64       FxHash of every body byte
//!   working_set    u64       table-sizing hint of the recording run
//!   label_len      u8
//!   label          label_len bytes of UTF-8
//! body (one stream per core, cores 0..num_nodes in order):
//!   count          varint    items in this core's stream
//!   item × count:
//!     addr_delta   varint    zigzag(block - previous block, wrapping)
//!     op           varint    think_cycles << 1 | is_write
//! ```
//!
//! Delta-plus-zigzag keeps hot-set traffic to 2–3 bytes per item.
//! Decoding never panics on malformed input: every failure mode —
//! truncation, a bad magic, an unknown version, a body that does not
//! match the header's content hash — surfaces as a [`TraceError`].
//!
//! Compatibility rule: readers reject any version they do not know
//! (there is no silent best-effort parse); future versions may only
//! append header fields after `label`, so older fields never move.
//!
//! # Examples
//!
//! ```
//! use patchsim_noc::NodeId;
//! use patchsim_mem::{AccessKind, BlockAddr};
//! use patchsim_trace::{TraceReader, TraceWriter};
//! use patchsim_workload::WorkItem;
//!
//! let mut w = TraceWriter::new("demo", 42, 2, 64);
//! w.record(NodeId::new(0), WorkItem {
//!     addr: BlockAddr::new(7),
//!     kind: AccessKind::Write,
//!     think_cycles: 3,
//! });
//! let bytes = patchsim_trace::encode(w.data());
//! let back = TraceReader::decode(&bytes).unwrap();
//! assert_eq!(&back, w.data());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hash::Hasher;
use std::io::{Read, Write};
use std::path::Path;

use patchsim_kernel::collections::FxHasher;
use patchsim_mem::{AccessKind, BlockAddr};
use patchsim_noc::NodeId;
use patchsim_workload::{TraceData, WorkItem};

/// The four magic bytes opening every trace file.
pub const MAGIC: [u8; 4] = *b"PTRC";

/// The format version this crate writes.
pub const VERSION: u16 = 1;

/// Why a trace failed to load. Malformed input is always an error,
/// never a panic.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The input ended before the structure it promised was complete.
    Truncated {
        /// What the decoder was in the middle of reading.
        context: &'static str,
    },
    /// The file does not start with [`MAGIC`] — not a trace at all.
    BadMagic,
    /// The file's format version is one this reader does not know.
    UnsupportedVersion(u16),
    /// The body does not hash to the header's `content_hash`: the file
    /// was corrupted or hand-edited.
    HashMismatch {
        /// The hash recorded in the header.
        expected: u64,
        /// The hash of the body as read.
        actual: u64,
    },
    /// The workload label is not valid UTF-8.
    BadLabel,
    /// A varint ran past 10 bytes — not a value this format ever writes.
    VarintOverflow,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Truncated { context } => {
                write!(f, "trace truncated while reading {context}")
            }
            TraceError::BadMagic => write!(f, "not a trace file (missing PTRC magic)"),
            TraceError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported trace format version {v} (this reader knows {VERSION})"
                )
            }
            TraceError::HashMismatch { expected, actual } => write!(
                f,
                "trace body corrupt: content hash {actual:#018x} != recorded {expected:#018x}"
            ),
            TraceError::BadLabel => write!(f, "trace label is not valid UTF-8"),
            TraceError::VarintOverflow => write!(f, "trace varint longer than 10 bytes"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TraceError {
    fn from(e: std::io::Error) -> Self {
        TraceError::Io(e)
    }
}

/// Records per-core [`WorkItem`] streams as a run executes.
///
/// The writer is just an in-memory [`TraceData`] under construction; call
/// [`write_path`](TraceWriter::write_path) (or [`encode`]) when the run
/// finishes.
#[derive(Debug)]
pub struct TraceWriter {
    data: TraceData,
}

impl TraceWriter {
    /// Starts an empty trace for a `num_nodes`-core run.
    pub fn new(label: &str, seed: u64, num_nodes: u16, working_set_blocks: u64) -> Self {
        TraceWriter {
            data: TraceData::empty(label, seed, num_nodes, working_set_blocks),
        }
    }

    /// Appends one item to `node`'s stream. Call in issue order — the
    /// stream order *is* the replay order.
    ///
    /// # Panics
    ///
    /// Panics if `node` is outside the recorded system.
    pub fn record(&mut self, node: NodeId, item: WorkItem) {
        self.data.streams[node.raw() as usize].push(item);
    }

    /// The trace recorded so far.
    pub fn data(&self) -> &TraceData {
        &self.data
    }

    /// Consumes the writer, returning the finished trace.
    pub fn finish(self) -> TraceData {
        self.data
    }

    /// Encodes the trace and writes it to `path`, returning the number
    /// of bytes written.
    pub fn write_path(&self, path: &Path) -> Result<u64, TraceError> {
        write_path(&self.data, path)
    }
}

/// Loads traces written by [`TraceWriter`].
pub struct TraceReader;

impl TraceReader {
    /// Reads and decodes the trace at `path`.
    pub fn read_path(path: &Path) -> Result<TraceData, TraceError> {
        let mut bytes = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::decode(&bytes)
    }

    /// Decodes a trace from its wire bytes.
    pub fn decode(bytes: &[u8]) -> Result<TraceData, TraceError> {
        decode(bytes)
    }
}

/// Encodes the trace and writes it to `path`, returning the byte count.
pub fn write_path(data: &TraceData, path: &Path) -> Result<u64, TraceError> {
    let bytes = encode(data);
    let mut file = std::fs::File::create(path)?;
    file.write_all(&bytes)?;
    Ok(bytes.len() as u64)
}

/// Serializes a trace to the version-1 wire format.
pub fn encode(data: &TraceData) -> Vec<u8> {
    let mut body = Vec::new();
    for stream in &data.streams {
        push_varint(&mut body, stream.len() as u64);
        let mut prev = 0u64;
        for item in stream {
            let delta = item.addr.raw().wrapping_sub(prev) as i64;
            push_varint(&mut body, zigzag(delta));
            push_varint(
                &mut body,
                item.think_cycles << 1 | item.kind.is_write() as u64,
            );
            prev = item.addr.raw();
        }
    }
    let mut hasher = FxHasher::default();
    hasher.write(&body);
    let label = data.label.as_bytes();
    let label_len = label.len().min(u8::MAX as usize);

    let mut out = Vec::with_capacity(33 + label_len + body.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&data.num_nodes.to_le_bytes());
    out.extend_from_slice(&data.seed.to_le_bytes());
    out.extend_from_slice(&hasher.finish().to_le_bytes());
    out.extend_from_slice(&data.working_set_blocks.to_le_bytes());
    out.push(label_len as u8);
    out.extend_from_slice(&label[..label_len]);
    out.extend_from_slice(&body);
    out
}

/// Deserializes a version-1 trace, validating magic, version, and the
/// body's content hash.
pub fn decode(bytes: &[u8]) -> Result<TraceData, TraceError> {
    let mut cur = Cursor { buf: bytes, pos: 0 };
    if cur.take(4, "magic")? != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = cur.u16("version")?;
    if version != VERSION {
        return Err(TraceError::UnsupportedVersion(version));
    }
    let num_nodes = cur.u16("node count")?;
    let seed = cur.u64("seed")?;
    let content_hash = cur.u64("content hash")?;
    let working_set = cur.u64("working set")?;
    let label_len = cur.u8("label length")? as usize;
    let label = std::str::from_utf8(cur.take(label_len, "label")?)
        .map_err(|_| TraceError::BadLabel)?
        .to_string();

    let body = &bytes[cur.pos..];
    let mut hasher = FxHasher::default();
    hasher.write(body);
    let actual = hasher.finish();
    if actual != content_hash {
        return Err(TraceError::HashMismatch {
            expected: content_hash,
            actual,
        });
    }

    let mut data = TraceData::empty(&label, seed, num_nodes, working_set);
    for stream in &mut data.streams {
        let count = cur.varint("stream length")?;
        // Cap the pre-allocation: a lying length in a truncated file
        // fails with `Truncated` below instead of exhausting memory here.
        stream.reserve(count.min(1 << 20) as usize);
        let mut prev = 0u64;
        for _ in 0..count {
            let addr = prev.wrapping_add(unzigzag(cur.varint("address delta")?) as u64);
            let op = cur.varint("op word")?;
            stream.push(WorkItem {
                addr: BlockAddr::new(addr),
                kind: if op & 1 == 1 {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                think_cycles: op >> 1,
            });
            prev = addr;
        }
    }
    Ok(data)
}

/// Byte cursor with typed little-endian reads; every out-of-bounds read
/// is a [`TraceError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.buf.len())
            .ok_or(TraceError::Truncated { context })?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self, context: &'static str) -> Result<u8, TraceError> {
        Ok(self.take(1, context)?[0])
    }

    fn u16(&mut self, context: &'static str) -> Result<u16, TraceError> {
        Ok(u16::from_le_bytes(
            self.take(2, context)?.try_into().unwrap(),
        ))
    }

    fn u64(&mut self, context: &'static str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            self.take(8, context)?.try_into().unwrap(),
        ))
    }

    fn varint(&mut self, context: &'static str) -> Result<u64, TraceError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8(context)?;
            value |= ((byte & 0x7f) as u64) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(TraceError::VarintOverflow)
    }
}

/// Appends `value` as LEB128.
fn push_varint(out: &mut Vec<u8>, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Maps signed deltas to small unsigned varints: 0, -1, 1, -2, …
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_kernel::SimRng;

    fn random_trace(seed: u64, nodes: u16, items_per_node: usize) -> TraceData {
        let mut rng = SimRng::from_seed(seed);
        let mut w = TraceWriter::new("prop", seed, nodes, 4096);
        for node in 0..nodes {
            for _ in 0..items_per_node {
                w.record(
                    NodeId::new(node),
                    WorkItem {
                        addr: BlockAddr::new(rng.below(1 << 40)),
                        kind: if rng.chance(0.3) {
                            AccessKind::Write
                        } else {
                            AccessKind::Read
                        },
                        think_cycles: rng.below(100),
                    },
                );
            }
        }
        w.finish()
    }

    #[test]
    fn round_trip_preserves_every_stream_exactly() {
        // Seeded property test: many shapes, wide address range.
        for (seed, nodes, items) in [(1, 1, 0), (2, 2, 1), (3, 8, 257), (4, 16, 64), (5, 3, 1000)] {
            let original = random_trace(seed, nodes, items);
            let decoded = decode(&encode(&original)).unwrap();
            assert_eq!(decoded, original, "seed {seed}");
        }
    }

    #[test]
    fn round_trip_handles_extreme_values() {
        let mut w = TraceWriter::new("edge", u64::MAX, 2, u64::MAX);
        for addr in [0, u64::MAX, 1, u64::MAX / 2, 0] {
            w.record(
                NodeId::new(1),
                WorkItem {
                    addr: BlockAddr::new(addr),
                    kind: AccessKind::Write,
                    think_cycles: u64::MAX >> 1,
                },
            );
        }
        let original = w.finish();
        assert_eq!(decode(&encode(&original)).unwrap(), original);
    }

    #[test]
    fn every_truncation_point_errors_instead_of_panicking() {
        let bytes = encode(&random_trace(7, 4, 50));
        for len in 0..bytes.len() {
            let err = decode(&bytes[..len]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. } | TraceError::HashMismatch { .. }
                ),
                "prefix of {len} bytes: unexpected {err}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = encode(&random_trace(8, 1, 3));
        bytes[0] = b'X';
        assert!(matches!(decode(&bytes).unwrap_err(), TraceError::BadMagic));
    }

    #[test]
    fn unknown_version_is_rejected_with_the_version() {
        let mut bytes = encode(&random_trace(9, 1, 3));
        bytes[4] = 0x2a;
        bytes[5] = 0;
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, TraceError::UnsupportedVersion(42)), "{err}");
        assert!(err.to_string().contains("version 42"));
    }

    #[test]
    fn corrupt_body_fails_the_content_hash() {
        let bytes = encode(&random_trace(10, 2, 40));
        // Header is 33 fixed bytes + the 4-byte "prop" label; body follows.
        let body_start = 37;
        let last = bytes.len() - 1;
        for flip in [body_start, (body_start + last) / 2, last] {
            let mut bad = bytes.clone();
            bad[flip] ^= 0x40;
            let err = decode(&bad).unwrap_err();
            assert!(
                matches!(err, TraceError::HashMismatch { .. }),
                "flip at {flip}: unexpected {err}"
            );
        }
    }

    #[test]
    fn corrupt_header_label_is_rejected() {
        let mut bytes = encode(&random_trace(11, 1, 2));
        // label "prop" starts at offset 33; 0xff alone is invalid UTF-8.
        bytes[33] = 0xff;
        assert!(matches!(decode(&bytes).unwrap_err(), TraceError::BadLabel));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("patchsim-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.ptrc");
        let original = random_trace(12, 4, 100);
        let written = write_path(&original, &path).unwrap();
        assert!(written > 33);
        assert_eq!(TraceReader::read_path(&path).unwrap(), original);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error_not_a_panic() {
        let err = TraceReader::read_path(Path::new("/nonexistent/x.ptrc")).unwrap_err();
        assert!(matches!(err, TraceError::Io(_)));
        assert!(err.to_string().contains("i/o"));
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn varint_round_trips_and_is_compact() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            push_varint(&mut buf, v);
            let mut cur = Cursor { buf: &buf, pos: 0 };
            assert_eq!(cur.varint("test").unwrap(), v);
            assert_eq!(cur.pos, buf.len());
        }
        let mut small = Vec::new();
        push_varint(&mut small, 100);
        assert_eq!(small.len(), 1);
    }

    #[test]
    fn delta_encoding_keeps_hot_traffic_compact() {
        // 1000 accesses inside a 64-block hot set: ~2 body bytes each.
        let mut rng = SimRng::from_seed(13);
        let mut w = TraceWriter::new("hot", 1, 1, 64);
        for _ in 0..1000 {
            w.record(
                NodeId::new(0),
                WorkItem {
                    addr: BlockAddr::new(rng.below(64)),
                    kind: AccessKind::Read,
                    think_cycles: rng.below(20),
                },
            );
        }
        let bytes = encode(w.data());
        assert!(
            bytes.len() < 33 + 3 + 2 + 1000 * 3,
            "hot-set trace should stay ~2 bytes/item, got {} total",
            bytes.len()
        );
    }
}
