//! Summaries of repeated runs: means, confidence intervals, and
//! figure-style formatting helpers.

use patchsim_kernel::stats::ConfidenceInterval;

use crate::{RunResult, TrafficClass};

/// Statistics over a set of perturbed runs of one configuration.
///
/// # Examples
///
/// ```
/// use patchsim::{run_many, summarize, ProtocolKind, SimConfig, WorkloadSpec};
///
/// let cfg = SimConfig::new(ProtocolKind::Directory, 4)
///     .with_workload(WorkloadSpec::Microbenchmark {
///         table_blocks: 64,
///         write_frac: 0.3,
///         think_mean: 5,
///     })
///     .with_ops_per_core(50);
/// let summary = summarize(&run_many(&cfg, 3));
/// assert!(summary.runtime.mean > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Runtime in cycles, with 95% CI over the runs.
    pub runtime: ConfidenceInterval,
    /// Interconnect bytes per demand miss, with 95% CI.
    pub bytes_per_miss: ConfidenceInterval,
    /// Mean measured miss latency across runs.
    pub miss_latency: ConfidenceInterval,
    /// Per-class mean bytes per miss, in [`TrafficClass::ALL`] order.
    pub class_bytes_per_miss: [f64; 8],
    /// Mean number of best-effort packets dropped per run.
    pub dropped_packets: f64,
    /// The individual runs.
    pub runs: Vec<RunResult>,
}

impl RunSummary {
    /// This summary's runtime normalized to `baseline`'s (the y-axis of
    /// the paper's runtime figures: < 1.0 is faster than the baseline).
    pub fn runtime_normalized_to(&self, baseline: &RunSummary) -> f64 {
        self.runtime.mean / baseline.runtime.mean
    }

    /// This summary's traffic normalized to `baseline`'s.
    pub fn traffic_normalized_to(&self, baseline: &RunSummary) -> f64 {
        self.bytes_per_miss.mean / baseline.bytes_per_miss.mean
    }

    /// Mean bytes per miss for one traffic class.
    pub fn class_mean(&self, class: TrafficClass) -> f64 {
        let idx = TrafficClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("class in ALL");
        self.class_bytes_per_miss[idx]
    }
}

/// Aggregates a set of runs (typically from [`crate::run_many`]) into a
/// [`RunSummary`].
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn summarize(runs: &[RunResult]) -> RunSummary {
    assert!(!runs.is_empty(), "cannot summarize zero runs");
    let runtime = ConfidenceInterval::from_samples(
        &runs
            .iter()
            .map(|r| r.runtime_cycles as f64)
            .collect::<Vec<_>>(),
    );
    let bytes_per_miss = ConfidenceInterval::from_samples(
        &runs.iter().map(|r| r.bytes_per_miss()).collect::<Vec<_>>(),
    );
    let miss_latency = ConfidenceInterval::from_samples(
        &runs.iter().map(|r| r.miss_latency_mean).collect::<Vec<_>>(),
    );
    let mut class_bytes_per_miss = [0.0f64; 8];
    for (i, class) in TrafficClass::ALL.iter().enumerate() {
        class_bytes_per_miss[i] = runs
            .iter()
            .map(|r| r.class_bytes_per_miss(*class))
            .sum::<f64>()
            / runs.len() as f64;
    }
    let dropped_packets = runs
        .iter()
        .map(|r| r.traffic.dropped_packets() as f64)
        .sum::<f64>()
        / runs.len() as f64;
    RunSummary {
        protocol: runs[0].protocol,
        runtime,
        bytes_per_miss,
        miss_latency,
        class_bytes_per_miss,
        dropped_packets,
        runs: runs.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_many, ProtocolKind, SimConfig, WorkloadSpec};

    fn runs() -> Vec<RunResult> {
        let cfg = SimConfig::new(ProtocolKind::Directory, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 32,
                write_frac: 0.3,
                think_mean: 2,
            })
            .with_ops_per_core(50);
        run_many(&cfg, 3)
    }

    #[test]
    fn summary_aggregates() {
        let summary = summarize(&runs());
        assert_eq!(summary.protocol, "Directory");
        assert!(summary.runtime.mean > 0.0);
        assert!(summary.bytes_per_miss.mean > 0.0);
        assert_eq!(summary.runs.len(), 3);
        // Data traffic dominates a miss-heavy microbenchmark.
        assert!(summary.class_mean(TrafficClass::Data) > 0.0);
    }

    #[test]
    fn normalization_is_relative() {
        let summary = summarize(&runs());
        let ratio = summary.runtime_normalized_to(&summary);
        assert!((ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_summary_panics() {
        summarize(&[]);
    }
}
