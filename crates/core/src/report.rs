//! Summaries of repeated runs: means, confidence intervals, percentiles,
//! and figure-style formatting helpers.

use std::ops::Index;

use patchsim_kernel::stats::{ConfidenceInterval, Histogram};

use crate::telemetry::SpanStats;
use crate::{RunResult, TrafficClass};

/// Per-class mean bytes per miss, with one slot per [`TrafficClass::ALL`]
/// entry — the representation is tied to the class list, so adding a
/// traffic class cannot silently truncate the breakdown.
///
/// # Examples
///
/// ```
/// use patchsim::{ClassBytes, TrafficClass};
///
/// let cb = ClassBytes::from_fn(|class| {
///     if class == TrafficClass::Data { 72.0 } else { 0.0 }
/// });
/// assert_eq!(cb[TrafficClass::Data], 72.0);
/// assert_eq!(cb.iter().filter(|(_, v)| *v > 0.0).count(), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ClassBytes([f64; TrafficClass::ALL.len()]);

impl ClassBytes {
    /// Builds a breakdown by evaluating `f` for every traffic class.
    pub fn from_fn(mut f: impl FnMut(TrafficClass) -> f64) -> Self {
        let mut values = [0.0; TrafficClass::ALL.len()];
        for (slot, class) in values.iter_mut().zip(TrafficClass::ALL) {
            *slot = f(class);
        }
        ClassBytes(values)
    }

    /// The value for one traffic class.
    pub fn get(&self, class: TrafficClass) -> f64 {
        self[class]
    }

    /// Iterates `(class, value)` pairs in [`TrafficClass::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (TrafficClass, f64)> + '_ {
        TrafficClass::ALL.into_iter().zip(self.0)
    }

    /// Sum across all classes.
    pub fn total(&self) -> f64 {
        self.0.iter().sum()
    }
}

impl Index<TrafficClass> for ClassBytes {
    type Output = f64;

    fn index(&self, class: TrafficClass) -> &f64 {
        let idx = TrafficClass::ALL
            .iter()
            .position(|c| *c == class)
            .expect("every class is in ALL");
        &self.0[idx]
    }
}

/// Miss-latency percentiles pooled over every run of a configuration, in
/// cycles. Derived from the power-of-two bucketed [`Histogram`] each run
/// already collects, so values are exact to within one octave (p-th
/// sample's bucket lower bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyPercentiles {
    /// Median miss latency.
    pub p50: u64,
    /// 95th-percentile miss latency.
    pub p95: u64,
    /// 99th-percentile miss latency.
    pub p99: u64,
}

impl LatencyPercentiles {
    /// Extracts the percentiles from a latency histogram.
    pub fn from_histogram(h: &Histogram) -> Self {
        LatencyPercentiles {
            p50: h.percentile(0.50),
            p95: h.percentile(0.95),
            p99: h.percentile(0.99),
        }
    }
}

/// Saturation metrics pooled over every run of an open-loop
/// configuration. Present on a [`RunSummary`] only when **all** of its
/// runs carried [`crate::OpenLoopStats`] — closed-loop sweeps are
/// unaffected.
///
/// Rates are per kilocycle of measured runtime so the offered/achieved
/// comparison reads directly: an unsaturated cell has
/// `goodput_per_kcycle` tracking `offered_per_kcycle`; past the knee
/// goodput flattens, `drop_pct` rises, and `sojourn` grows without
/// bound while the issue→completion miss latency stays flat.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpenLoopSummary {
    /// Arrival→completion sojourn percentiles pooled over all runs.
    pub sojourn: LatencyPercentiles,
    /// Measured arrivals per 1000 cycles of measured runtime (the
    /// offered load actually presented, mean across runs).
    pub offered_per_kcycle: f64,
    /// Measured completions per 1000 cycles of measured runtime (the
    /// achieved goodput, mean across runs).
    pub goodput_per_kcycle: f64,
    /// Percentage of measured arrivals dropped by full backlogs.
    pub drop_pct: f64,
    /// Highest backlog depth any core reached in any run.
    pub backlog_hwm: u64,
    /// Mean cycles per run that arrival processes spent stalled under
    /// the `block` overload policy.
    pub blocked_cycles: f64,
}

/// Miss-lifecycle phase means pooled over every run of a configuration,
/// in cycles. Present on a [`RunSummary`] only when **all** of its runs
/// collected spans (`telemetry.spans`); the three protocol phases sum to
/// the end-to-end mean miss latency by construction.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SpanSummary {
    /// Mean open-loop arrival→issue wait (0 for closed-loop runs).
    pub queue_wait_mean: f64,
    /// Mean issue→first-response time.
    pub network_mean: f64,
    /// Mean first-response→ordering-point time.
    pub home_mean: f64,
    /// Mean ordering-point→completion time.
    pub token_wait_mean: f64,
}

impl SpanSummary {
    /// Extracts phase means from pooled span histograms.
    pub fn from_spans(spans: &SpanStats) -> Self {
        SpanSummary {
            queue_wait_mean: spans.queue_wait.mean(),
            network_mean: spans.network.mean(),
            home_mean: spans.home.mean(),
            token_wait_mean: spans.token_wait.mean(),
        }
    }
}

/// Statistics over a set of perturbed runs of one configuration.
///
/// # Examples
///
/// ```
/// use patchsim::{run_many, summarize, ProtocolKind, SimConfig, WorkloadSpec};
///
/// let cfg = SimConfig::new(ProtocolKind::Directory, 4)
///     .with_workload(WorkloadSpec::Microbenchmark {
///         table_blocks: 64,
///         write_frac: 0.3,
///         think_mean: 5,
///     })
///     .with_ops_per_core(50);
/// let summary = summarize(&run_many(&cfg, 3));
/// assert!(summary.runtime.mean > 0.0);
/// assert!(summary.miss_latency_percentiles.p99 >= summary.miss_latency_percentiles.p50);
/// ```
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Runtime in cycles, with 95% CI over the runs.
    pub runtime: ConfidenceInterval,
    /// Interconnect bytes per demand miss, with 95% CI.
    pub bytes_per_miss: ConfidenceInterval,
    /// Mean measured miss latency across runs.
    pub miss_latency: ConfidenceInterval,
    /// Miss-latency percentiles pooled over all runs.
    pub miss_latency_percentiles: LatencyPercentiles,
    /// Per-class mean bytes per miss.
    pub class_bytes_per_miss: ClassBytes,
    /// Mean number of best-effort packets dropped per run.
    pub dropped_packets: f64,
    /// Open-loop saturation metrics — `Some` iff every run was
    /// open-loop.
    pub open_loop: Option<OpenLoopSummary>,
    /// Miss-lifecycle phase means — `Some` iff every run collected
    /// spans.
    pub spans: Option<SpanSummary>,
    /// The individual runs.
    pub runs: Vec<RunResult>,
}

impl RunSummary {
    /// This summary's runtime normalized to `baseline`'s (the y-axis of
    /// the paper's runtime figures: < 1.0 is faster than the baseline).
    pub fn runtime_normalized_to(&self, baseline: &RunSummary) -> f64 {
        self.runtime.mean / baseline.runtime.mean
    }

    /// This summary's traffic normalized to `baseline`'s.
    pub fn traffic_normalized_to(&self, baseline: &RunSummary) -> f64 {
        self.bytes_per_miss.mean / baseline.bytes_per_miss.mean
    }

    /// Mean bytes per miss for one traffic class.
    pub fn class_mean(&self, class: TrafficClass) -> f64 {
        self.class_bytes_per_miss[class]
    }
}

/// Aggregates a set of runs (typically from [`crate::run_many`]) into a
/// [`RunSummary`].
///
/// # Panics
///
/// Panics if `runs` is empty.
pub fn summarize(runs: &[RunResult]) -> RunSummary {
    assert!(!runs.is_empty(), "cannot summarize zero runs");
    let runtime = ConfidenceInterval::from_samples(
        &runs
            .iter()
            .map(|r| r.runtime_cycles as f64)
            .collect::<Vec<_>>(),
    );
    let bytes_per_miss = ConfidenceInterval::from_samples(
        &runs.iter().map(|r| r.bytes_per_miss()).collect::<Vec<_>>(),
    );
    let miss_latency = ConfidenceInterval::from_samples(
        &runs.iter().map(|r| r.miss_latency_mean).collect::<Vec<_>>(),
    );
    let mut pooled_latency = Histogram::new();
    for r in runs {
        pooled_latency.merge(&r.miss_latency);
    }
    let class_bytes_per_miss = ClassBytes::from_fn(|class| {
        runs.iter()
            .map(|r| r.class_bytes_per_miss(class))
            .sum::<f64>()
            / runs.len() as f64
    });
    let dropped_packets = runs
        .iter()
        .map(|r| r.traffic.dropped_packets() as f64)
        .sum::<f64>()
        / runs.len() as f64;
    let open_loop = if runs.iter().all(|r| r.open_loop.is_some()) {
        let n = runs.len() as f64;
        let mut sojourn = Histogram::new();
        let mut backlog_hwm = 0;
        let (mut arrivals, mut drops, mut blocked) = (0u64, 0u64, 0u64);
        let (mut offered, mut goodput) = (0.0, 0.0);
        for r in runs {
            let ol = r.open_loop.as_ref().expect("checked above");
            sojourn.merge(&ol.sojourn);
            backlog_hwm = backlog_hwm.max(ol.backlog_hwm);
            arrivals += ol.measured_arrivals;
            drops += ol.measured_drops;
            blocked += ol.blocked_cycles;
            let kcycles = r.runtime_cycles.max(1) as f64 / 1000.0;
            offered += ol.measured_arrivals as f64 / kcycles;
            goodput += r.ops_completed as f64 / kcycles;
        }
        Some(OpenLoopSummary {
            sojourn: LatencyPercentiles::from_histogram(&sojourn),
            offered_per_kcycle: offered / n,
            goodput_per_kcycle: goodput / n,
            drop_pct: if arrivals > 0 {
                100.0 * drops as f64 / arrivals as f64
            } else {
                0.0
            },
            backlog_hwm,
            blocked_cycles: blocked as f64 / n,
        })
    } else {
        None
    };
    let spans = if runs.iter().all(|r| r.spans.is_some()) {
        let mut pooled = SpanStats::default();
        for r in runs {
            pooled.merge(r.spans.as_ref().expect("checked above"));
        }
        Some(SpanSummary::from_spans(&pooled))
    } else {
        None
    };
    RunSummary {
        protocol: runs[0].protocol,
        runtime,
        bytes_per_miss,
        miss_latency,
        miss_latency_percentiles: LatencyPercentiles::from_histogram(&pooled_latency),
        class_bytes_per_miss,
        dropped_packets,
        open_loop,
        spans,
        runs: runs.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{run_many, ProtocolKind, SimConfig, WorkloadSpec};

    fn runs() -> Vec<RunResult> {
        let cfg = SimConfig::new(ProtocolKind::Directory, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 32,
                write_frac: 0.3,
                think_mean: 2,
            })
            .with_ops_per_core(50);
        run_many(&cfg, 3)
    }

    #[test]
    fn summary_aggregates() {
        let summary = summarize(&runs());
        assert_eq!(summary.protocol, "Directory");
        assert!(summary.runtime.mean > 0.0);
        assert!(summary.bytes_per_miss.mean > 0.0);
        assert_eq!(summary.runs.len(), 3);
        // Data traffic dominates a miss-heavy microbenchmark.
        assert!(summary.class_mean(TrafficClass::Data) > 0.0);
        // The per-class breakdown sums to the total.
        let total: f64 = summary.class_bytes_per_miss.total();
        assert!((total - summary.bytes_per_miss.mean).abs() / total < 1e-9);
    }

    #[test]
    fn percentiles_are_ordered_and_bounded() {
        let summary = summarize(&runs());
        let p = summary.miss_latency_percentiles;
        assert!(p.p50 > 0);
        assert!(p.p50 <= p.p95);
        assert!(p.p95 <= p.p99);
        let max = summary.runs.iter().map(|r| r.miss_latency.max()).max();
        assert!(p.p99 <= max.unwrap());
    }

    #[test]
    fn normalization_is_relative() {
        let summary = summarize(&runs());
        let ratio = summary.runtime_normalized_to(&summary);
        assert!((ratio - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "zero runs")]
    fn empty_summary_panics() {
        summarize(&[]);
    }
}
