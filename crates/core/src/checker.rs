//! Runtime invariant checkers: token conservation and coherence.

use patchsim_kernel::collections::FxHashMap;

use patchsim_kernel::Cycle;
use patchsim_mem::{AccessKind, BlockAddr, TokenSet};
use patchsim_protocol::{Controller, Msg};

/// Verifies the single-writer/read-latest property using logical block
/// versions.
///
/// Every write produces version `v+1` from the version it observed; the
/// checker asserts the per-block write sequence is strictly `1, 2, 3, …`
/// (two racing writers that both observed `v` would both produce `v+1`,
/// tripping the assertion) and that every read returns the latest written
/// version. A read completing in the very cycle of the latest write may
/// legally observe the version just overwritten — the sub-cycle event
/// order is a simulator artifact — so that single case is tolerated.
///
/// # Examples
///
/// ```
/// use patchsim::{AccessKind, BlockAddr, CoherenceChecker, Cycle};
///
/// let mut c = CoherenceChecker::new();
/// let a = BlockAddr::new(7);
/// c.check(a, AccessKind::Write, 1, Cycle::new(10));
/// c.check(a, AccessKind::Read, 1, Cycle::new(20));
/// ```
#[derive(Debug, Default)]
pub struct CoherenceChecker {
    state: FxHashMap<BlockAddr, BlockVersion>,
    checks: u64,
}

#[derive(Debug, Clone, Copy)]
struct BlockVersion {
    latest: u64,
    written_at: Cycle,
}

impl CoherenceChecker {
    /// Creates a checker with every block at version 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Verifies one completed access.
    ///
    /// # Panics
    ///
    /// Panics if the access violates coherence: a write out of sequence,
    /// or a read observing a stale version.
    pub fn check(&mut self, addr: BlockAddr, kind: AccessKind, version: u64, now: Cycle) {
        self.checks += 1;
        let entry = self.state.entry(addr).or_insert(BlockVersion {
            latest: 0,
            written_at: Cycle::ZERO,
        });
        match kind {
            AccessKind::Write => {
                assert_eq!(
                    version,
                    entry.latest + 1,
                    "coherence violation at {addr}: write produced v{version} but the \
                     last committed write was v{} — two writers held permission \
                     concurrently",
                    entry.latest
                );
                entry.latest = version;
                entry.written_at = now;
            }
            AccessKind::Read => {
                let ok = version == entry.latest
                    || (now == entry.written_at && version + 1 == entry.latest);
                assert!(
                    ok,
                    "coherence violation at {addr}: read observed v{version} at {now} \
                     but the latest write was v{} (at {})",
                    entry.latest, entry.written_at
                );
            }
        }
    }

    /// Number of accesses checked.
    pub fn checks_performed(&self) -> u64 {
        self.checks
    }
}

/// Audits token conservation (Table 1, Rule 1): for every block, the
/// tokens held across all nodes plus the tokens in flight must total
/// exactly `T`, with exactly one owner token.
#[derive(Debug)]
pub struct TokenAuditor {
    total: u32,
    /// Whether per-block in-flight state is maintained (required by
    /// [`TokenAuditor::audit`]). Coarse auditors track only the global
    /// net in-flight count — two integer ops per message instead of a
    /// hash-map update — for runs with per-event checking off.
    track_blocks: bool,
    /// Tokens currently in flight across all blocks.
    net_tokens: u64,
    in_flight: FxHashMap<BlockAddr, InFlight>,
    audits: u64,
}

#[derive(Debug, Default, Clone, Copy)]
struct InFlight {
    tokens: u64,
    owners: u32,
}

impl TokenAuditor {
    /// Creates an auditor for blocks with `total` tokens each.
    pub fn new(total: u32) -> Self {
        TokenAuditor {
            total,
            track_blocks: true,
            net_tokens: 0,
            in_flight: FxHashMap::default(),
            audits: 0,
        }
    }

    /// Creates a coarse auditor: no per-block state, only the global
    /// in-flight count needed by the end-of-run drain check. Used when
    /// per-event checking is off; [`TokenAuditor::audit`] must not be
    /// called on it.
    pub fn coarse(total: u32) -> Self {
        TokenAuditor {
            track_blocks: false,
            ..Self::new(total)
        }
    }

    /// Records a message entering the interconnect.
    #[inline]
    pub fn on_send(&mut self, msg: &Msg) {
        let tokens = msg.tokens();
        if tokens.is_empty() {
            return;
        }
        self.net_tokens += tokens.count() as u64;
        if self.track_blocks {
            let entry = self.in_flight.entry(msg.addr).or_default();
            entry.tokens += tokens.count() as u64;
            entry.owners += u32::from(tokens.has_owner());
        }
    }

    /// Records a message leaving the interconnect.
    ///
    /// # Panics
    ///
    /// Panics if more tokens arrive than were sent — a token was forged.
    /// (Coarse auditors detect only global forgery, not per-block.)
    #[inline]
    pub fn on_deliver(&mut self, msg: &Msg) {
        let tokens = msg.tokens();
        if tokens.is_empty() {
            return;
        }
        assert!(
            self.net_tokens >= tokens.count() as u64,
            "token forgery: more tokens delivered than sent for {}",
            msg.addr
        );
        self.net_tokens -= tokens.count() as u64;
        if self.track_blocks {
            let entry = self.in_flight.entry(msg.addr).or_default();
            assert!(
                entry.tokens >= tokens.count() as u64,
                "token forgery: more tokens delivered than sent for {}",
                msg.addr
            );
            entry.tokens -= tokens.count() as u64;
            entry.owners -= u32::from(tokens.has_owner());
        }
    }

    /// Verifies conservation for `addr` across `nodes`.
    ///
    /// # Panics
    ///
    /// Panics if tokens were created or destroyed, or the owner token
    /// duplicated or lost — or if this auditor was built with
    /// [`TokenAuditor::coarse`], which does not keep the per-block state
    /// an audit needs.
    pub fn audit(&mut self, addr: BlockAddr, nodes: &[Box<dyn Controller + Send>]) {
        assert!(
            self.track_blocks,
            "audit called on a coarse (checks-off) token auditor"
        );
        self.audits += 1;
        let mut held = 0u64;
        let mut owners = 0u32;
        for node in nodes {
            let Some(tokens) = node.held_tokens(addr) else {
                // Tokenless protocol: nothing to audit.
                return;
            };
            held += tokens.count() as u64;
            owners += u32::from(tokens.has_owner());
        }
        let flight = self.in_flight.get(&addr).copied().unwrap_or_default();
        assert_eq!(
            held + flight.tokens,
            self.total as u64,
            "token conservation violated for {addr}: {held} held + {} in flight != {}",
            flight.tokens,
            self.total
        );
        assert_eq!(
            owners + flight.owners,
            1,
            "owner token count for {addr} is {} (must be exactly 1)",
            owners + flight.owners
        );
    }

    /// Number of audits performed.
    pub fn audits_performed(&self) -> u64 {
        self.audits
    }

    /// Tokens currently in flight across all blocks, for end-of-run
    /// drain checks.
    pub fn tokens_in_flight(&self) -> u64 {
        debug_assert!(
            !self.track_blocks
                || self.net_tokens == self.in_flight.values().map(|f| f.tokens).sum::<u64>()
        );
        self.net_tokens
    }

    /// The sum of `TokenSet` holdings a protocol reports for `addr`; test
    /// helper mirroring the audit's gathering step.
    pub fn gather(addr: BlockAddr, nodes: &[Box<dyn Controller + Send>]) -> Option<TokenSet> {
        let mut total = TokenSet::empty();
        for node in nodes {
            total.merge(node.held_tokens(addr)?);
        }
        Some(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn write_sequence_must_increment() {
        let mut c = CoherenceChecker::new();
        c.check(a(1), AccessKind::Write, 1, Cycle::new(5));
        c.check(a(1), AccessKind::Write, 2, Cycle::new(9));
        assert_eq!(c.checks_performed(), 2);
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn duplicate_write_version_panics() {
        let mut c = CoherenceChecker::new();
        c.check(a(1), AccessKind::Write, 1, Cycle::new(5));
        c.check(a(1), AccessKind::Write, 1, Cycle::new(9));
    }

    #[test]
    fn read_sees_latest() {
        let mut c = CoherenceChecker::new();
        c.check(a(1), AccessKind::Write, 1, Cycle::new(5));
        c.check(a(1), AccessKind::Read, 1, Cycle::new(9));
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn stale_read_panics() {
        let mut c = CoherenceChecker::new();
        c.check(a(1), AccessKind::Write, 1, Cycle::new(5));
        c.check(a(1), AccessKind::Write, 2, Cycle::new(7));
        c.check(a(1), AccessKind::Read, 1, Cycle::new(9));
    }

    #[test]
    fn same_cycle_read_of_previous_version_tolerated() {
        let mut c = CoherenceChecker::new();
        c.check(a(1), AccessKind::Write, 1, Cycle::new(5));
        c.check(a(1), AccessKind::Write, 2, Cycle::new(7));
        // Read completing in the same cycle as the v2 write may see v1.
        c.check(a(1), AccessKind::Read, 1, Cycle::new(7));
    }

    #[test]
    fn reads_of_never_written_blocks_see_zero() {
        let mut c = CoherenceChecker::new();
        c.check(a(9), AccessKind::Read, 0, Cycle::new(1));
    }

    #[test]
    fn in_flight_accounting_balances() {
        use patchsim_mem::{OwnerStatus, TokenSet};
        use patchsim_noc::NodeId;
        use patchsim_protocol::MsgBody;

        let mut auditor = TokenAuditor::new(4);
        let msg = Msg::new(
            a(3),
            MsgBody::Ack {
                from: NodeId::new(0),
                serial: 0,
                tokens: TokenSet::full(2, OwnerStatus::Clean),
                activation: false,
            },
        );
        auditor.on_send(&msg);
        assert_eq!(auditor.tokens_in_flight(), 2);
        auditor.on_deliver(&msg);
        assert_eq!(auditor.tokens_in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "token forgery")]
    fn delivering_unsent_tokens_panics() {
        use patchsim_mem::TokenSet;
        use patchsim_noc::NodeId;
        use patchsim_protocol::MsgBody;

        let mut auditor = TokenAuditor::new(4);
        let msg = Msg::new(
            a(3),
            MsgBody::Ack {
                from: NodeId::new(0),
                serial: 0,
                tokens: TokenSet::plain(2),
                activation: false,
            },
        );
        auditor.on_deliver(&msg);
    }
}
