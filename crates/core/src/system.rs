//! System assembly and the simulation event loop.

use std::fmt;
use std::hash::Hasher;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use patchsim_kernel::collections::FxHasher;
use patchsim_kernel::stats::Histogram;
use patchsim_kernel::{streams, Cycle, EventQueue, SimRng};
use patchsim_noc::{Fabric, NocEvent, NodeId};
use patchsim_protocol::{
    build_controller, Completion, Controller, CoreResponse, MemOp, Msg, Outbox, ProtocolCounters,
    TimerKey,
};
use patchsim_trace::{TraceError, TraceWriter};
use patchsim_workload::Generator;

use crate::checker::{CoherenceChecker, TokenAuditor};
use crate::config::{CheckLevel, SimConfig};
use crate::{TrafficClass, TrafficStats};

#[derive(Debug)]
enum Event {
    Noc(NocEvent<Msg>),
    Timer {
        node: NodeId,
        key: TimerKey,
    },
    CoreIssue {
        node: NodeId,
    },
    /// Periodic starvation scan; only ever scheduled when
    /// `SimConfig::liveness_horizon` is set.
    Watchdog,
}

#[derive(Debug)]
struct CoreState {
    generator: Generator,
    /// The op picked by the generator, waiting out its think time.
    pending: Option<MemOp>,
    /// The op currently outstanding as a miss.
    outstanding: Option<MemOp>,
    /// When the outstanding miss was issued (watchdog bookkeeping).
    outstanding_since: Cycle,
    ops_done: u64,
    finished: bool,
}

/// An infrastructure failure from [`System::try_run`]: the simulation
/// could not produce (or finish publishing) a result for a reason that is
/// *not* a protocol bug. Protocol bugs — invariant violations, deadlock,
/// livelock — still panic, because they invalidate the simulation itself;
/// the experiment runner isolates those panics per cell instead.
#[derive(Debug)]
pub enum RunError {
    /// The run completed but its recorded trace (`record_trace`) could
    /// not be written.
    TraceWrite {
        /// The trace output path.
        path: PathBuf,
        /// The underlying encoder or filesystem error.
        source: TraceError,
    },
    /// The run exceeded its wall-clock budget before finishing.
    Timeout {
        /// The configured per-run wall-clock limit.
        limit: Duration,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TraceWrite { path, source } => {
                write!(f, "failed to write trace {}: {source}", path.display())
            }
            RunError::Timeout { limit } => {
                write!(f, "simulation exceeded its {limit:?} wall-clock budget")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::TraceWrite { source, .. } => Some(source),
            RunError::Timeout { .. } => None,
        }
    }
}

/// The measured outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Cycles from the end of warmup until the last measured operation
    /// completed.
    pub runtime_cycles: u64,
    /// Measured operations completed (should equal `cores × ops_per_core`).
    pub ops_completed: u64,
    /// Interconnect traffic during the measured phase.
    pub traffic: TrafficStats,
    /// Aggregated controller counters (all nodes, whole run including
    /// warmup).
    pub counters: ProtocolCounters,
    /// Measured demand misses (from completions, excluding warmup).
    pub measured_misses: u64,
    /// Mean measured miss latency in cycles.
    pub miss_latency_mean: f64,
    /// Full measured miss-latency distribution.
    pub miss_latency: Histogram,
    /// Coherence checks performed (0 when checking is off).
    pub coherence_checks: u64,
    /// Token audits performed (0 when checking is off).
    pub token_audits: u64,
    /// Total kernel events processed over the whole run (including
    /// warmup) — the denominator of simulator-throughput benchmarks.
    pub events_processed: u64,
}

impl RunResult {
    /// Interconnect bytes per measured demand miss — the unit of the
    /// paper's traffic figures.
    pub fn bytes_per_miss(&self) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            self.traffic.total_bytes() as f64 / self.measured_misses as f64
        }
    }

    /// Bytes per miss for a single traffic class.
    pub fn class_bytes_per_miss(&self, class: crate::TrafficClass) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            self.traffic.bytes(class) as f64 / self.measured_misses as f64
        }
    }

    /// Folds the deterministic fields of this result into `h`. Floats
    /// are excluded: everything folded is an exact integer product of
    /// the simulation, so the digest is bit-stable across platforms.
    ///
    /// The field order is pinned — `perf_baseline`'s recorded result
    /// hash (and CI's thread-determinism diff) depend on it, so only
    /// ever append.
    pub fn fold_into(&self, h: &mut FxHasher) {
        h.write_u64(self.runtime_cycles);
        h.write_u64(self.ops_completed);
        h.write_u64(self.measured_misses);
        h.write_u64(self.events_processed);
        for class in TrafficClass::ALL {
            h.write_u64(self.traffic.bytes(class));
            h.write_u64(self.traffic.traversals(class));
        }
        h.write_u64(self.traffic.dropped_packets());
        h.write_u64(self.traffic.dropped_bytes());
        let c = &self.counters;
        for v in [
            c.hits,
            c.misses,
            c.satisfied_before_activation,
            c.tenure_timeouts,
            c.direct_responses,
            c.direct_ignored,
            c.reissues,
            c.persistent_requests,
            c.writebacks,
        ] {
            h.write_u64(v);
        }
        for (lower, count) in self.miss_latency.buckets() {
            h.write_u64(lower);
            h.write_u64(count);
        }
    }

    /// The deterministic digest of this result (a fresh
    /// [`fold_into`](RunResult::fold_into)) — the unit of record→replay
    /// bit-identity checks.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        self.fold_into(&mut h);
        h.finish()
    }
}

/// A fully assembled simulated multicore: cores, workload generators,
/// coherence controllers, interconnect, and checkers.
///
/// Most callers use [`run`] or [`run_many`]; `System` is public for tests
/// and examples that need to drive or inspect a simulation directly.
pub struct System {
    config: SimConfig,
    queue: EventQueue<Event>,
    noc: Fabric<Msg>,
    nodes: Vec<Box<dyn Controller + Send>>,
    cores: Vec<CoreState>,
    checker: CoherenceChecker,
    auditor: TokenAuditor,
    /// Reusable controller-output scratch: taken at the start of each
    /// event, drained by `process_outbox`, and put back — the event loop
    /// allocates no fresh `Outbox` per event.
    outbox: Outbox,
    /// Reusable delivery scratch for NoC events, same discipline.
    delivered: Vec<(NodeId, Msg)>,
    miss_latency: Histogram,
    measured_misses: u64,
    ops_completed_measured: u64,
    last_completion: Cycle,
    cores_past_warmup: usize,
    warmup_end: Option<Cycle>,
    /// Captures every generated work item when
    /// `SimConfig::record_trace` is set; written out at the end of
    /// [`System::run`].
    recorder: Option<TraceWriter>,
}

impl System {
    /// Builds the system described by `config`.
    pub fn new(mut config: SimConfig) -> Self {
        let n = config.protocol.num_nodes;
        // Pre-size the controllers' block-keyed tables from the workload's
        // actual footprint (a hint only — results are unaffected). An
        // explicit user-supplied hint wins over the derived estimate.
        if config.protocol.working_set_hint.is_none() {
            config.protocol.working_set_hint = Some(config.workload.working_set_blocks(n));
        }
        let noc = Fabric::new(config.fabric_config());
        // Recording sits at the generator seam: the trace captures the
        // items generators hand the cores, so replaying it reproduces
        // the identical event sequence. The stored working-set hint is
        // the one this run sizes its tables with (derived or explicit),
        // so replays pre-size identically too.
        let recorder = config.record_trace.as_ref().map(|_| {
            TraceWriter::new(
                config.workload.name(),
                config.seed,
                n,
                config
                    .protocol
                    .working_set_hint
                    .expect("working-set hint derived above"),
            )
        });
        let root_rng = SimRng::from_seed(config.seed).fork(streams::WORKLOAD);
        let nodes = (0..n)
            .map(|i| build_controller(&config.protocol, NodeId::new(i)))
            .collect();
        let cores = (0..n)
            .map(|i| CoreState {
                generator: config
                    .workload
                    .generator(NodeId::new(i), n, root_rng.clone()),
                pending: None,
                outstanding: None,
                outstanding_since: Cycle::ZERO,
                ops_done: 0,
                finished: false,
            })
            .collect();
        // With per-event checking off, the auditor only needs the global
        // in-flight count (end-of-run drain check), not per-block state.
        let auditor = if config.check == CheckLevel::Assert {
            TokenAuditor::new(config.protocol.total_tokens)
        } else {
            TokenAuditor::coarse(config.protocol.total_tokens)
        };
        let mut system = System {
            // Pending events scale with cores (one issue or miss chain
            // each) plus in-flight link events.
            queue: EventQueue::with_capacity(n as usize * 16),
            noc,
            nodes,
            cores,
            checker: CoherenceChecker::new(),
            auditor,
            outbox: Outbox::new(),
            delivered: Vec::with_capacity(n as usize),
            miss_latency: Histogram::new(),
            measured_misses: 0,
            ops_completed_measured: 0,
            last_completion: Cycle::ZERO,
            cores_past_warmup: if config.warmup_ops_per_core == 0 {
                n as usize
            } else {
                0
            },
            warmup_end: if config.warmup_ops_per_core == 0 {
                Some(Cycle::ZERO)
            } else {
                None
            },
            recorder,
            config,
        };
        for i in 0..n {
            system.schedule_next(NodeId::new(i), Cycle::ZERO);
        }
        // The starvation watchdog only exists when a horizon is armed, so
        // fault-free runs process exactly the same event sequence as
        // before the oracle existed.
        if let Some(horizon) = system.config.liveness_horizon {
            system.queue.push(Cycle::new(horizon), Event::Watchdog);
        }
        system
    }

    fn quota(&self) -> u64 {
        self.config.warmup_ops_per_core + self.config.ops_per_core
    }

    /// Picks the core's next operation and schedules its issue after the
    /// think time.
    fn schedule_next(&mut self, node: NodeId, now: Cycle) {
        let quota = self.quota();
        let core = &mut self.cores[node.index()];
        if core.ops_done >= quota {
            core.finished = true;
            return;
        }
        let item = core.generator.next_item();
        if let Some(recorder) = &mut self.recorder {
            recorder.record(node, item);
        }
        let core = &mut self.cores[node.index()];
        core.pending = Some(MemOp {
            addr: item.addr,
            kind: item.kind,
        });
        self.queue
            .push(now + item.think_cycles, Event::CoreIssue { node });
    }

    /// Records one completed operation (hit or miss) for `node`.
    fn complete_op(&mut self, node: NodeId, op: MemOp, version: u64, at: Cycle) {
        if self.config.check == CheckLevel::Assert {
            self.checker.check(op.addr, op.kind, version, at);
        }
        let warmup = self.config.warmup_ops_per_core;
        let core = &mut self.cores[node.index()];
        core.ops_done += 1;
        if core.ops_done > warmup {
            self.ops_completed_measured += 1;
            self.last_completion = self.last_completion.max(at);
        }
        if warmup > 0 && core.ops_done == warmup {
            self.cores_past_warmup += 1;
            if self.cores_past_warmup == self.config.protocol.num_nodes as usize {
                // Measurement starts now: discard warmup traffic and
                // latency samples.
                self.noc.reset_stats();
                self.miss_latency = Histogram::new();
                self.measured_misses = 0;
                self.warmup_end = Some(at);
            }
        }
    }

    fn in_measurement(&self, node: NodeId) -> bool {
        self.cores[node.index()].ops_done >= self.config.warmup_ops_per_core
    }

    /// Routes a controller's outputs: messages into the interconnect,
    /// timers into the event queue, completions into the core model.
    /// Drains `out` (leaving its capacity for reuse) and schedules NoC
    /// follow-ups straight into the event queue — no per-event buffers.
    fn process_outbox(&mut self, node: NodeId, out: &mut Outbox, now: Cycle) {
        for send in out.sends.drain(..) {
            self.auditor.on_send(&send.msg);
            let Self { noc, queue, .. } = self;
            noc.send(
                now + send.delay,
                node,
                send.dests,
                send.priority,
                send.msg,
                &mut |at, ev| queue.push(at, Event::Noc(ev)),
            );
        }
        for (at, key) in out.timers.drain(..) {
            self.queue.push(at, Event::Timer { node, key });
        }
        for completion in out.completions.drain(..) {
            self.finish_miss(node, completion, now);
        }
    }

    fn finish_miss(&mut self, node: NodeId, completion: Completion, now: Cycle) {
        let op = self.cores[node.index()]
            .outstanding
            .take()
            .expect("completion without an outstanding miss");
        debug_assert_eq!(op.addr, completion.addr, "completion for the wrong block");
        debug_assert_eq!(op.kind, completion.kind);
        // Liveness oracle: every miss must resolve within the horizon.
        if let Some(horizon) = self.config.liveness_horizon {
            let waited = now.saturating_since(completion.issued_at);
            assert!(
                waited <= horizon,
                "liveness violation: {} miss on core {} took {waited} cycles \
                 (> horizon {horizon})",
                self.nodes[node.index()].protocol_name(),
                node.index(),
            );
        }
        if self.in_measurement(node) {
            self.miss_latency.record(now - completion.issued_at);
            self.measured_misses += 1;
        }
        self.complete_op(node, op, completion.version, now);
        self.schedule_next(node, now);
    }

    /// Takes the reusable outbox scratch (callers must hand it back via
    /// [`System::restore_outbox`]). The take-and-restore discipline keeps
    /// the borrow checker happy while controller calls and
    /// `process_outbox` both need `&mut self`.
    fn take_outbox(&mut self) -> Outbox {
        debug_assert!(self.outbox.is_empty(), "outbox scratch taken re-entrantly");
        std::mem::take(&mut self.outbox)
    }

    fn restore_outbox(&mut self, out: Outbox) {
        debug_assert!(out.is_empty(), "restored outbox was not drained");
        self.outbox = out;
    }

    fn deliver(&mut self, node: NodeId, msg: Msg, now: Cycle) {
        self.auditor.on_deliver(&msg);
        let addr = msg.addr;
        let mut out = self.take_outbox();
        self.nodes[node.index()].handle_message(msg, now, &mut out);
        self.process_outbox(node, &mut out, now);
        self.restore_outbox(out);
        if self.config.check == CheckLevel::Assert {
            self.auditor.audit(addr, &self.nodes);
        }
    }

    fn dispatch(&mut self, now: Cycle, event: Event) {
        match event {
            Event::CoreIssue { node } => {
                let op = self.cores[node.index()]
                    .pending
                    .take()
                    .expect("issue without a pending op");
                let mut out = self.take_outbox();
                let resp = self.nodes[node.index()].core_request(op, now, &mut out);
                self.process_outbox(node, &mut out, now);
                self.restore_outbox(out);
                match resp {
                    CoreResponse::Hit { version } => {
                        let done_at = now + self.config.protocol.cache_hit_latency;
                        self.complete_op(node, op, version, done_at);
                        self.schedule_next(node, done_at);
                    }
                    CoreResponse::MissPending => {
                        let core = &mut self.cores[node.index()];
                        core.outstanding = Some(op);
                        core.outstanding_since = now;
                    }
                }
            }
            Event::Timer { node, key } => {
                let mut out = self.take_outbox();
                self.nodes[node.index()].timer_fired(key, now, &mut out);
                self.process_outbox(node, &mut out, now);
                self.restore_outbox(out);
            }
            Event::Noc(ev) => {
                // Follow-up NoC events go straight into the queue;
                // deliveries buffer in the persistent scratch because
                // handling them needs `&mut self` again.
                let mut delivered = std::mem::take(&mut self.delivered);
                debug_assert!(delivered.is_empty());
                let Self { noc, queue, .. } = self;
                noc.handle(
                    now,
                    ev,
                    &mut |at, e| queue.push(at, Event::Noc(e)),
                    &mut |n, m| delivered.push((n, m)),
                );
                for (n, m) in delivered.drain(..) {
                    self.deliver(n, m, now);
                }
                self.delivered = delivered;
            }
            Event::Watchdog => {
                // Starvation scan: a miss that has been outstanding for
                // more than the horizon when the scan fires is a liveness
                // failure — this catches deadlocked misses that would
                // otherwise only trip the (much larger) max_cycles bound.
                let horizon = self
                    .config
                    .liveness_horizon
                    .expect("watchdog event without an armed horizon");
                for (i, core) in self.cores.iter().enumerate() {
                    if core.outstanding.is_some() {
                        let waited = now.saturating_since(core.outstanding_since);
                        assert!(
                            waited <= horizon,
                            "liveness violation: core {i} miss outstanding for \
                             {waited} cycles (> horizon {horizon})"
                        );
                    }
                }
                if self.cores.iter().any(|c| !c.finished) {
                    self.queue.push(now + horizon, Event::Watchdog);
                }
            }
        }
    }

    /// Runs the simulation to completion and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics on any detected protocol bug: an invariant violation (with
    /// checking enabled), a core that never finishes its quota (deadlock
    /// or starvation), a controller left non-quiescent, tokens left in
    /// flight, or simulated time exceeding `max_cycles` (livelock). Also
    /// panics if a recorded trace cannot be written — use
    /// [`System::try_run`] to handle that as a typed error instead.
    pub fn run(self) -> RunResult {
        match self.try_run(None) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation to completion, optionally bounded by a
    /// wall-clock `timeout`, surfacing infrastructure failures as typed
    /// [`RunError`]s instead of panics.
    ///
    /// The timeout is cooperative: the event loop compares `Instant::now`
    /// against the deadline every `DEADLINE_CHECK_EVENTS` events (a few
    /// milliseconds of real time), so an expired run returns promptly
    /// without a watchdog thread left burning CPU behind an abandoned
    /// simulation. With `timeout == None` the hot loop contains no clock
    /// reads at all.
    ///
    /// # Errors
    ///
    /// [`RunError::Timeout`] if the wall-clock budget expires, and
    /// [`RunError::TraceWrite`] if the run finished but its recorded
    /// trace could not be written.
    ///
    /// # Panics
    ///
    /// Still panics on detected protocol bugs — see [`System::run`].
    pub fn try_run(mut self, timeout: Option<Duration>) -> Result<RunResult, RunError> {
        match timeout {
            None => {
                while let Some((now, event)) = self.queue.pop() {
                    assert!(
                        now.as_u64() <= self.config.max_cycles,
                        "simulation exceeded {} cycles: livelock or runaway protocol",
                        self.config.max_cycles
                    );
                    self.dispatch(now, event);
                }
            }
            Some(limit) => {
                let deadline = Instant::now() + limit;
                let mut countdown = DEADLINE_CHECK_EVENTS;
                while let Some((now, event)) = self.queue.pop() {
                    assert!(
                        now.as_u64() <= self.config.max_cycles,
                        "simulation exceeded {} cycles: livelock or runaway protocol",
                        self.config.max_cycles
                    );
                    self.dispatch(now, event);
                    countdown -= 1;
                    if countdown == 0 {
                        countdown = DEADLINE_CHECK_EVENTS;
                        if Instant::now() >= deadline {
                            return Err(RunError::Timeout { limit });
                        }
                    }
                }
            }
        }
        // Forward-progress postconditions.
        for (i, core) in self.cores.iter().enumerate() {
            assert!(
                core.finished && core.outstanding.is_none(),
                "core {i} never finished: completed {} of {} ops (deadlock)",
                core.ops_done,
                self.quota()
            );
        }
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                node.is_quiescent(),
                "controller {i} not quiescent at end of run"
            );
        }
        assert_eq!(
            self.auditor.tokens_in_flight(),
            0,
            "tokens still in flight after drain"
        );

        if let Some(recorder) = self.recorder.take() {
            let path = self
                .config
                .record_trace
                .as_ref()
                .expect("recorder implies a record path");
            recorder
                .write_path(path)
                .map_err(|source| RunError::TraceWrite {
                    path: path.clone(),
                    source,
                })?;
        }

        let warmup_end = self.warmup_end.expect("all cores passed warmup");
        let mut counters = ProtocolCounters::default();
        for node in &self.nodes {
            let c = node.counters();
            counters.hits += c.hits;
            counters.misses += c.misses;
            counters.satisfied_before_activation += c.satisfied_before_activation;
            counters.tenure_timeouts += c.tenure_timeouts;
            counters.direct_responses += c.direct_responses;
            counters.direct_ignored += c.direct_ignored;
            counters.reissues += c.reissues;
            counters.persistent_requests += c.persistent_requests;
            counters.writebacks += c.writebacks;
        }
        Ok(RunResult {
            protocol: self.nodes[0].protocol_name(),
            runtime_cycles: self.last_completion.saturating_since(warmup_end),
            ops_completed: self.ops_completed_measured,
            traffic: self.noc.stats().clone(),
            counters,
            measured_misses: self.measured_misses,
            miss_latency_mean: self.miss_latency.mean(),
            miss_latency: self.miss_latency.clone(),
            coherence_checks: self.checker.checks_performed(),
            token_audits: self.auditor.audits_performed(),
            events_processed: self.queue.total_pushed(),
        })
    }
}

/// How many events [`System::try_run`] processes between wall-clock
/// deadline checks. Events take well under a microsecond each, so this
/// bounds timeout overshoot to a few milliseconds while keeping clock
/// reads out of the hot loop.
pub const DEADLINE_CHECK_EVENTS: u32 = 1 << 14;

/// Builds and runs one simulation.
///
/// See [`System::run`] for the panics that signal protocol bugs.
pub fn run(config: &SimConfig) -> RunResult {
    System::new(config.clone()).run()
}

/// Builds and runs one simulation with typed infrastructure errors and an
/// optional wall-clock budget — see [`System::try_run`].
///
/// # Errors
///
/// [`RunError::Timeout`] if `timeout` expires mid-run,
/// [`RunError::TraceWrite`] if the recorded trace cannot be written.
pub fn try_run(config: &SimConfig, timeout: Option<Duration>) -> Result<RunResult, RunError> {
    System::new(config.clone()).try_run(timeout)
}

/// Runs `seeds` perturbed copies of the simulation, the methodology
/// behind the paper's 95% confidence intervals.
///
/// Replication `i` runs with [`patchsim_kernel::replicate_seed`]`(config.seed, i)`
/// — replication 0 is the configured seed itself, and later replications
/// are SplitMix-derived so experiments with adjacent base seeds never
/// share replication streams (the naive `seed + i` derivation collides
/// `(seed, i)` with `(seed + 1, i - 1)`). The parallel
/// [`Runner`](crate::exp::Runner) uses the same derivation, so its
/// results are bit-identical to this serial loop.
pub fn run_many(config: &SimConfig, seeds: u64) -> Vec<RunResult> {
    assert!(seeds > 0, "at least one run required");
    (0..seeds)
        .map(|i| {
            run(&config
                .clone()
                .with_seed(patchsim_kernel::replicate_seed(config.seed, i)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PredictorChoice, ProtocolKind, WorkloadSpec};

    fn small(kind: ProtocolKind) -> SimConfig {
        SimConfig::new(kind, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 64,
                write_frac: 0.3,
                think_mean: 5,
            })
            .with_ops_per_core(100)
            .with_checks()
    }

    #[test]
    fn directory_completes_and_checks() {
        let r = run(&small(ProtocolKind::Directory));
        assert_eq!(r.ops_completed, 400);
        assert_eq!(r.protocol, "Directory");
        assert!(r.runtime_cycles > 0);
        assert!(r.coherence_checks >= 400);
    }

    #[test]
    fn patch_none_completes_with_token_audits() {
        let r = run(&small(ProtocolKind::Patch));
        assert_eq!(r.ops_completed, 400);
        assert_eq!(r.protocol, "PATCH");
        assert!(r.token_audits > 0, "audits ran");
    }

    #[test]
    fn patch_all_completes() {
        let cfg = small(ProtocolKind::Patch).with_predictor(PredictorChoice::All);
        let r = run(&cfg);
        assert_eq!(r.ops_completed, 400);
        assert!(
            r.counters.direct_responses > 0,
            "direct requests did real work"
        );
    }

    #[test]
    fn tokenb_completes() {
        let r = run(&small(ProtocolKind::TokenB));
        assert_eq!(r.ops_completed, 400);
        assert_eq!(r.protocol, "TokenB");
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let cfg = small(ProtocolKind::Patch).with_predictor(PredictorChoice::All);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small(ProtocolKind::Directory);
        let a = run(&cfg);
        let b = run(&cfg.clone().with_seed(99));
        assert_ne!(
            (a.runtime_cycles, a.traffic.total_bytes()),
            (b.runtime_cycles, b.traffic.total_bytes())
        );
    }

    #[test]
    fn warmup_excludes_traffic() {
        let cfg = small(ProtocolKind::Directory).with_warmup(50);
        let with_warmup = run(&cfg);
        let without = run(&small(ProtocolKind::Directory).with_ops_per_core(150));
        assert_eq!(with_warmup.ops_completed, 400);
        assert!(
            with_warmup.traffic.total_bytes() < without.traffic.total_bytes(),
            "warmup traffic was discarded"
        );
    }

    /// The completion/outstanding consistency checks are debug-only
    /// (`debug_assert_eq!`); this pins the debug-build panic so the
    /// checks cannot silently rot.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "completion for the wrong block")]
    fn mismatched_completion_panics_in_debug() {
        use patchsim_mem::{AccessKind, BlockAddr};

        let mut sys = System::new(small(ProtocolKind::Directory));
        sys.cores[0].outstanding = Some(MemOp {
            addr: BlockAddr::new(1),
            kind: AccessKind::Read,
        });
        sys.finish_miss(
            NodeId::new(0),
            Completion {
                addr: BlockAddr::new(2),
                kind: AccessKind::Read,
                version: 0,
                issued_at: Cycle::ZERO,
            },
            Cycle::ZERO,
        );
    }

    #[test]
    fn faulty_runs_reproduce_and_pass_oracles() {
        use patchsim_noc::FaultSpec;
        let cfg = small(ProtocolKind::Patch)
            .with_predictor(PredictorChoice::All)
            .with_faults(FaultSpec::parse("chaos").unwrap())
            .with_liveness_horizon(500_000);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.ops_completed, 400);
        assert_eq!(a.runtime_cycles, b.runtime_cycles, "fault schedule replays");
        assert_eq!(a.traffic, b.traffic);
        // The same mix under a different seed yields a different schedule.
        let c = run(&cfg.clone().with_seed(77));
        assert_ne!(
            (a.runtime_cycles, a.traffic.total_bytes()),
            (c.runtime_cycles, c.traffic.total_bytes())
        );
    }

    #[test]
    fn explicit_faults_none_changes_nothing() {
        use patchsim_noc::FaultSpec;
        let base = run(&small(ProtocolKind::Directory));
        let spelled = run(&small(ProtocolKind::Directory).with_faults(FaultSpec::none()));
        assert_eq!(base.runtime_cycles, spelled.runtime_cycles);
        assert_eq!(base.traffic, spelled.traffic);
        assert_eq!(base.events_processed, spelled.events_processed);
    }

    #[test]
    fn try_run_times_out_on_a_tiny_budget() {
        let cfg = small(ProtocolKind::Directory).with_ops_per_core(50_000);
        match try_run(&cfg, Some(Duration::from_nanos(1))) {
            Err(RunError::Timeout { limit }) => assert_eq!(limit, Duration::from_nanos(1)),
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn try_run_without_timeout_matches_run() {
        let cfg = small(ProtocolKind::Directory);
        let a = run(&cfg);
        let b = try_run(&cfg, None).expect("no infrastructure failure");
        assert_eq!(a.digest(), b.digest());
        // A generous budget changes nothing either.
        let c = try_run(&cfg, Some(Duration::from_secs(3600))).unwrap();
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn try_run_surfaces_trace_write_failure() {
        let path = std::env::temp_dir()
            .join(format!("patchsim-no-such-dir-{}", std::process::id()))
            .join("missing")
            .join("t.ptrc");
        let cfg = small(ProtocolKind::Directory)
            .with_ops_per_core(20)
            .with_record_trace(path.clone());
        match try_run(&cfg, None) {
            Err(RunError::TraceWrite { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected a trace-write error, got {other:?}"),
        }
    }

    /// The panicking `run` entry point keeps its original trace-failure
    /// message (callers that want the typed error use `try_run`).
    #[test]
    #[should_panic(expected = "failed to write trace")]
    fn run_still_panics_on_trace_write_failure() {
        let path = std::env::temp_dir()
            .join(format!("patchsim-no-such-dir-{}", std::process::id()))
            .join("missing")
            .join("t.ptrc");
        let _ = run(&small(ProtocolKind::Directory)
            .with_ops_per_core(20)
            .with_record_trace(path));
    }

    #[test]
    fn run_many_perturbs_seeds() {
        let results = run_many(&small(ProtocolKind::Directory).with_ops_per_core(30), 3);
        assert_eq!(results.len(), 3);
        let runtimes: Vec<u64> = results.iter().map(|r| r.runtime_cycles).collect();
        assert!(runtimes.windows(2).any(|w| w[0] != w[1]));
    }
}
