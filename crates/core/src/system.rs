//! System assembly and the simulation event loop.

use std::collections::VecDeque;
use std::fmt;
use std::hash::Hasher;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use patchsim_kernel::collections::FxHasher;
use patchsim_kernel::stats::Histogram;
use patchsim_kernel::{streams, Cycle, EventQueue, SimRng};
use patchsim_noc::{Fabric, NocEvent, NodeId};
use patchsim_protocol::{
    build_controller, Completion, Controller, CoreResponse, MemOp, Msg, Outbox, ProtocolCounters,
    ProtocolGauges, TimerKey,
};
use patchsim_trace::{TraceError, TraceWriter};
use patchsim_workload::{Generator, OverloadPolicy, WorkloadSpec};

use crate::checker::{CoherenceChecker, TokenAuditor};
use crate::config::{CheckLevel, SimConfig};
use crate::telemetry::{
    run_header_fields, EventClass, FdrGuard, FlightRecorder, MetricsBuf, MetricsSample,
    ProfileStats, SpanStats,
};
use crate::{TrafficClass, TrafficStats};

#[derive(Debug)]
enum Event {
    Noc(NocEvent<Msg>),
    Timer {
        node: NodeId,
        key: TimerKey,
    },
    CoreIssue {
        node: NodeId,
    },
    /// An open-loop operation arrives at its core (decoupled from
    /// completions); only ever scheduled for
    /// [`WorkloadSpec::OpenLoop`] workloads.
    Arrival {
        node: NodeId,
    },
    /// Periodic starvation scan; only ever scheduled when
    /// `SimConfig::liveness_horizon` is set.
    Watchdog,
}

#[derive(Debug)]
struct CoreState {
    generator: Generator,
    /// The op picked by the generator, waiting out its think time.
    pending: Option<MemOp>,
    /// The op currently outstanding as a miss.
    outstanding: Option<MemOp>,
    /// When the outstanding miss was issued (watchdog bookkeeping).
    outstanding_since: Cycle,
    ops_done: u64,
    finished: bool,
    /// Open-loop only: queued arrivals awaiting service, each with its
    /// arrival cycle (the sojourn clock's start).
    backlog: VecDeque<(MemOp, Cycle)>,
    /// Open-loop only: the op drawn for the next scheduled
    /// [`Event::Arrival`].
    next_arrival: Option<MemOp>,
    /// Open-loop only: an arrival stalled by a full backlog under
    /// [`OverloadPolicy::Block`], with its original arrival cycle.
    blocked: Option<(MemOp, Cycle)>,
    /// Open-loop only: arrivals drawn from the generator so far (the
    /// per-core arrival budget is the warmup + measured quota).
    arrivals_drawn: u64,
    /// Open-loop only: arrival cycle of the op currently in service
    /// (`pending` or `outstanding`).
    in_service_since: Cycle,
}

/// An infrastructure failure from [`System::try_run`]: the simulation
/// could not produce (or finish publishing) a result for a reason that is
/// *not* a protocol bug. Protocol bugs — invariant violations, deadlock,
/// livelock — still panic, because they invalidate the simulation itself;
/// the experiment runner isolates those panics per cell instead.
#[derive(Debug)]
pub enum RunError {
    /// The run completed but its recorded trace (`record_trace`) could
    /// not be written.
    TraceWrite {
        /// The trace output path.
        path: PathBuf,
        /// The underlying encoder or filesystem error.
        source: TraceError,
    },
    /// The run exceeded its wall-clock budget before finishing.
    Timeout {
        /// The configured per-run wall-clock limit.
        limit: Duration,
    },
    /// The run completed but its epoch-metrics JSONL (`telemetry.metrics`)
    /// could not be written.
    MetricsWrite {
        /// The metrics output path.
        path: PathBuf,
        /// The underlying filesystem error.
        source: std::io::Error,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::TraceWrite { path, source } => {
                write!(f, "failed to write trace {}: {source}", path.display())
            }
            RunError::Timeout { limit } => {
                write!(f, "simulation exceeded its {limit:?} wall-clock budget")
            }
            RunError::MetricsWrite { path, source } => {
                write!(f, "failed to write metrics {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::TraceWrite { source, .. } => Some(source),
            RunError::Timeout { .. } => None,
            RunError::MetricsWrite { source, .. } => Some(source),
        }
    }
}

/// Saturation accounting of an open-loop run ([`WorkloadSpec::OpenLoop`]):
/// what happened between arrival and completion, summed over cores.
///
/// `measured_*` counters follow the same convention as
/// [`RunResult::measured_misses`]: counted once the core is past its own
/// warmup quota and reset when the *last* core crosses (so early
/// finishers' samples are discarded with the rest of the warmup state).
/// The remaining counters cover the whole run including warmup.
#[derive(Debug, Clone)]
pub struct OpenLoopStats {
    /// Operations that arrived (entered a backlog, went straight into
    /// service, were dropped, or stalled the arrival process).
    pub arrivals: u64,
    /// Arrivals discarded by a full backlog under
    /// [`OverloadPolicy::Drop`].
    pub drops: u64,
    /// Arrivals after this core's warmup (reset at the global warmup
    /// boundary).
    pub measured_arrivals: u64,
    /// Drops after this core's warmup (reset at the global warmup
    /// boundary).
    pub measured_drops: u64,
    /// Total cycles arrival processes spent stalled by a full backlog
    /// under [`OverloadPolicy::Block`].
    pub blocked_cycles: u64,
    /// Highest queued (not yet in service) backlog depth any core
    /// reached.
    pub backlog_hwm: u64,
    /// Operations still queued or in service when the event loop
    /// drained. The arrival budget is bounded (quota per core) and every
    /// drawn arrival resolves, so this is 0 for a completed run; it
    /// exists to make the conservation identity `arrivals == completions
    /// + drops + in_flight_at_horizon` checkable rather than assumed.
    pub in_flight_at_horizon: u64,
    /// Measured arrival→completion sojourn times — the open-loop latency
    /// that keeps growing past the knee while the issue→completion
    /// [`RunResult::miss_latency`] flattens.
    pub sojourn: Histogram,
}

impl OpenLoopStats {
    fn new() -> Self {
        OpenLoopStats {
            arrivals: 0,
            drops: 0,
            measured_arrivals: 0,
            measured_drops: 0,
            blocked_cycles: 0,
            backlog_hwm: 0,
            in_flight_at_horizon: 0,
            sojourn: Histogram::new(),
        }
    }

    /// Merges another run's stats into this one (histograms pooled) —
    /// the open-loop analogue of summing counters across replications.
    pub fn merge(&mut self, other: &OpenLoopStats) {
        self.arrivals += other.arrivals;
        self.drops += other.drops;
        self.measured_arrivals += other.measured_arrivals;
        self.measured_drops += other.measured_drops;
        self.blocked_cycles += other.blocked_cycles;
        self.backlog_hwm = self.backlog_hwm.max(other.backlog_hwm);
        self.in_flight_at_horizon += other.in_flight_at_horizon;
        self.sojourn.merge(&other.sojourn);
    }
}

/// The per-run open-loop state: the profile's backlog policy plus the
/// accumulating [`OpenLoopStats`].
struct OpenLoop {
    cap: usize,
    block: bool,
    stats: OpenLoopStats,
}

/// The measured outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Protocol display name.
    pub protocol: &'static str,
    /// Cycles from the end of warmup until the last measured operation
    /// completed.
    pub runtime_cycles: u64,
    /// Measured operations completed (should equal `cores × ops_per_core`).
    pub ops_completed: u64,
    /// Interconnect traffic during the measured phase.
    pub traffic: TrafficStats,
    /// Aggregated controller counters (all nodes, whole run including
    /// warmup).
    pub counters: ProtocolCounters,
    /// Measured demand misses (from completions, excluding warmup).
    pub measured_misses: u64,
    /// Mean measured miss latency in cycles.
    pub miss_latency_mean: f64,
    /// Full measured miss-latency distribution.
    pub miss_latency: Histogram,
    /// Coherence checks performed (0 when checking is off).
    pub coherence_checks: u64,
    /// Token audits performed (0 when checking is off).
    pub token_audits: u64,
    /// Total kernel events processed over the whole run (including
    /// warmup) — the denominator of simulator-throughput benchmarks.
    pub events_processed: u64,
    /// Open-loop saturation accounting; `None` for every closed-loop
    /// workload (so closed-loop digests and stored results are
    /// untouched by the subsystem's existence).
    pub open_loop: Option<OpenLoopStats>,
    /// Per-miss phase-span histograms; `Some` only when
    /// `telemetry.spans` was enabled. Deliberately **never** folded into
    /// [`RunResult::digest`], so a spans-on run digests identically to
    /// the same run with telemetry off.
    pub spans: Option<SpanStats>,
    /// Host-side per-event-class profile; `Some` only when
    /// `telemetry.profile` was enabled. Wall-clock observations — never
    /// folded into the digest, never persisted to the result store.
    pub profile: Option<ProfileStats>,
}

impl RunResult {
    /// Interconnect bytes per measured demand miss — the unit of the
    /// paper's traffic figures.
    pub fn bytes_per_miss(&self) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            self.traffic.total_bytes() as f64 / self.measured_misses as f64
        }
    }

    /// Bytes per miss for a single traffic class.
    pub fn class_bytes_per_miss(&self, class: crate::TrafficClass) -> f64 {
        if self.measured_misses == 0 {
            0.0
        } else {
            self.traffic.bytes(class) as f64 / self.measured_misses as f64
        }
    }

    /// Folds the deterministic fields of this result into `h`. Floats
    /// are excluded: everything folded is an exact integer product of
    /// the simulation, so the digest is bit-stable across platforms.
    ///
    /// The field order is pinned — `perf_baseline`'s recorded result
    /// hash (and CI's thread-determinism diff) depend on it, so only
    /// ever append.
    pub fn fold_into(&self, h: &mut FxHasher) {
        h.write_u64(self.runtime_cycles);
        h.write_u64(self.ops_completed);
        h.write_u64(self.measured_misses);
        h.write_u64(self.events_processed);
        for class in TrafficClass::ALL {
            h.write_u64(self.traffic.bytes(class));
            h.write_u64(self.traffic.traversals(class));
        }
        h.write_u64(self.traffic.dropped_packets());
        h.write_u64(self.traffic.dropped_bytes());
        let c = &self.counters;
        for v in [
            c.hits,
            c.misses,
            c.satisfied_before_activation,
            c.tenure_timeouts,
            c.direct_responses,
            c.direct_ignored,
            c.reissues,
            c.persistent_requests,
            c.writebacks,
        ] {
            h.write_u64(v);
        }
        for (lower, count) in self.miss_latency.buckets() {
            h.write_u64(lower);
            h.write_u64(count);
        }
        // Open-loop fields fold only when present, so every pre-existing
        // (closed-loop) digest — including the perf-smoke golden — is
        // unchanged by the subsystem's existence.
        if let Some(open) = &self.open_loop {
            h.write_u64(open.arrivals);
            h.write_u64(open.drops);
            h.write_u64(open.measured_arrivals);
            h.write_u64(open.measured_drops);
            h.write_u64(open.blocked_cycles);
            h.write_u64(open.backlog_hwm);
            h.write_u64(open.in_flight_at_horizon);
            for (lower, count) in open.sojourn.buckets() {
                h.write_u64(lower);
                h.write_u64(count);
            }
        }
    }

    /// The deterministic digest of this result (a fresh
    /// [`fold_into`](RunResult::fold_into)) — the unit of record→replay
    /// bit-identity checks.
    pub fn digest(&self) -> u64 {
        let mut h = FxHasher::default();
        self.fold_into(&mut h);
        h.finish()
    }
}

/// A fully assembled simulated multicore: cores, workload generators,
/// coherence controllers, interconnect, and checkers.
///
/// Most callers use [`run`] or [`run_many`]; `System` is public for tests
/// and examples that need to drive or inspect a simulation directly.
pub struct System {
    config: SimConfig,
    queue: EventQueue<Event>,
    noc: Fabric<Msg>,
    nodes: Vec<Box<dyn Controller + Send>>,
    cores: Vec<CoreState>,
    checker: CoherenceChecker,
    auditor: TokenAuditor,
    /// Reusable controller-output scratch: taken at the start of each
    /// event, drained by `process_outbox`, and put back — the event loop
    /// allocates no fresh `Outbox` per event.
    outbox: Outbox,
    /// Reusable delivery scratch for NoC events, same discipline.
    delivered: Vec<(NodeId, Msg)>,
    miss_latency: Histogram,
    measured_misses: u64,
    ops_completed_measured: u64,
    /// `Some` iff the workload is [`WorkloadSpec::OpenLoop`]; closed-loop
    /// runs carry no open-loop state and schedule no arrival events.
    open: Option<OpenLoop>,
    last_completion: Cycle,
    cores_past_warmup: usize,
    warmup_end: Option<Cycle>,
    /// Captures every generated work item when
    /// `SimConfig::record_trace` is set; written out at the end of
    /// [`System::run`].
    recorder: Option<TraceWriter>,
    /// Epoch-metrics sampler state; `Some` iff `telemetry.metrics` is
    /// set. Sampling happens inline when a popped event crosses an epoch
    /// boundary — it never pushes events, so `events_processed` (and the
    /// result digest) is unchanged by its existence.
    metrics: Option<MetricsState>,
    /// Span histograms under construction; `Some` iff `telemetry.spans`.
    spans: Option<SpanStats>,
    /// Flight recorder; `Some` iff `telemetry.flight_recorder`. Wrapped
    /// in a guard whose `Drop` dumps the ring when a panic unwinds
    /// through the event loop.
    fdr: Option<FdrGuard>,
    /// Per-event-class self-profile; `Some` iff `telemetry.profile`.
    profile: Option<ProfileStats>,
}

/// The sampler's delta baseline: cumulative gauge values at the previous
/// epoch boundary, so each row reports per-epoch deltas.
struct MetricsState {
    buf: MetricsBuf,
    prev_cycle: u64,
    prev_events: u64,
    prev_busy: u64,
    prev_misses: u64,
    prev_persistent: u64,
    prev_reissues: u64,
    prev_tenure: u64,
}

impl System {
    /// Builds the system described by `config`.
    pub fn new(mut config: SimConfig) -> Self {
        let n = config.protocol.num_nodes;
        // Pre-size the controllers' block-keyed tables from the workload's
        // actual footprint (a hint only — results are unaffected). An
        // explicit user-supplied hint wins over the derived estimate.
        if config.protocol.working_set_hint.is_none() {
            config.protocol.working_set_hint = Some(config.workload.working_set_blocks(n));
        }
        let noc = Fabric::new(config.fabric_config());
        // Recording sits at the generator seam: the trace captures the
        // items generators hand the cores, so replaying it reproduces
        // the identical event sequence. The stored working-set hint is
        // the one this run sizes its tables with (derived or explicit),
        // so replays pre-size identically too.
        let recorder = config.record_trace.as_ref().map(|_| {
            TraceWriter::new(
                config.workload.name(),
                config.seed,
                n,
                config
                    .protocol
                    .working_set_hint
                    .expect("working-set hint derived above"),
            )
        });
        let root_rng = SimRng::from_seed(config.seed).fork(streams::WORKLOAD);
        let nodes = (0..n)
            .map(|i| build_controller(&config.protocol, NodeId::new(i)))
            .collect();
        let cores = (0..n)
            .map(|i| CoreState {
                generator: config
                    .workload
                    .generator(NodeId::new(i), n, root_rng.clone()),
                pending: None,
                outstanding: None,
                outstanding_since: Cycle::ZERO,
                ops_done: 0,
                finished: false,
                backlog: VecDeque::new(),
                next_arrival: None,
                blocked: None,
                arrivals_drawn: 0,
                in_service_since: Cycle::ZERO,
            })
            .collect();
        let open = match &config.workload {
            WorkloadSpec::OpenLoop(p) => Some(OpenLoop {
                cap: p.backlog_cap as usize,
                block: p.policy == OverloadPolicy::Block,
                stats: OpenLoopStats::new(),
            }),
            _ => None,
        };
        // With per-event checking off, the auditor only needs the global
        // in-flight count (end-of-run drain check), not per-block state.
        let auditor = if config.check == CheckLevel::Assert {
            TokenAuditor::new(config.protocol.total_tokens)
        } else {
            TokenAuditor::coarse(config.protocol.total_tokens)
        };
        let mut system = System {
            // Pending events scale with cores (one issue or miss chain
            // each) plus in-flight link events.
            queue: EventQueue::with_capacity(n as usize * 16),
            noc,
            nodes,
            cores,
            checker: CoherenceChecker::new(),
            auditor,
            outbox: Outbox::new(),
            delivered: Vec::with_capacity(n as usize),
            miss_latency: Histogram::new(),
            measured_misses: 0,
            ops_completed_measured: 0,
            open,
            last_completion: Cycle::ZERO,
            cores_past_warmup: if config.warmup_ops_per_core == 0 {
                n as usize
            } else {
                0
            },
            warmup_end: if config.warmup_ops_per_core == 0 {
                Some(Cycle::ZERO)
            } else {
                None
            },
            recorder,
            metrics: None,
            spans: None,
            fdr: None,
            profile: None,
            config,
        };
        if system.config.telemetry.any() {
            let header = run_header_fields(
                system.nodes.first().map_or("?", |c| c.protocol_name()),
                n,
                &system.config.protocol.fabric.label(),
                system.config.workload.name(),
                system.config.seed,
            );
            if let Some(path) = system.config.telemetry.metrics.clone() {
                system.metrics = Some(MetricsState {
                    buf: MetricsBuf::new(path, system.config.telemetry.epoch(), &header),
                    prev_cycle: 0,
                    prev_events: 0,
                    prev_busy: 0,
                    prev_misses: 0,
                    prev_persistent: 0,
                    prev_reissues: 0,
                    prev_tenure: 0,
                });
            }
            if system.config.telemetry.spans {
                system.spans = Some(SpanStats::default());
            }
            if let Some(dir) = system.config.telemetry.flight_recorder.clone() {
                let tag = system.config.stable_digest();
                system.fdr = Some(FdrGuard(FlightRecorder::new(dir, tag, header)));
            }
            if system.config.telemetry.profile {
                system.profile = Some(ProfileStats::default());
            }
        }
        if system.open.is_some() {
            // Open loop: no op is pending at time zero; each core's first
            // arrival lands after its first interarrival gap.
            for i in 0..n {
                system.schedule_arrival(NodeId::new(i), Cycle::ZERO);
            }
        } else {
            for i in 0..n {
                system.schedule_next(NodeId::new(i), Cycle::ZERO);
            }
        }
        // The starvation watchdog only exists when a horizon is armed, so
        // fault-free runs process exactly the same event sequence as
        // before the oracle existed.
        if let Some(horizon) = system.config.liveness_horizon {
            system.queue.push(Cycle::new(horizon), Event::Watchdog);
        }
        system
    }

    fn quota(&self) -> u64 {
        self.config.warmup_ops_per_core + self.config.ops_per_core
    }

    /// Picks the core's next operation and schedules its issue after the
    /// think time.
    fn schedule_next(&mut self, node: NodeId, now: Cycle) {
        let quota = self.quota();
        let core = &mut self.cores[node.index()];
        if core.ops_done >= quota {
            core.finished = true;
            return;
        }
        let item = core.generator.next_item();
        if let Some(recorder) = &mut self.recorder {
            recorder.record(node, item);
        }
        let core = &mut self.cores[node.index()];
        core.pending = Some(MemOp {
            addr: item.addr,
            kind: item.kind,
        });
        self.queue
            .push(now + item.think_cycles, Event::CoreIssue { node });
    }

    /// Open loop: draws the core's next arrival and schedules it after
    /// its interarrival gap (the generator's `think_cycles`). The arrival
    /// budget is the same warmup + measured quota as the closed loop's —
    /// once `quota` arrivals are drawn the process stops and the core
    /// finishes when the last one resolves.
    fn schedule_arrival(&mut self, node: NodeId, now: Cycle) {
        let quota = self.quota();
        let core = &mut self.cores[node.index()];
        if core.arrivals_drawn >= quota {
            if quota == 0 {
                core.finished = true;
            }
            return;
        }
        core.arrivals_drawn += 1;
        let item = core.generator.next_item();
        if let Some(recorder) = &mut self.recorder {
            recorder.record(node, item);
        }
        let core = &mut self.cores[node.index()];
        core.next_arrival = Some(MemOp {
            addr: item.addr,
            kind: item.kind,
        });
        self.queue
            .push(now + item.think_cycles, Event::Arrival { node });
    }

    /// Open loop: one operation arrives at `node` — into service if the
    /// core is idle, into the backlog if there is room, otherwise
    /// dropped or (block policy) stalling the arrival process.
    fn handle_arrival(&mut self, node: NodeId, now: Cycle) {
        let op = self.cores[node.index()]
            .next_arrival
            .take()
            .expect("arrival without a drawn op");
        let measured = self.in_measurement(node);
        let open = self.open.as_mut().expect("arrival in a closed-loop run");
        open.stats.arrivals += 1;
        if measured {
            open.stats.measured_arrivals += 1;
        }
        let (cap, block) = (open.cap, open.block);
        let core = &mut self.cores[node.index()];
        if core.pending.is_none() && core.outstanding.is_none() && core.backlog.is_empty() {
            // Idle server: straight into service.
            core.pending = Some(op);
            core.in_service_since = now;
            self.queue.push(now, Event::CoreIssue { node });
        } else if core.backlog.len() < cap {
            core.backlog.push_back((op, now));
            let depth = core.backlog.len() as u64;
            let open = self.open.as_mut().expect("open-loop state");
            open.stats.backlog_hwm = open.stats.backlog_hwm.max(depth);
        } else if block {
            // Full backlog, block policy: the arrival process stalls —
            // no further arrival is scheduled until a slot frees.
            core.blocked = Some((op, now));
            return;
        } else {
            // Full backlog, drop policy: the op leaves the system now.
            let open = self.open.as_mut().expect("open-loop state");
            open.stats.drops += 1;
            if measured {
                open.stats.measured_drops += 1;
            }
            self.note_op_resolved(node, now);
            self.open_maybe_finish(node);
        }
        self.schedule_arrival(node, now);
    }

    /// Open loop: after a completion, pull the next queued op into
    /// service (unstalling a blocked arrival into the freed slot), or
    /// finish the core once its whole arrival budget has resolved.
    fn open_continue(&mut self, node: NodeId, now: Cycle) {
        let core = &mut self.cores[node.index()];
        if let Some((op, arrived)) = core.backlog.pop_front() {
            core.pending = Some(op);
            core.in_service_since = arrived;
            self.queue.push(now, Event::CoreIssue { node });
            let core = &mut self.cores[node.index()];
            if let Some((op, arrived)) = core.blocked.take() {
                // The stalled arrival enters the freed backlog slot with
                // its *original* arrival time (its sojourn includes the
                // stall), and the arrival process resumes.
                core.backlog.push_back((op, arrived));
                let open = self.open.as_mut().expect("open-loop state");
                open.stats.blocked_cycles += now.saturating_since(arrived);
                self.schedule_arrival(node, now);
            }
        } else {
            debug_assert!(
                self.cores[node.index()].blocked.is_none(),
                "blocked arrival behind an empty backlog"
            );
            self.open_maybe_finish(node);
        }
    }

    /// Open loop: marks the core finished once every drawn arrival has
    /// resolved (completed or dropped) and nothing is left in flight.
    fn open_maybe_finish(&mut self, node: NodeId) {
        let quota = self.quota();
        let core = &mut self.cores[node.index()];
        if core.ops_done >= quota {
            debug_assert!(
                core.backlog.is_empty()
                    && core.pending.is_none()
                    && core.outstanding.is_none()
                    && core.blocked.is_none(),
                "core finished its quota with work still in flight"
            );
            core.finished = true;
        }
    }

    /// Completes `op` at `at`, then advances the core: the closed loop
    /// thinks and issues its next op, the open loop drains its backlog.
    /// Sojourn (arrival→completion) is recorded here, on the same
    /// in-measurement gate as miss latency.
    fn complete_and_advance(&mut self, node: NodeId, op: MemOp, version: u64, at: Cycle) {
        if self.open.is_some() {
            if self.in_measurement(node) {
                let arrived = self.cores[node.index()].in_service_since;
                let sojourn = at.saturating_since(arrived);
                self.open
                    .as_mut()
                    .expect("open-loop state")
                    .stats
                    .sojourn
                    .record(sojourn);
            }
            self.complete_op(node, op, version, at);
            self.open_continue(node, at);
        } else {
            self.complete_op(node, op, version, at);
            self.schedule_next(node, at);
        }
    }

    /// Records that one of `node`'s operations resolved — completed *or*
    /// (open loop) dropped — advancing the warmup bookkeeping either way,
    /// so a saturated core still crosses its warmup quota. Returns
    /// whether the resolved op landed in the measurement phase.
    fn note_op_resolved(&mut self, node: NodeId, at: Cycle) -> bool {
        let warmup = self.config.warmup_ops_per_core;
        let core = &mut self.cores[node.index()];
        core.ops_done += 1;
        let measured = core.ops_done > warmup;
        if warmup > 0 && core.ops_done == warmup {
            self.cores_past_warmup += 1;
            if self.cores_past_warmup == self.config.protocol.num_nodes as usize {
                // Measurement starts now: discard warmup traffic and
                // latency samples.
                self.noc.reset_stats();
                self.miss_latency = Histogram::new();
                self.measured_misses = 0;
                // Spans follow the latency histogram: drop the samples
                // from cores that outran the global warmup boundary so
                // the phase sums still partition `miss_latency` exactly.
                if let Some(spans) = &mut self.spans {
                    *spans = Default::default();
                }
                if let Some(open) = &mut self.open {
                    open.stats.sojourn = Histogram::new();
                    open.stats.measured_arrivals = 0;
                    open.stats.measured_drops = 0;
                }
                self.warmup_end = Some(at);
            }
        }
        measured
    }

    /// Records one completed operation (hit or miss) for `node`.
    fn complete_op(&mut self, node: NodeId, op: MemOp, version: u64, at: Cycle) {
        if self.config.check == CheckLevel::Assert {
            self.checker.check(op.addr, op.kind, version, at);
        }
        if self.note_op_resolved(node, at) {
            self.ops_completed_measured += 1;
            self.last_completion = self.last_completion.max(at);
        }
    }

    fn in_measurement(&self, node: NodeId) -> bool {
        self.cores[node.index()].ops_done >= self.config.warmup_ops_per_core
    }

    /// Routes a controller's outputs: messages into the interconnect,
    /// timers into the event queue, completions into the core model.
    /// Drains `out` (leaving its capacity for reuse) and schedules NoC
    /// follow-ups straight into the event queue — no per-event buffers.
    fn process_outbox(&mut self, node: NodeId, out: &mut Outbox, now: Cycle) {
        for send in out.sends.drain(..) {
            self.auditor.on_send(&send.msg);
            let Self { noc, queue, .. } = self;
            noc.send(
                now + send.delay,
                node,
                send.dests,
                send.priority,
                send.msg,
                &mut |at, ev| queue.push(at, Event::Noc(ev)),
            );
        }
        for (at, key) in out.timers.drain(..) {
            self.queue.push(at, Event::Timer { node, key });
        }
        for completion in out.completions.drain(..) {
            self.finish_miss(node, completion, now);
        }
    }

    fn finish_miss(&mut self, node: NodeId, completion: Completion, now: Cycle) {
        let op = self.cores[node.index()]
            .outstanding
            .take()
            .expect("completion without an outstanding miss");
        debug_assert_eq!(op.addr, completion.addr, "completion for the wrong block");
        debug_assert_eq!(op.kind, completion.kind);
        // Liveness oracle: every miss must resolve within the horizon.
        if let Some(horizon) = self.config.liveness_horizon {
            let waited = now.saturating_since(completion.issued_at);
            if waited > horizon {
                let dump = self.dump_fdr("liveness violation");
                panic!(
                    "liveness violation: {} miss on core {} took {waited} cycles \
                     (> horizon {horizon}){}{}",
                    self.nodes[node.index()].protocol_name(),
                    node.index(),
                    self.context_suffix(),
                    dump_suffix(&dump),
                );
            }
        }
        if self.in_measurement(node) {
            self.miss_latency.record(now - completion.issued_at);
            self.measured_misses += 1;
            let queue_wait = self.open.is_some().then(|| {
                completion
                    .issued_at
                    .saturating_since(self.cores[node.index()].in_service_since)
            });
            if let Some(spans) = self.spans.as_mut() {
                // Phase boundaries, clamped into [issued_at, now] so the
                // three phases always partition the miss exactly: a miss
                // with no explicit ordering message collapses its home
                // phase to zero rather than going negative.
                let issued = completion.issued_at;
                let t1 = completion
                    .marks
                    .first_progress
                    .unwrap_or(now)
                    .clamp(issued, now);
                let t2 = completion.marks.ordered.unwrap_or(t1).clamp(t1, now);
                spans.network.record(t1.saturating_since(issued));
                spans.home.record(t2.saturating_since(t1));
                spans.token_wait.record(now.saturating_since(t2));
                if let Some(q) = queue_wait {
                    spans.queue_wait.record(q);
                }
            }
        }
        self.complete_and_advance(node, op, completion.version, now);
    }

    /// Takes the reusable outbox scratch (callers must hand it back via
    /// [`System::restore_outbox`]). The take-and-restore discipline keeps
    /// the borrow checker happy while controller calls and
    /// `process_outbox` both need `&mut self`.
    fn take_outbox(&mut self) -> Outbox {
        debug_assert!(self.outbox.is_empty(), "outbox scratch taken re-entrantly");
        std::mem::take(&mut self.outbox)
    }

    fn restore_outbox(&mut self, out: Outbox) {
        debug_assert!(out.is_empty(), "restored outbox was not drained");
        self.outbox = out;
    }

    fn deliver(&mut self, node: NodeId, msg: Msg, now: Cycle) {
        self.auditor.on_deliver(&msg);
        let addr = msg.addr;
        let mut out = self.take_outbox();
        self.nodes[node.index()].handle_message(msg, now, &mut out);
        self.process_outbox(node, &mut out, now);
        self.restore_outbox(out);
        if self.config.check == CheckLevel::Assert {
            self.auditor.audit(addr, &self.nodes);
        }
    }

    /// Dumps the flight recorder (if armed and not yet dumped),
    /// returning the dump path.
    fn dump_fdr(&mut self, reason: &str) -> Option<std::path::PathBuf> {
        self.fdr.as_mut().and_then(|g| g.0.dump(reason))
    }

    /// Run context appended to oracle-failure messages: protocol,
    /// fabric, workload, and seed, so a failure line alone identifies
    /// the failing cell.
    fn context_suffix(&self) -> String {
        format!(
            " [protocol={}, fabric={}, workload={}, seed={}]",
            self.nodes.first().map_or("?", |c| c.protocol_name()),
            self.config.protocol.fabric.label(),
            self.config.workload.name(),
            self.config.seed,
        )
    }

    /// Emits an epoch-metrics row when `now` has crossed the next epoch
    /// boundary. Pure observation: reads gauges, pushes no events.
    fn metrics_tick(&mut self, now: Cycle) {
        let due = self
            .metrics
            .as_ref()
            .is_some_and(|m| now.as_u64() >= m.buf.next_sample);
        if !due {
            return;
        }
        let events = self.queue.total_pushed();
        let queue_len = self.queue.len() as u64;
        let busy = self.noc.total_busy_cycles();
        let queued_packets = self.noc.queued_packets() as u64;
        let num_links = self.noc.spec().num_links() as u64;
        let mut gauges = ProtocolGauges::default();
        let (mut misses, mut persistent, mut reissues, mut tenure) = (0, 0, 0, 0);
        for node in &self.nodes {
            gauges.add(node.gauges());
            let c = node.counters();
            misses += c.misses;
            persistent += c.persistent_requests;
            reissues += c.reissues;
            tenure += c.tenure_timeouts;
        }
        let backlog = if self.open.is_some() {
            self.cores.iter().map(|c| c.backlog.len() as u64).collect()
        } else {
            Vec::new()
        };
        let m = self.metrics.as_mut().expect("checked above");
        let epoch = m.buf.epoch();
        let boundary = (now.as_u64() / epoch) * epoch;
        m.buf.record(&MetricsSample {
            cycle: boundary,
            window: boundary - m.prev_cycle,
            events_delta: events.saturating_sub(m.prev_events),
            queue_len,
            // The warmup boundary resets interconnect stats, so deltas
            // saturate instead of underflowing across that reset.
            link_busy_delta: busy.saturating_sub(m.prev_busy),
            num_links,
            queued_packets,
            tbes: gauges.tbes,
            home_entries: gauges.home_entries,
            persistent_entries: gauges.persistent_entries,
            misses_delta: misses.saturating_sub(m.prev_misses),
            persistent_delta: persistent.saturating_sub(m.prev_persistent),
            reissues_delta: reissues.saturating_sub(m.prev_reissues),
            tenure_timeouts_delta: tenure.saturating_sub(m.prev_tenure),
            backlog,
        });
        m.prev_cycle = boundary;
        m.prev_events = events;
        m.prev_busy = busy;
        m.prev_misses = misses;
        m.prev_persistent = persistent;
        m.prev_reissues = reissues;
        m.prev_tenure = tenure;
    }

    /// Processes one popped event: the livelock bound, then telemetry
    /// observation (sampler, flight recorder, profiler), then dispatch.
    /// With telemetry off this is three `Option` checks on top of the
    /// pre-telemetry loop body.
    #[inline]
    fn step(&mut self, now: Cycle, event: Event) {
        if now.as_u64() > self.config.max_cycles {
            let dump = self.dump_fdr("livelock");
            panic!(
                "simulation exceeded {} cycles: livelock or runaway protocol{}{}",
                self.config.max_cycles,
                self.context_suffix(),
                dump_suffix(&dump),
            );
        }
        if self.metrics.is_some() {
            self.metrics_tick(now);
        }
        let class = class_of(&event);
        if let Some(g) = self.fdr.as_mut() {
            g.0.record(now.as_u64(), class, node_of(&event));
        }
        if self.profile.is_some() {
            let t0 = Instant::now();
            self.dispatch(now, event);
            let elapsed = t0.elapsed();
            if let Some(p) = self.profile.as_mut() {
                p.add(class, elapsed);
            }
        } else {
            self.dispatch(now, event);
        }
    }

    fn dispatch(&mut self, now: Cycle, event: Event) {
        match event {
            Event::CoreIssue { node } => {
                let op = self.cores[node.index()]
                    .pending
                    .take()
                    .expect("issue without a pending op");
                let mut out = self.take_outbox();
                let resp = self.nodes[node.index()].core_request(op, now, &mut out);
                self.process_outbox(node, &mut out, now);
                self.restore_outbox(out);
                match resp {
                    CoreResponse::Hit { version } => {
                        let done_at = now + self.config.protocol.cache_hit_latency;
                        self.complete_and_advance(node, op, version, done_at);
                    }
                    CoreResponse::MissPending => {
                        let core = &mut self.cores[node.index()];
                        core.outstanding = Some(op);
                        core.outstanding_since = now;
                    }
                }
            }
            Event::Timer { node, key } => {
                let mut out = self.take_outbox();
                self.nodes[node.index()].timer_fired(key, now, &mut out);
                self.process_outbox(node, &mut out, now);
                self.restore_outbox(out);
            }
            Event::Arrival { node } => self.handle_arrival(node, now),
            Event::Noc(ev) => {
                // Follow-up NoC events go straight into the queue;
                // deliveries buffer in the persistent scratch because
                // handling them needs `&mut self` again.
                let mut delivered = std::mem::take(&mut self.delivered);
                debug_assert!(delivered.is_empty());
                let Self { noc, queue, .. } = self;
                noc.handle(
                    now,
                    ev,
                    &mut |at, e| queue.push(at, Event::Noc(e)),
                    &mut |n, m| delivered.push((n, m)),
                );
                for (n, m) in delivered.drain(..) {
                    self.deliver(n, m, now);
                }
                self.delivered = delivered;
            }
            Event::Watchdog => {
                // Starvation scan: a miss that has been outstanding for
                // more than the horizon when the scan fires is a liveness
                // failure — this catches deadlocked misses that would
                // otherwise only trip the (much larger) max_cycles bound.
                let horizon = self
                    .config
                    .liveness_horizon
                    .expect("watchdog event without an armed horizon");
                let starved = self.cores.iter().enumerate().find_map(|(i, core)| {
                    core.outstanding.and_then(|op| {
                        let waited = now.saturating_since(core.outstanding_since);
                        (waited > horizon).then_some((i, op, waited))
                    })
                });
                if let Some((i, op, waited)) = starved {
                    let dump = self.dump_fdr("starvation watchdog");
                    panic!(
                        "liveness violation: core {i} miss outstanding for \
                         {waited} cycles (> horizon {horizon}) on {:?} {:?}{}{}",
                        op.kind,
                        op.addr,
                        self.context_suffix(),
                        dump_suffix(&dump),
                    );
                }
                if self.cores.iter().any(|c| !c.finished) {
                    self.queue.push(now + horizon, Event::Watchdog);
                }
            }
        }
    }

    /// Runs the simulation to completion and returns the measurements.
    ///
    /// # Panics
    ///
    /// Panics on any detected protocol bug: an invariant violation (with
    /// checking enabled), a core that never finishes its quota (deadlock
    /// or starvation), a controller left non-quiescent, tokens left in
    /// flight, or simulated time exceeding `max_cycles` (livelock). Also
    /// panics if a recorded trace cannot be written — use
    /// [`System::try_run`] to handle that as a typed error instead.
    pub fn run(self) -> RunResult {
        match self.try_run(None) {
            Ok(result) => result,
            Err(e) => panic!("{e}"),
        }
    }

    /// Runs the simulation to completion, optionally bounded by a
    /// wall-clock `timeout`, surfacing infrastructure failures as typed
    /// [`RunError`]s instead of panics.
    ///
    /// The timeout is cooperative: the event loop compares `Instant::now`
    /// against the deadline every `DEADLINE_CHECK_EVENTS` events (a few
    /// milliseconds of real time), so an expired run returns promptly
    /// without a watchdog thread left burning CPU behind an abandoned
    /// simulation. With `timeout == None` the hot loop contains no clock
    /// reads at all.
    ///
    /// # Errors
    ///
    /// [`RunError::Timeout`] if the wall-clock budget expires, and
    /// [`RunError::TraceWrite`] if the run finished but its recorded
    /// trace could not be written.
    ///
    /// # Panics
    ///
    /// Still panics on detected protocol bugs — see [`System::run`].
    pub fn try_run(mut self, timeout: Option<Duration>) -> Result<RunResult, RunError> {
        match timeout {
            None => {
                while let Some((now, event)) = self.queue.pop() {
                    self.step(now, event);
                }
            }
            Some(limit) => {
                let deadline = Instant::now() + limit;
                let mut countdown = DEADLINE_CHECK_EVENTS;
                while let Some((now, event)) = self.queue.pop() {
                    self.step(now, event);
                    countdown -= 1;
                    if countdown == 0 {
                        countdown = DEADLINE_CHECK_EVENTS;
                        if Instant::now() >= deadline {
                            self.dump_fdr("wall-clock timeout");
                            return Err(RunError::Timeout { limit });
                        }
                    }
                }
            }
        }
        // Forward-progress postconditions.
        for (i, core) in self.cores.iter().enumerate() {
            assert!(
                core.finished && core.outstanding.is_none(),
                "core {i} never finished: completed {} of {} ops (deadlock)",
                core.ops_done,
                self.quota()
            );
        }
        for (i, node) in self.nodes.iter().enumerate() {
            assert!(
                node.is_quiescent(),
                "controller {i} not quiescent at end of run"
            );
        }
        assert_eq!(
            self.auditor.tokens_in_flight(),
            0,
            "tokens still in flight after drain"
        );

        if let Some(recorder) = self.recorder.take() {
            let path = self
                .config
                .record_trace
                .as_ref()
                .expect("recorder implies a record path");
            recorder
                .write_path(path)
                .map_err(|source| RunError::TraceWrite {
                    path: path.clone(),
                    source,
                })?;
        }

        if let Some(m) = self.metrics.take() {
            m.buf
                .write()
                .map_err(|(path, source)| RunError::MetricsWrite { path, source })?;
        }

        let warmup_end = self.warmup_end.expect("all cores passed warmup");
        let open_loop = self.open.take().map(|o| {
            let mut stats = o.stats;
            stats.in_flight_at_horizon = self
                .cores
                .iter()
                .map(|c| {
                    c.backlog.len() as u64
                        + c.pending.is_some() as u64
                        + c.outstanding.is_some() as u64
                        + c.blocked.is_some() as u64
                })
                .sum();
            stats
        });
        let mut counters = ProtocolCounters::default();
        for node in &self.nodes {
            let c = node.counters();
            counters.hits += c.hits;
            counters.misses += c.misses;
            counters.satisfied_before_activation += c.satisfied_before_activation;
            counters.tenure_timeouts += c.tenure_timeouts;
            counters.direct_responses += c.direct_responses;
            counters.direct_ignored += c.direct_ignored;
            counters.reissues += c.reissues;
            counters.persistent_requests += c.persistent_requests;
            counters.writebacks += c.writebacks;
        }
        Ok(RunResult {
            protocol: self.nodes[0].protocol_name(),
            runtime_cycles: self.last_completion.saturating_since(warmup_end),
            ops_completed: self.ops_completed_measured,
            traffic: self.noc.stats().clone(),
            counters,
            measured_misses: self.measured_misses,
            miss_latency_mean: self.miss_latency.mean(),
            miss_latency: self.miss_latency.clone(),
            coherence_checks: self.checker.checks_performed(),
            token_audits: self.auditor.audits_performed(),
            events_processed: self.queue.total_pushed(),
            open_loop,
            spans: self.spans.take(),
            profile: self.profile.take(),
        })
    }
}

/// Classifies a kernel event for the flight recorder and profiler.
fn class_of(event: &Event) -> EventClass {
    match event {
        Event::Noc(_) => EventClass::Noc,
        Event::Timer { .. } => EventClass::Timer,
        Event::CoreIssue { .. } => EventClass::CoreIssue,
        Event::Arrival { .. } => EventClass::Arrival,
        Event::Watchdog => EventClass::Watchdog,
    }
}

/// The node an event targets, for the flight recorder (`u32::MAX` when
/// the event is fabric-internal or global).
fn node_of(event: &Event) -> u32 {
    match event {
        Event::Timer { node, .. } | Event::CoreIssue { node } | Event::Arrival { node } => {
            node.index() as u32
        }
        Event::Noc(_) | Event::Watchdog => u32::MAX,
    }
}

/// Renders the flight-recorder pointer appended to oracle panics.
fn dump_suffix(path: &Option<std::path::PathBuf>) -> String {
    path.as_ref()
        .map(|p| format!("; flight recorder: {}", p.display()))
        .unwrap_or_default()
}

/// How many events [`System::try_run`] processes between wall-clock
/// deadline checks. Events take well under a microsecond each, so this
/// bounds timeout overshoot to a few milliseconds while keeping clock
/// reads out of the hot loop.
pub const DEADLINE_CHECK_EVENTS: u32 = 1 << 14;

/// Builds and runs one simulation.
///
/// See [`System::run`] for the panics that signal protocol bugs.
pub fn run(config: &SimConfig) -> RunResult {
    System::new(config.clone()).run()
}

/// Builds and runs one simulation with typed infrastructure errors and an
/// optional wall-clock budget — see [`System::try_run`].
///
/// # Errors
///
/// [`RunError::Timeout`] if `timeout` expires mid-run,
/// [`RunError::TraceWrite`] if the recorded trace cannot be written.
pub fn try_run(config: &SimConfig, timeout: Option<Duration>) -> Result<RunResult, RunError> {
    System::new(config.clone()).try_run(timeout)
}

/// Runs `seeds` perturbed copies of the simulation, the methodology
/// behind the paper's 95% confidence intervals.
///
/// Replication `i` runs with [`patchsim_kernel::replicate_seed`]`(config.seed, i)`
/// — replication 0 is the configured seed itself, and later replications
/// are SplitMix-derived so experiments with adjacent base seeds never
/// share replication streams (the naive `seed + i` derivation collides
/// `(seed, i)` with `(seed + 1, i - 1)`). The parallel
/// [`Runner`](crate::exp::Runner) uses the same derivation, so its
/// results are bit-identical to this serial loop.
pub fn run_many(config: &SimConfig, seeds: u64) -> Vec<RunResult> {
    assert!(seeds > 0, "at least one run required");
    (0..seeds)
        .map(|i| {
            run(&config
                .clone()
                .with_seed(patchsim_kernel::replicate_seed(config.seed, i)))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PredictorChoice, ProtocolKind, WorkloadSpec};

    fn small(kind: ProtocolKind) -> SimConfig {
        SimConfig::new(kind, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 64,
                write_frac: 0.3,
                think_mean: 5,
            })
            .with_ops_per_core(100)
            .with_checks()
    }

    #[test]
    fn directory_completes_and_checks() {
        let r = run(&small(ProtocolKind::Directory));
        assert_eq!(r.ops_completed, 400);
        assert_eq!(r.protocol, "Directory");
        assert!(r.runtime_cycles > 0);
        assert!(r.coherence_checks >= 400);
    }

    #[test]
    fn patch_none_completes_with_token_audits() {
        let r = run(&small(ProtocolKind::Patch));
        assert_eq!(r.ops_completed, 400);
        assert_eq!(r.protocol, "PATCH");
        assert!(r.token_audits > 0, "audits ran");
    }

    #[test]
    fn patch_all_completes() {
        let cfg = small(ProtocolKind::Patch).with_predictor(PredictorChoice::All);
        let r = run(&cfg);
        assert_eq!(r.ops_completed, 400);
        assert!(
            r.counters.direct_responses > 0,
            "direct requests did real work"
        );
    }

    #[test]
    fn tokenb_completes() {
        let r = run(&small(ProtocolKind::TokenB));
        assert_eq!(r.ops_completed, 400);
        assert_eq!(r.protocol, "TokenB");
    }

    #[test]
    fn identical_seeds_reproduce_exactly() {
        let cfg = small(ProtocolKind::Patch).with_predictor(PredictorChoice::All);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.runtime_cycles, b.runtime_cycles);
        assert_eq!(a.traffic, b.traffic);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = small(ProtocolKind::Directory);
        let a = run(&cfg);
        let b = run(&cfg.clone().with_seed(99));
        assert_ne!(
            (a.runtime_cycles, a.traffic.total_bytes()),
            (b.runtime_cycles, b.traffic.total_bytes())
        );
    }

    #[test]
    fn warmup_excludes_traffic() {
        let cfg = small(ProtocolKind::Directory).with_warmup(50);
        let with_warmup = run(&cfg);
        let without = run(&small(ProtocolKind::Directory).with_ops_per_core(150));
        assert_eq!(with_warmup.ops_completed, 400);
        assert!(
            with_warmup.traffic.total_bytes() < without.traffic.total_bytes(),
            "warmup traffic was discarded"
        );
    }

    /// The completion/outstanding consistency checks are debug-only
    /// (`debug_assert_eq!`); this pins the debug-build panic so the
    /// checks cannot silently rot.
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "completion for the wrong block")]
    fn mismatched_completion_panics_in_debug() {
        use patchsim_mem::{AccessKind, BlockAddr};

        let mut sys = System::new(small(ProtocolKind::Directory));
        sys.cores[0].outstanding = Some(MemOp {
            addr: BlockAddr::new(1),
            kind: AccessKind::Read,
        });
        sys.finish_miss(
            NodeId::new(0),
            Completion {
                addr: BlockAddr::new(2),
                kind: AccessKind::Read,
                version: 0,
                issued_at: Cycle::ZERO,
                marks: patchsim_protocol::SpanMarks::default(),
            },
            Cycle::ZERO,
        );
    }

    #[test]
    fn faulty_runs_reproduce_and_pass_oracles() {
        use patchsim_noc::FaultSpec;
        let cfg = small(ProtocolKind::Patch)
            .with_predictor(PredictorChoice::All)
            .with_faults(FaultSpec::parse("chaos").unwrap())
            .with_liveness_horizon(500_000);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.ops_completed, 400);
        assert_eq!(a.runtime_cycles, b.runtime_cycles, "fault schedule replays");
        assert_eq!(a.traffic, b.traffic);
        // The same mix under a different seed yields a different schedule.
        let c = run(&cfg.clone().with_seed(77));
        assert_ne!(
            (a.runtime_cycles, a.traffic.total_bytes()),
            (c.runtime_cycles, c.traffic.total_bytes())
        );
    }

    #[test]
    fn explicit_faults_none_changes_nothing() {
        use patchsim_noc::FaultSpec;
        let base = run(&small(ProtocolKind::Directory));
        let spelled = run(&small(ProtocolKind::Directory).with_faults(FaultSpec::none()));
        assert_eq!(base.runtime_cycles, spelled.runtime_cycles);
        assert_eq!(base.traffic, spelled.traffic);
        assert_eq!(base.events_processed, spelled.events_processed);
    }

    #[test]
    fn try_run_times_out_on_a_tiny_budget() {
        let cfg = small(ProtocolKind::Directory).with_ops_per_core(50_000);
        match try_run(&cfg, Some(Duration::from_nanos(1))) {
            Err(RunError::Timeout { limit }) => assert_eq!(limit, Duration::from_nanos(1)),
            other => panic!("expected a timeout, got {other:?}"),
        }
    }

    #[test]
    fn try_run_without_timeout_matches_run() {
        let cfg = small(ProtocolKind::Directory);
        let a = run(&cfg);
        let b = try_run(&cfg, None).expect("no infrastructure failure");
        assert_eq!(a.digest(), b.digest());
        // A generous budget changes nothing either.
        let c = try_run(&cfg, Some(Duration::from_secs(3600))).unwrap();
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn try_run_surfaces_trace_write_failure() {
        let path = std::env::temp_dir()
            .join(format!("patchsim-no-such-dir-{}", std::process::id()))
            .join("missing")
            .join("t.ptrc");
        let cfg = small(ProtocolKind::Directory)
            .with_ops_per_core(20)
            .with_record_trace(path.clone());
        match try_run(&cfg, None) {
            Err(RunError::TraceWrite { path: p, .. }) => assert_eq!(p, path),
            other => panic!("expected a trace-write error, got {other:?}"),
        }
    }

    /// The panicking `run` entry point keeps its original trace-failure
    /// message (callers that want the typed error use `try_run`).
    #[test]
    #[should_panic(expected = "failed to write trace")]
    fn run_still_panics_on_trace_write_failure() {
        let path = std::env::temp_dir()
            .join(format!("patchsim-no-such-dir-{}", std::process::id()))
            .join("missing")
            .join("t.ptrc");
        let _ = run(&small(ProtocolKind::Directory)
            .with_ops_per_core(20)
            .with_record_trace(path));
    }

    #[test]
    fn run_many_perturbs_seeds() {
        let results = run_many(&small(ProtocolKind::Directory).with_ops_per_core(30), 3);
        assert_eq!(results.len(), 3);
        let runtimes: Vec<u64> = results.iter().map(|r| r.runtime_cycles).collect();
        assert!(runtimes.windows(2).any(|w| w[0] != w[1]));
    }
}
