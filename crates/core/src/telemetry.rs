//! Deterministic, read-only run telemetry.
//!
//! Four features, all off by default (see
//! [`TelemetryConfig`](crate::TelemetryConfig)), all strictly
//! observational:
//!
//! * **Epoch metrics** — a cycle-driven sampler that emits a versioned
//!   JSONL time series of link utilization, queue depths, event-queue
//!   occupancy, protocol table occupancy, and per-core open-loop backlog.
//! * **Miss-lifecycle spans** — per-miss phase breakdowns
//!   (queue wait → network → home/ordering → token wait) aggregated into
//!   per-phase [`Histogram`]s.
//! * **Flight recorder** — a bounded ring of recent events dumped to a
//!   `.fdr` file when a safety or liveness oracle trips.
//! * **Self-profiling** — host wall-time and event counts per event
//!   class.
//!
//! The determinism contract: telemetry never draws from an RNG, never
//! schedules an event, and never changes event order. The sampler runs
//! inline when an already-popped event crosses an epoch boundary — it
//! pushes nothing into the event queue, so `RunResult::events_processed`
//! (and therefore the result digest) is identical with telemetry on or
//! off. Metrics rows are a pure function of simulation state at epoch
//! boundaries, so the JSONL output is byte-identical regardless of how
//! many runner threads execute sibling cells.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::PathBuf;
use std::time::Duration;

use patchsim_kernel::stats::Histogram;

/// Format tag on the first line of every metrics JSONL file.
pub const METRICS_FORMAT: &str = "patchsim-metrics";
/// Schema version of the metrics JSONL format.
pub const METRICS_VERSION: u32 = 1;
/// Format tag on the first line of every flight-recorder dump.
pub const FDR_FORMAT: &str = "patchsim-fdr";
/// Schema version of the flight-recorder dump format.
pub const FDR_VERSION: u32 = 1;

/// Classification of kernel events for the flight recorder and the
/// self-profiler. Mirrors the core event loop's (private) event enum.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventClass {
    /// An interconnect event (hop, delivery, drain).
    Noc,
    /// A protocol timer firing.
    Timer,
    /// A core issuing its next operation.
    CoreIssue,
    /// An open-loop operation arriving at its core.
    Arrival,
    /// A starvation-watchdog scan.
    Watchdog,
}

impl EventClass {
    /// Every class, in profile/dump order.
    pub const ALL: [EventClass; 5] = [
        EventClass::Noc,
        EventClass::Timer,
        EventClass::CoreIssue,
        EventClass::Arrival,
        EventClass::Watchdog,
    ];

    /// Stable lower-case label (used in JSON output).
    pub fn label(self) -> &'static str {
        match self {
            EventClass::Noc => "noc",
            EventClass::Timer => "timer",
            EventClass::CoreIssue => "core_issue",
            EventClass::Arrival => "arrival",
            EventClass::Watchdog => "watchdog",
        }
    }

    fn index(self) -> usize {
        match self {
            EventClass::Noc => 0,
            EventClass::Timer => 1,
            EventClass::CoreIssue => 2,
            EventClass::Arrival => 3,
            EventClass::Watchdog => 4,
        }
    }
}

// ---------------------------------------------------------------------
// Epoch metrics
// ---------------------------------------------------------------------

/// One epoch-boundary sample of simulation gauges, produced by the core
/// event loop and serialized by [`MetricsBuf::record`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSample {
    /// The epoch boundary this row describes (a multiple of the epoch
    /// length).
    pub cycle: u64,
    /// Cycles since the previous row (≥ one epoch; larger when the
    /// simulation crossed several boundaries between events).
    pub window: u64,
    /// Kernel events pushed since the previous sample.
    pub events_delta: u64,
    /// Event-queue occupancy at the boundary.
    pub queue_len: u64,
    /// Link busy-cycles accumulated since the previous sample.
    pub link_busy_delta: u64,
    /// Number of interconnect links (the utilization denominator).
    pub num_links: u64,
    /// Packets sitting in link queues at the boundary.
    pub queued_packets: u64,
    /// Outstanding transaction-buffer entries, summed over nodes.
    pub tbes: u64,
    /// Home/directory/arbiter table entries, summed over nodes.
    pub home_entries: u64,
    /// Persistent-request table entries, summed over nodes.
    pub persistent_entries: u64,
    /// Demand misses issued since the previous sample.
    pub misses_delta: u64,
    /// Persistent requests invoked since the previous sample.
    pub persistent_delta: u64,
    /// Transient-request reissues since the previous sample.
    pub reissues_delta: u64,
    /// Token-tenure timeouts since the previous sample.
    pub tenure_timeouts_delta: u64,
    /// Open-loop backlog depth per core; empty for closed-loop runs.
    pub backlog: Vec<u64>,
}

/// In-memory epoch-metrics sink: rows accumulate in a buffer and are
/// written to the configured path in one shot at the end of the run, so
/// no filesystem state can perturb (or be perturbed by) the hot loop.
#[derive(Debug)]
pub struct MetricsBuf {
    path: PathBuf,
    epoch: u64,
    /// The next epoch boundary to sample at.
    pub next_sample: u64,
    rows: String,
}

impl MetricsBuf {
    /// Creates a sink writing to `path`, sampling every `epoch` cycles,
    /// with a self-describing header row. `header_fields` is a
    /// pre-rendered fragment of additional `"key":value` JSON pairs
    /// describing the run (protocol, nodes, seed, ...).
    pub fn new(path: PathBuf, epoch: u64, header_fields: &str) -> Self {
        let mut rows = String::with_capacity(4096);
        let _ = writeln!(
            rows,
            "{{\"format\":\"{METRICS_FORMAT}\",\"version\":{METRICS_VERSION},\
             \"epoch\":{epoch}{header_fields}}}"
        );
        MetricsBuf {
            path,
            epoch,
            next_sample: epoch,
            rows,
        }
    }

    /// The configured epoch length in cycles.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends one sample row and advances the sampling deadline.
    pub fn record(&mut self, s: &MetricsSample) {
        let denom = s.num_links.max(1) * s.window.max(1);
        let util = s.link_busy_delta as f64 / denom as f64;
        let _ = write!(
            self.rows,
            "{{\"cycle\":{},\"window\":{},\"events\":{},\"queue_len\":{},\"link_busy\":{},\
             \"link_util\":{util:.6},\"queued_packets\":{},\"tbes\":{},\
             \"home_entries\":{},\"persistent_entries\":{},\"misses\":{},\
             \"persistent_requests\":{},\"reissues\":{},\"tenure_timeouts\":{}",
            s.cycle,
            s.window,
            s.events_delta,
            s.queue_len,
            s.link_busy_delta,
            s.queued_packets,
            s.tbes,
            s.home_entries,
            s.persistent_entries,
            s.misses_delta,
            s.persistent_delta,
            s.reissues_delta,
            s.tenure_timeouts_delta,
        );
        if !s.backlog.is_empty() {
            let _ = write!(self.rows, ",\"backlog\":[");
            for (i, b) in s.backlog.iter().enumerate() {
                if i > 0 {
                    self.rows.push(',');
                }
                let _ = write!(self.rows, "{b}");
            }
            self.rows.push(']');
        }
        self.rows.push_str("}\n");
        self.next_sample = s.cycle + self.epoch;
    }

    /// Writes the buffered rows to the configured path.
    ///
    /// # Errors
    ///
    /// Any filesystem error from creating or writing the file.
    pub fn write(self) -> Result<(), (PathBuf, io::Error)> {
        fs::write(&self.path, self.rows.as_bytes()).map_err(|e| (self.path, e))
    }
}

// ---------------------------------------------------------------------
// Miss-lifecycle spans
// ---------------------------------------------------------------------

/// Per-phase miss-lifecycle histograms, recorded on the same measurement
/// gate as [`RunResult::miss_latency`](crate::RunResult::miss_latency).
///
/// The three protocol phases partition each measured miss exactly:
/// `network + home + token_wait` equals the end-to-end miss latency for
/// every sample, so the phase sums reconcile with the latency histogram.
/// `queue_wait` (arrival → issue, open-loop only) sits *before* the miss
/// clock starts and is not part of that identity.
#[derive(Debug, Clone, Default)]
pub struct SpanStats {
    /// Open-loop arrival → issue wait; empty for closed-loop runs.
    pub queue_wait: Histogram,
    /// Issue → first response of any kind (request transit + first
    /// responder's turnaround).
    pub network: Histogram,
    /// First response → ordering point (directory grant / activation);
    /// zero for misses satisfied without an explicit ordering message.
    pub home: Histogram,
    /// Ordering point → completion (collecting remaining tokens or
    /// invalidation acks).
    pub token_wait: Histogram,
}

impl SpanStats {
    /// Pools another run's spans into this one (histograms merged).
    pub fn merge(&mut self, other: &SpanStats) {
        self.queue_wait.merge(&other.queue_wait);
        self.network.merge(&other.network);
        self.home.merge(&other.home);
        self.token_wait.merge(&other.token_wait);
    }
}

// ---------------------------------------------------------------------
// Self-profiling
// ---------------------------------------------------------------------

/// Host-side cost of one event class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassProfile {
    /// Events of this class dispatched.
    pub events: u64,
    /// Total host wall-time spent dispatching them, in nanoseconds.
    pub nanos: u64,
}

/// Wall-time and event-count per event class, measured around the
/// dispatch call. Host-time observations only — never folded into the
/// result digest and never persisted to the result store.
#[derive(Debug, Clone, Default)]
pub struct ProfileStats {
    classes: [ClassProfile; 5],
}

impl ProfileStats {
    /// Adds one dispatched event of `class` taking `elapsed` host time.
    pub fn add(&mut self, class: EventClass, elapsed: Duration) {
        let c = &mut self.classes[class.index()];
        c.events += 1;
        c.nanos += elapsed.as_nanos() as u64;
    }

    /// The profile for one event class.
    pub fn class(&self, class: EventClass) -> ClassProfile {
        self.classes[class.index()]
    }

    /// Sums another profile into this one (for multi-run aggregation).
    pub fn merge(&mut self, other: &ProfileStats) {
        for (a, b) in self.classes.iter_mut().zip(other.classes.iter()) {
            a.events += b.events;
            a.nanos += b.nanos;
        }
    }
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

/// One ring entry: an event the core loop dispatched.
#[derive(Debug, Clone, Copy)]
pub struct FdrRecord {
    /// Simulated cycle of the event.
    pub cycle: u64,
    /// Event classification.
    pub class: EventClass,
    /// The node the event targeted, when it has one (`u32::MAX` for
    /// fabric-internal and global events).
    pub node: u32,
}

/// Capacity of the flight-recorder ring (most recent events kept).
pub const FDR_CAPACITY: usize = 4096;

/// A bounded ring of the most recent dispatched events plus the run
/// context needed to make a dump self-describing.
///
/// The recorder dumps itself when the simulation trips a safety or
/// liveness oracle (the dump site passes the reason), and — via the
/// guard's `Drop` — when a panic unwinds through the event loop, so a
/// cell isolated by the experiment runner still leaves a dump behind.
#[derive(Debug)]
pub struct FlightRecorder {
    dir: PathBuf,
    /// Distinguishes concurrent cells' dumps (the config digest).
    tag: u64,
    /// Pre-rendered `"key":value` JSON pairs describing the run.
    header_fields: String,
    ring: Vec<FdrRecord>,
    /// Next write position (ring is full once `len == capacity`).
    head: usize,
    total: u64,
    dumped: bool,
}

impl FlightRecorder {
    /// Creates a recorder that dumps into `dir`, tagged with the run's
    /// config digest and described by `header_fields` (pre-rendered
    /// JSON pairs).
    pub fn new(dir: PathBuf, tag: u64, header_fields: String) -> Self {
        FlightRecorder {
            dir,
            tag,
            header_fields,
            ring: Vec::with_capacity(FDR_CAPACITY),
            head: 0,
            total: 0,
            dumped: false,
        }
    }

    /// Records one dispatched event (cheap: a bounded ring write).
    #[inline]
    pub fn record(&mut self, cycle: u64, class: EventClass, node: u32) {
        let rec = FdrRecord { cycle, class, node };
        if self.ring.len() < FDR_CAPACITY {
            self.ring.push(rec);
        } else {
            self.ring[self.head] = rec;
        }
        self.head = (self.head + 1) % FDR_CAPACITY;
        self.total += 1;
    }

    /// Dumps the ring to a `.fdr` JSONL file under the configured
    /// directory and reports it on stderr. Idempotent: only the first
    /// call (per recorder) writes; later calls — including the
    /// panic-unwind `Drop` after an explicit oracle dump — are no-ops.
    /// Returns the dump path when a dump was written.
    pub fn dump(&mut self, reason: &str) -> Option<PathBuf> {
        if self.dumped {
            return None;
        }
        self.dumped = true;
        let path = self.dir.join(format!("run-{:016x}.fdr", self.tag));
        let mut out = String::with_capacity(64 * (self.ring.len() + 1));
        let _ = writeln!(
            out,
            "{{\"format\":\"{FDR_FORMAT}\",\"version\":{FDR_VERSION},\
             \"reason\":{:?},\"events_total\":{}{}}}",
            reason, self.total, self.header_fields
        );
        // Oldest first: the ring starts at `head` once it has wrapped.
        let n = self.ring.len();
        let start = if n < FDR_CAPACITY { 0 } else { self.head };
        for i in 0..n {
            let rec = &self.ring[(start + i) % n.max(1)];
            if rec.node == u32::MAX {
                let _ = writeln!(
                    out,
                    "{{\"cycle\":{},\"class\":\"{}\"}}",
                    rec.cycle,
                    rec.class.label()
                );
            } else {
                let _ = writeln!(
                    out,
                    "{{\"cycle\":{},\"class\":\"{}\",\"node\":{}}}",
                    rec.cycle,
                    rec.class.label(),
                    rec.node
                );
            }
        }
        if fs::create_dir_all(&self.dir).is_err() || fs::write(&path, out.as_bytes()).is_err() {
            eprintln!(
                "patchsim: flight recorder dump to {} failed ({reason})",
                path.display()
            );
            return None;
        }
        eprintln!(
            "patchsim: flight recorder dumped {} events to {} ({reason})",
            n,
            path.display()
        );
        Some(path)
    }

    /// Whether this recorder has already dumped.
    pub fn has_dumped(&self) -> bool {
        self.dumped
    }
}

/// Owns a [`FlightRecorder`] and dumps it when a panic unwinds past it —
/// the backstop for protocol-bug panics that do not pass through an
/// explicit oracle dump site (invariant violations, quiescence failures).
#[derive(Debug)]
pub struct FdrGuard(pub FlightRecorder);

impl Drop for FdrGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.dump("panic unwind");
        }
    }
}

/// Renders the run-context header pairs shared by the metrics header and
/// the flight-recorder header, as a JSON fragment of `,"key":value`
/// pairs. String values are escaped via `Debug` formatting.
pub fn run_header_fields(
    protocol: &str,
    num_nodes: u16,
    fabric: &str,
    workload: &str,
    seed: u64,
) -> String {
    format!(
        ",\"protocol\":{protocol:?},\"nodes\":{num_nodes},\"fabric\":{fabric:?},\
         \"workload\":{workload:?},\"seed\":{seed}"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_rows_are_deterministic_json() {
        let mut buf = MetricsBuf::new(PathBuf::from("/dev/null"), 100, "");
        buf.record(&MetricsSample {
            cycle: 100,
            window: 100,
            events_delta: 42,
            num_links: 4,
            link_busy_delta: 100,
            backlog: vec![1, 2],
            ..MetricsSample::default()
        });
        assert_eq!(buf.next_sample, 200);
        assert!(buf.rows.contains("\"format\":\"patchsim-metrics\""));
        assert!(buf.rows.contains("\"link_util\":0.250000"));
        assert!(buf.rows.contains("\"backlog\":[1,2]"));
    }

    #[test]
    fn recorder_ring_wraps_and_dumps_once() {
        let dir = std::env::temp_dir().join(format!("patchsim-fdr-test-{}", std::process::id()));
        let mut fdr = FlightRecorder::new(dir.clone(), 7, String::new());
        for i in 0..(FDR_CAPACITY as u64 + 10) {
            fdr.record(i, EventClass::Noc, 0);
        }
        let path = fdr.dump("test").expect("first dump writes");
        assert!(path.ends_with("run-0000000000000007.fdr"));
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), FDR_CAPACITY + 1);
        assert!(lines[0].contains("\"reason\":\"test\""));
        // Oldest surviving record first.
        assert!(lines[1].contains("\"cycle\":10"));
        assert!(fdr.dump("again").is_none(), "second dump is a no-op");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn profile_accumulates_per_class() {
        let mut p = ProfileStats::default();
        p.add(EventClass::Noc, Duration::from_nanos(50));
        p.add(EventClass::Noc, Duration::from_nanos(25));
        p.add(EventClass::Timer, Duration::from_nanos(10));
        assert_eq!(p.class(EventClass::Noc).events, 2);
        assert_eq!(p.class(EventClass::Noc).nanos, 75);
        assert_eq!(p.class(EventClass::Timer).events, 1);
        assert_eq!(p.class(EventClass::Arrival), ClassProfile::default());
    }
}
