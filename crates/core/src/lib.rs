//! # patchsim
//!
//! A full-system reproduction of **PATCH** — the Predictive/Adaptive Token
//! Counting Hybrid cache-coherence protocol — and of **token tenure**, its
//! broadcast-free forward-progress mechanism, from:
//!
//! > A. Raghavan, C. Blundell, and M. M. K. Martin. *Token Tenure:
//! > PATCHing Token Counting Using Directory-Based Cache Coherence.*
//! > MICRO-41, 2008, pp. 47–58.
//!
//! This crate is the public API: it assembles the substrates built in the
//! sibling crates (DES kernel, 2D-torus interconnect, cache/directory
//! structures, the three coherence protocols, destination-set predictors,
//! and synthetic workloads) into a runnable simulated multicore, and
//! provides the declarative experiment-plan API ([`exp`]) used to
//! regenerate every figure of the paper's evaluation.
//!
//! ## Quickstart: a single run
//!
//! ```
//! use patchsim::{SimConfig, ProtocolKind, PredictorChoice};
//!
//! // A 16-core PATCH-All system running the paper's microbenchmark.
//! let config = SimConfig::new(ProtocolKind::Patch, 16)
//!     .with_predictor(PredictorChoice::All)
//!     .with_ops_per_core(200)
//!     .with_seed(42);
//! let result = patchsim::run(&config);
//! assert_eq!(result.ops_completed, 16 * 200);
//! assert!(result.runtime_cycles > 0);
//! ```
//!
//! ## Quickstart: a declarative experiment sweep
//!
//! Every paper figure is a [`Sweep`](exp::Sweep): labeled axes crossed
//! into a grid of configurations, executed by the parallel deterministic
//! [`Runner`](exp::Runner), rendered as text, CSV, or JSON. A 2-axis
//! sweep — two protocols × two write ratios, two perturbed seeds per
//! cell:
//!
//! ```
//! use patchsim::exp::{AxisValue, Format, Runner, Sweep};
//! use patchsim::{PredictorChoice, ProtocolKind, SimConfig, WorkloadSpec};
//!
//! fn microbench(write_frac: f64) -> WorkloadSpec {
//!     WorkloadSpec::Microbenchmark { table_blocks: 64, write_frac, think_mean: 5 }
//! }
//!
//! let base = SimConfig::new(ProtocolKind::Directory, 4)
//!     .with_workload(microbench(0.3))
//!     .with_ops_per_core(60);
//! let plan = Sweep::new("demo sweep", base)
//!     .axis(
//!         "config",
//!         vec![
//!             AxisValue::new("Directory", |c| c),
//!             AxisValue::new("PATCH-All", |c| {
//!                 c.with_kind(ProtocolKind::Patch)
//!                     .with_predictor(PredictorChoice::All)
//!             }),
//!         ],
//!     )
//!     .axis(
//!         "writes",
//!         vec![
//!             AxisValue::new("30%", |c| c.with_workload(microbench(0.3))),
//!             AxisValue::new("60%", |c| c.with_workload(microbench(0.6))),
//!         ],
//!     )
//!     .seeds(2)
//!     .build();
//! let table = Runner::new() // worker pool; identical output at any thread count
//!     .run(&plan)
//!     .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
//!     .with_normalized_column("norm_runtime", 3, "config", "Directory", |cell| {
//!         cell.summary.runtime.mean
//!     });
//! assert_eq!(table.cells().len(), 4);
//! let mut out = Vec::new();
//! table.emit(Format::Csv, &mut out).unwrap();
//! let csv = String::from_utf8(out).unwrap();
//! assert!(csv.starts_with("config,writes,runtime,runtime_ci95,norm_runtime"));
//! assert_eq!(csv.lines().count(), 5); // header + one record per cell
//! ```
//!
//! ## What the simulator checks while it runs
//!
//! With [`CheckLevel::Assert`] (the default for tests), every run
//! continuously verifies:
//!
//! * **Token conservation** (Table 1, Rule 1) — per-block token counts
//!   across all caches, homes, and in-flight messages always sum to `T`,
//!   with exactly one owner token.
//! * **Coherence** — writes to a block produce strictly serialized
//!   versions; reads observe the latest written version.
//! * **Forward progress** — every issued operation completes and the
//!   system fully quiesces at the end of a run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod config;
pub mod exp;
mod report;
mod system;
pub mod telemetry;

pub use checker::{CoherenceChecker, TokenAuditor};
pub use config::{CheckLevel, SimConfig, TelemetryConfig};
pub use report::{
    summarize, ClassBytes, LatencyPercentiles, OpenLoopSummary, RunSummary, SpanSummary,
};
pub use system::{run, run_many, try_run, OpenLoopStats, RunError, RunResult, System};
pub use telemetry::{EventClass, FlightRecorder, ProfileStats, SpanStats};

// Re-export the vocabulary types users need to configure and interpret
// experiments, so downstream code can depend on `patchsim` alone.
pub use patchsim_kernel::stats::ConfidenceInterval;
pub use patchsim_kernel::{replicate_seed, stream_seed, Cycle, SimRng};
pub use patchsim_mem::{AccessKind, BlockAddr, CacheGeometry, SharerEncoding};
pub use patchsim_noc::{
    DegradeFault, DelayFault, DuplicateFault, FabricConfig, FabricKind, FaultSpec, LinkBandwidth,
    LinkParams, NodeId, Priority, ReorderFault, StormFault, TrafficClass, TrafficStats,
};
pub use patchsim_predictor::PredictorChoice;
pub use patchsim_protocol::{ProtocolConfig, ProtocolCounters, ProtocolKind, TenureConfig};
pub use patchsim_trace::{TraceError, TraceReader, TraceWriter};
pub use patchsim_workload::{
    presets, service_presets, ArrivalProcess, ArrivalProfile, OverloadPolicy, ServiceProfile,
    SharingProfile, TraceData, WorkloadSpec, ZipfSampler,
};
