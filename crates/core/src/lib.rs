//! # patchsim
//!
//! A full-system reproduction of **PATCH** — the Predictive/Adaptive Token
//! Counting Hybrid cache-coherence protocol — and of **token tenure**, its
//! broadcast-free forward-progress mechanism, from:
//!
//! > A. Raghavan, C. Blundell, and M. M. K. Martin. *Token Tenure:
//! > PATCHing Token Counting Using Directory-Based Cache Coherence.*
//! > MICRO-41, 2008, pp. 47–58.
//!
//! This crate is the public API: it assembles the substrates built in the
//! sibling crates (DES kernel, 2D-torus interconnect, cache/directory
//! structures, the three coherence protocols, destination-set predictors,
//! and synthetic workloads) into a runnable simulated multicore, and
//! provides the experiment runner used to regenerate every figure of the
//! paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use patchsim::{SimConfig, ProtocolKind, PredictorChoice};
//!
//! // A 16-core PATCH-All system running the paper's microbenchmark.
//! let config = SimConfig::new(ProtocolKind::Patch, 16)
//!     .with_predictor(PredictorChoice::All)
//!     .with_ops_per_core(200)
//!     .with_seed(42);
//! let result = patchsim::run(&config);
//! assert_eq!(result.ops_completed, 16 * 200);
//! assert!(result.runtime_cycles > 0);
//! ```
//!
//! ## What the simulator checks while it runs
//!
//! With [`CheckLevel::Assert`] (the default for tests), every run
//! continuously verifies:
//!
//! * **Token conservation** (Table 1, Rule 1) — per-block token counts
//!   across all caches, homes, and in-flight messages always sum to `T`,
//!   with exactly one owner token.
//! * **Coherence** — writes to a block produce strictly serialized
//!   versions; reads observe the latest written version.
//! * **Forward progress** — every issued operation completes and the
//!   system fully quiesces at the end of a run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checker;
mod config;
mod report;
mod system;

pub use checker::{CoherenceChecker, TokenAuditor};
pub use config::{CheckLevel, SimConfig};
pub use report::{summarize, RunSummary};
pub use system::{run, run_many, RunResult, System};

// Re-export the vocabulary types users need to configure and interpret
// experiments, so downstream code can depend on `patchsim` alone.
pub use patchsim_kernel::stats::ConfidenceInterval;
pub use patchsim_kernel::{Cycle, SimRng};
pub use patchsim_mem::{AccessKind, BlockAddr, CacheGeometry, SharerEncoding};
pub use patchsim_noc::{LinkBandwidth, NodeId, Priority, TrafficClass, TrafficStats};
pub use patchsim_predictor::PredictorChoice;
pub use patchsim_protocol::{ProtocolConfig, ProtocolCounters, ProtocolKind, TenureConfig};
pub use patchsim_workload::{presets, SharingProfile, WorkloadSpec};
