//! Declarative experiment plans: labeled axes crossed into a grid of
//! named simulation configurations.

use std::collections::HashSet;
use std::fmt;

use crate::SimConfig;

/// The configuration transform one axis value applies.
pub type ConfigTransform = dyn Fn(SimConfig) -> SimConfig;

/// A cell predicate used by [`Sweep::filter`] to make grids sparse.
pub type CellFilter = Box<dyn Fn(&Cell) -> bool>;

/// One value of a sweep axis: a display label plus the configuration
/// transform the value applies to every cell it participates in.
///
/// Transforms run in axis declaration order, so a later axis sees the
/// settings established by earlier ones (e.g. a sharer-encoding axis can
/// follow a protocol axis and read `config.protocol.num_nodes`).
pub struct AxisValue {
    label: String,
    apply: Box<ConfigTransform>,
}

impl AxisValue {
    /// Creates an axis value from a label and a configuration transform.
    pub fn new(label: impl Into<String>, apply: impl Fn(SimConfig) -> SimConfig + 'static) -> Self {
        AxisValue {
            label: label.into(),
            apply: Box::new(apply),
        }
    }

    /// The value's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

impl fmt::Debug for AxisValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AxisValue")
            .field("label", &self.label)
            .finish_non_exhaustive()
    }
}

#[derive(Debug)]
struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

/// Builder for an [`ExperimentPlan`]: a base configuration plus labeled
/// axes whose cross product defines the experiment grid.
///
/// # Examples
///
/// ```
/// use patchsim::exp::{AxisValue, Sweep};
/// use patchsim::{ProtocolKind, SimConfig};
///
/// let base = SimConfig::new(ProtocolKind::Directory, 4).with_ops_per_core(50);
/// let plan = Sweep::new("demo", base)
///     .axis(
///         "config",
///         vec![
///             AxisValue::new("Directory", |c| c),
///             AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
///         ],
///     )
///     .axis(
///         "seed",
///         vec![
///             AxisValue::new("a", |c| c.with_seed(1)),
///             AxisValue::new("b", |c| c.with_seed(2)),
///         ],
///     )
///     .build();
/// assert_eq!(plan.len(), 4);
/// assert_eq!(plan.cells()[1].labels, vec!["Directory", "b"]);
/// ```
pub struct Sweep {
    name: String,
    base: SimConfig,
    axes: Vec<Axis>,
    seeds: u64,
    filters: Vec<CellFilter>,
}

impl fmt::Debug for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Sweep")
            .field("name", &self.name)
            .field("axes", &self.axes)
            .field("seeds", &self.seeds)
            .field("filters", &self.filters.len())
            .finish_non_exhaustive()
    }
}

impl Sweep {
    /// Starts a sweep named `name` whose cells all derive from `base`.
    pub fn new(name: impl Into<String>, base: SimConfig) -> Self {
        Sweep {
            name: name.into(),
            base,
            axes: Vec::new(),
            seeds: 1,
            filters: Vec::new(),
        }
    }

    /// Appends an axis. The grid iterates later axes fastest (the last
    /// axis is the innermost loop).
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, if a value label repeats within the
    /// axis, or if `name` repeats an earlier axis name — all of which
    /// would make cells or normalization baselines ambiguous.
    pub fn axis(mut self, name: impl Into<String>, values: Vec<AxisValue>) -> Self {
        let name = name.into();
        assert!(!values.is_empty(), "axis '{name}' has no values");
        assert!(
            !self.axes.iter().any(|a| a.name == name),
            "duplicate axis name '{name}'"
        );
        let mut seen = HashSet::new();
        for v in &values {
            assert!(
                seen.insert(v.label.clone()),
                "duplicate label '{}' on axis '{name}'",
                v.label
            );
        }
        self.axes.push(Axis { name, values });
        self
    }

    /// Sets the number of perturbed-seed replications the runner executes
    /// per cell (default 1).
    ///
    /// # Panics
    ///
    /// Panics if `seeds` is zero.
    pub fn seeds(mut self, seeds: u64) -> Self {
        assert!(seeds > 0, "at least one replication required");
        self.seeds = seeds;
        self
    }

    /// Keeps only cells for which `keep` returns true, making the grid
    /// sparse (e.g. a coarseness axis clamped to the cell's core count).
    /// Filters see the fully assembled cell — labels and configuration —
    /// and apply when the plan is built.
    pub fn filter(mut self, keep: impl Fn(&Cell) -> bool + 'static) -> Self {
        self.filters.push(Box::new(keep));
        self
    }

    /// Materialises the grid: every combination of axis values, applied to
    /// the base configuration in axis order, minus filtered-out cells.
    ///
    /// # Panics
    ///
    /// Panics if no axis was declared, or if the filters reject every
    /// cell.
    pub fn build(self) -> ExperimentPlan {
        assert!(!self.axes.is_empty(), "a plan needs at least one axis");
        let total: usize = self.axes.iter().map(|a| a.values.len()).product();
        let mut cells = Vec::with_capacity(total);
        let mut coords = vec![0usize; self.axes.len()];
        for _ in 0..total {
            let mut config = self.base.clone();
            let mut labels = Vec::with_capacity(self.axes.len());
            for (axis, &vi) in self.axes.iter().zip(coords.iter()) {
                let value = &axis.values[vi];
                labels.push(value.label.clone());
                config = (value.apply)(config);
            }
            let cell = Cell { labels, config };
            if self.filters.iter().all(|keep| keep(&cell)) {
                cells.push(cell);
            }
            // Odometer increment, last axis fastest.
            for d in (0..coords.len()).rev() {
                coords[d] += 1;
                if coords[d] < self.axes[d].values.len() {
                    break;
                }
                coords[d] = 0;
            }
        }
        assert!(!cells.is_empty(), "filters rejected every cell");
        ExperimentPlan {
            name: self.name,
            axis_names: self.axes.into_iter().map(|a| a.name).collect(),
            seeds: self.seeds,
            cells,
        }
    }
}

/// One cell of an experiment grid: its axis labels and the fully
/// assembled configuration to simulate. A cell's position is its index
/// in [`ExperimentPlan::cells`] (grid order, last axis fastest, minus
/// filtered-out cells).
#[derive(Debug, Clone)]
pub struct Cell {
    /// One label per axis, in axis declaration order.
    pub labels: Vec<String>,
    /// The configuration this cell simulates.
    pub config: SimConfig,
}

impl Cell {
    /// The cell's display name: its labels joined with `/`.
    pub fn name(&self) -> String {
        self.labels.join("/")
    }
}

/// A materialised experiment grid, ready for [`Runner::run`].
///
/// [`Runner::run`]: crate::exp::Runner::run
#[derive(Debug)]
pub struct ExperimentPlan {
    name: String,
    axis_names: Vec<String>,
    seeds: u64,
    cells: Vec<Cell>,
}

impl ExperimentPlan {
    /// The plan's name (becomes the result table's title).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Axis names, in declaration order.
    pub fn axis_names(&self) -> &[String] {
        &self.axis_names
    }

    /// Perturbed-seed replications per cell.
    pub fn seeds(&self) -> u64 {
        self.seeds
    }

    /// The grid cells, in grid order.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Mutable access to the grid cells, for per-cell adjustments after
    /// the grid is built (e.g. arming trace recording on a single cell).
    pub fn cells_mut(&mut self) -> &mut [Cell] {
        &mut self.cells
    }

    /// Keeps only the cells `f` accepts, preserving grid order. This is
    /// how `--shard K/N` partitions a sweep: each shard retains the
    /// cells whose store key hashes to it, runs them into its own
    /// `--store`, and `merge-store` reassembles the full sweep.
    pub fn retain(&mut self, f: impl FnMut(&Cell) -> bool) {
        self.cells.retain(f);
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the grid is empty (never true for a built plan).
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Total simulation runs the runner will execute (`len × seeds`).
    pub fn total_runs(&self) -> u64 {
        self.cells.len() as u64 * self.seeds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinkBandwidth, ProtocolKind};

    fn base() -> SimConfig {
        SimConfig::new(ProtocolKind::Directory, 4)
    }

    fn plan_2x3() -> ExperimentPlan {
        Sweep::new("p", base())
            .axis(
                "config",
                vec![
                    AxisValue::new("Directory", |c| c),
                    AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
                ],
            )
            .axis(
                "bw",
                vec![
                    AxisValue::new("1", |c| c.with_bandwidth(LinkBandwidth::BytesPerCycle(1.0))),
                    AxisValue::new("2", |c| c.with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))),
                    AxisValue::new("inf", |c| c.with_bandwidth(LinkBandwidth::Unbounded)),
                ],
            )
            .seeds(3)
            .build()
    }

    #[test]
    fn grid_is_cross_product_in_row_major_order() {
        let plan = plan_2x3();
        assert_eq!(plan.len(), 6);
        assert_eq!(plan.total_runs(), 18);
        assert_eq!(plan.axis_names(), &["config", "bw"]);
        let names: Vec<String> = plan.cells().iter().map(Cell::name).collect();
        assert_eq!(
            names,
            vec![
                "Directory/1",
                "Directory/2",
                "Directory/inf",
                "PATCH/1",
                "PATCH/2",
                "PATCH/inf"
            ]
        );
    }

    #[test]
    fn transforms_compose_in_axis_order() {
        let plan = plan_2x3();
        let cell = &plan.cells()[4]; // PATCH/2
        assert_eq!(cell.config.protocol.kind, ProtocolKind::Patch);
        assert_eq!(cell.config.bandwidth, LinkBandwidth::BytesPerCycle(2.0));
    }

    #[test]
    fn filters_make_the_grid_sparse_with_stable_indices() {
        let plan = Sweep::new("p", base())
            .axis(
                "bw",
                vec![
                    AxisValue::new("1", |c| c.with_bandwidth(LinkBandwidth::BytesPerCycle(1.0))),
                    AxisValue::new("inf", |c| c.with_bandwidth(LinkBandwidth::Unbounded)),
                ],
            )
            .filter(|cell| !cell.config.bandwidth.is_unbounded())
            .build();
        assert_eq!(plan.len(), 1);
        assert_eq!(plan.cells()[0].labels, vec!["1"]);
    }

    #[test]
    #[should_panic(expected = "rejected every cell")]
    fn all_rejecting_filter_panics() {
        let _ = Sweep::new("p", base())
            .axis("a", vec![AxisValue::new("x", |c| c)])
            .filter(|_| false)
            .build();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_labels_rejected() {
        let _ = Sweep::new("p", base()).axis(
            "a",
            vec![AxisValue::new("x", |c| c), AxisValue::new("x", |c| c)],
        );
    }

    #[test]
    #[should_panic(expected = "duplicate axis")]
    fn duplicate_axis_names_rejected() {
        let _ = Sweep::new("p", base())
            .axis("a", vec![AxisValue::new("x", |c| c)])
            .axis("a", vec![AxisValue::new("y", |c| c)]);
    }

    #[test]
    #[should_panic(expected = "no values")]
    fn empty_axis_rejected() {
        let _ = Sweep::new("p", base()).axis("a", vec![]);
    }

    #[test]
    #[should_panic(expected = "at least one axis")]
    fn axisless_plan_rejected() {
        let _ = Sweep::new("p", base()).build();
    }
}
