//! Content-addressed, crash-safe on-disk result store.
//!
//! The store makes experiment sweeps resumable: every `(cell, replication)`
//! of a plan is keyed by a digest of its fully-resolved [`SimConfig`]
//! (via [`SimConfig::stable_digest`]) combined with a code-version tag
//! ([`CODE_VERSION`]), and the corresponding [`RunResult`] is persisted as
//! a checksummed binary entry. Re-running an interrupted sweep with
//! `--store DIR` loads every hit and recomputes only the misses — and
//! because the simulator is deterministic, the resumed table is
//! byte-identical to an uninterrupted run.
//!
//! # Durability model
//!
//! Entries are written atomically: the encoded entry goes to a hidden
//! temp file in the store directory and is then renamed into place, so a
//! `SIGKILL` (or power loss) mid-write can never leave a half-written
//! entry under a valid name. Every entry carries a trailing FxHash
//! checksum over its full contents; on load, truncated, bit-flipped,
//! version-skewed, or otherwise undecodable entries are **never
//! trusted** — they are moved into a `corrupt/` subdirectory
//! (quarantined) and the result is transparently recomputed. Corruption
//! is reported as data ([`LoadOutcome::Quarantined`]), never as a panic.
//!
//! # Entry format (version 3)
//!
//! All integers little-endian:
//!
//! ```text
//! magic          4 bytes   "PSRE"
//! format_version u32       entry-layout version (this file's codec)
//! code_version   u32       semantic simulator version (CODE_VERSION)
//! reserved       u32       zero
//! key            u64       the cache key the entry claims to hold
//! payload_len    u64       bytes of payload that follow
//! payload        ...       encoded RunResult
//! checksum       u64       FxHash of every preceding byte
//! ```
//!
//! Version 2 appends an open-loop block to the payload: a `u64` presence
//! flag (0 for closed-loop results) followed, when set, by the
//! [`OpenLoopStats`] counters and the sojourn histogram. Version 3
//! appends a spans block with the same shape: a `u64` presence flag
//! (0 unless the run collected `telemetry.spans`) followed, when set, by
//! the four phase histograms (queue wait, network, home, token wait),
//! each as bucket pairs + sum + max. The host-side profile is
//! deliberately **not** persisted — wall-time is not a property of the
//! configuration. Older-version entries are quarantined on contact and
//! recomputed; `runplan store-stats DIR --prune-stale` garbage-collects
//! them in bulk.
//!
//! Entries are named `{key:016x}.pse`. The key pins both the resolved
//! configuration and [`CODE_VERSION`]; bumping the latter (done whenever
//! a change makes the simulator produce different numbers for the same
//! config) orphans every stale entry, and `code_version` is additionally
//! checked on load so entries surviving from an older binary are
//! quarantined rather than silently reused.

use std::fmt;
use std::fs;
use std::hash::Hasher;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use patchsim_kernel::collections::FxHasher;
use patchsim_kernel::digest::Digest;
use patchsim_kernel::stats::Histogram;
use patchsim_protocol::ProtocolCounters;

use crate::config::SimConfig;
use crate::system::{OpenLoopStats, RunResult};
use crate::telemetry::SpanStats;
use crate::{TrafficClass, TrafficStats};

const MAGIC: [u8; 4] = *b"PSRE";
const FORMAT_VERSION: u32 = 3;
const HEADER_LEN: usize = 32;
const CHECKSUM_LEN: usize = 8;
const ENTRY_EXT: &str = "pse";

/// Semantic simulator version baked into every cache key and entry.
///
/// Bump this whenever a change alters the numbers a given `SimConfig`
/// produces (protocol fixes, latency-model changes, workload-generator
/// tweaks, ...). Old store entries then stop matching any key and are
/// quarantined on contact instead of poisoning resumed sweeps.
pub const CODE_VERSION: u32 = 1;

/// The store key for one fully-resolved simulation configuration.
///
/// Folds [`CODE_VERSION`] and [`SimConfig::stable_digest`]; equal keys
/// mean "the same binary semantics running the same resolved config",
/// which by the simulator's determinism guarantee means bit-identical
/// results.
pub fn cell_key(config: &SimConfig) -> u64 {
    Digest::new()
        .u64(u64::from(CODE_VERSION))
        .u64(config.stable_digest())
        .finish()
}

/// Errors from store I/O and merging.
#[derive(Debug)]
pub enum StoreError {
    /// An operating-system I/O failure on `path`.
    Io {
        /// The file or directory the operation touched.
        path: PathBuf,
        /// The underlying OS error.
        source: io::Error,
    },
    /// Two stores hold the same key with different results — the inputs
    /// disagree about what the simulator produces, so merging would
    /// silently pick a side. Both entry files are named so the operator
    /// can inspect them.
    Conflict {
        /// The disputed cache key.
        key: u64,
        /// The entry already merged (or pre-existing in the output).
        first: PathBuf,
        /// The conflicting entry.
        second: PathBuf,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, source } => {
                write!(f, "store I/O error on {}: {source}", path.display())
            }
            StoreError::Conflict { key, first, second } => write!(
                f,
                "merge conflict for key {key:016x}: {} and {} hold different results",
                first.display(),
                second.display()
            ),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io { source, .. } => Some(source),
            StoreError::Conflict { .. } => None,
        }
    }
}

/// Outcome of looking a key up in the store.
#[derive(Debug)]
pub enum LoadOutcome {
    /// A valid entry was found; the stored result is returned.
    Hit(Box<RunResult>),
    /// No entry exists for the key.
    Miss,
    /// An entry existed but failed validation; it has been moved to the
    /// `corrupt/` subdirectory and the caller must recompute.
    Quarantined {
        /// Where the corrupt entry now lives.
        path: PathBuf,
        /// Why the entry was rejected.
        reason: String,
    },
}

/// Inventory from [`ResultStore::stats`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StoreStatsReport {
    /// Structurally valid entries (magic + checksum intact) bucketed by
    /// the `code_version` stamped in their header, sorted by version.
    /// Versions older than [`CODE_VERSION`] are stale: unreachable by
    /// any lookup this binary performs, reclaimable with
    /// [`ResultStore::prune_stale`].
    pub by_code_version: Vec<(u32, u64)>,
    /// Structurally valid entries written by an older entry-layout
    /// codec (`format_version` below this binary's). Also stale.
    pub stale_format: u64,
    /// Total bytes across all entry files (valid or not, excluding the
    /// `corrupt/` quarantine).
    pub total_bytes: u64,
    /// Files sitting in the `corrupt/` quarantine directory.
    pub quarantined: u64,
    /// Entry files that failed structural validation in place
    /// (truncated, bad magic, checksum mismatch). Left untouched —
    /// they quarantine on their next lookup.
    pub unreadable: u64,
}

/// Counts from [`ResultStore::merge`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeReport {
    /// Entries copied into the output store.
    pub merged: u64,
    /// Entries skipped because the output already held an identical
    /// result for the key.
    pub duplicates: u64,
    /// Input entries that failed validation and were quarantined in
    /// their own store.
    pub quarantined: u64,
}

/// A directory of content-addressed [`RunResult`] entries.
///
/// Cloning is cheap (the store is just a path); concurrent writers are
/// safe because entries are immutable once named — two threads computing
/// the same key write identical bytes, and the atomic rename makes the
/// race harmless.
#[derive(Clone, Debug)]
pub struct ResultStore {
    dir: PathBuf,
}

impl ResultStore {
    /// Opens (creating if necessary) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|source| StoreError::Io {
            path: dir.clone(),
            source,
        })?;
        Ok(ResultStore { dir })
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.{ENTRY_EXT}"))
    }

    /// Looks up `key`. Corrupt entries are quarantined, never trusted
    /// and never a panic; the only hard errors are OS-level I/O failures
    /// (permissions, disk full, ...).
    pub fn load(&self, key: u64) -> Result<LoadOutcome, StoreError> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(LoadOutcome::Miss),
            Err(source) => return Err(StoreError::Io { path, source }),
        };
        match decode_entry(&bytes, Some(key)) {
            Ok((_, result)) => Ok(LoadOutcome::Hit(Box::new(result))),
            Err(reason) => {
                let quarantined = self.quarantine(&path)?;
                Ok(LoadOutcome::Quarantined {
                    path: quarantined,
                    reason,
                })
            }
        }
    }

    /// Persists `result` under `key` atomically (temp file + rename).
    pub fn save(&self, key: u64, result: &RunResult) -> Result<(), StoreError> {
        static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);
        let bytes = encode_entry(key, result);
        let nonce = TEMP_COUNTER.fetch_add(1, Ordering::Relaxed);
        let tmp = self
            .dir
            .join(format!(".{key:016x}.{}.{nonce}.tmp", std::process::id()));
        fs::write(&tmp, &bytes).map_err(|source| StoreError::Io {
            path: tmp.clone(),
            source,
        })?;
        let path = self.entry_path(key);
        fs::rename(&tmp, &path).map_err(|source| {
            let _ = fs::remove_file(&tmp);
            StoreError::Io { path, source }
        })
    }

    /// Moves a rejected entry into the `corrupt/` subdirectory and
    /// returns its new path.
    fn quarantine(&self, path: &Path) -> Result<PathBuf, StoreError> {
        let corrupt = self.dir.join("corrupt");
        fs::create_dir_all(&corrupt).map_err(|source| StoreError::Io {
            path: corrupt.clone(),
            source,
        })?;
        let name = path
            .file_name()
            .map(|n| n.to_os_string())
            .unwrap_or_else(|| "entry".into());
        let dest = corrupt.join(name);
        fs::rename(path, &dest).map_err(|source| StoreError::Io {
            path: path.to_path_buf(),
            source,
        })?;
        Ok(dest)
    }

    /// All entry files in the store, as `(key, path)` sorted by key.
    /// Files whose names do not parse as `{16-hex}.pse` are ignored
    /// (temp files, the `corrupt/` directory, stray files).
    pub fn entries(&self) -> Result<Vec<(u64, PathBuf)>, StoreError> {
        let iter = fs::read_dir(&self.dir).map_err(|source| StoreError::Io {
            path: self.dir.clone(),
            source,
        })?;
        let mut out = Vec::new();
        for item in iter {
            let item = item.map_err(|source| StoreError::Io {
                path: self.dir.clone(),
                source,
            })?;
            let path = item.path();
            if path.extension().and_then(|e| e.to_str()) != Some(ENTRY_EXT) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            if stem.len() != 16 {
                continue;
            }
            let Ok(key) = u64::from_str_radix(stem, 16) else {
                continue;
            };
            out.push((key, path));
        }
        out.sort();
        Ok(out)
    }

    /// Inventories the store without modifying it: entry counts by code
    /// version, total bytes, quarantined and unreadable counts. Unlike
    /// [`ResultStore::load`], structurally valid entries from *older*
    /// code or format versions are counted (under their own version),
    /// not rejected — this is the view `runplan store-stats` prints.
    pub fn stats(&self) -> Result<StoreStatsReport, StoreError> {
        let mut report = StoreStatsReport::default();
        let mut by_version: std::collections::BTreeMap<u32, u64> =
            std::collections::BTreeMap::new();
        for (_, path) in self.entries()? {
            let bytes = fs::read(&path).map_err(|source| StoreError::Io {
                path: path.clone(),
                source,
            })?;
            report.total_bytes += bytes.len() as u64;
            match entry_versions(&bytes) {
                Some((format, code)) => {
                    *by_version.entry(code).or_insert(0) += 1;
                    if format < FORMAT_VERSION {
                        report.stale_format += 1;
                    }
                }
                None => report.unreadable += 1,
            }
        }
        report.by_code_version = by_version.into_iter().collect();
        let corrupt = self.dir.join("corrupt");
        match fs::read_dir(&corrupt) {
            Ok(iter) => {
                for item in iter {
                    let item = item.map_err(|source| StoreError::Io {
                        path: corrupt.clone(),
                        source,
                    })?;
                    if item.path().is_file() {
                        report.quarantined += 1;
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(source) => {
                return Err(StoreError::Io {
                    path: corrupt,
                    source,
                })
            }
        }
        Ok(report)
    }

    /// Deletes structurally valid entries stamped with an older
    /// `code_version` or `format_version` than this binary's — entries
    /// no lookup can ever hit again. Returns how many were removed.
    /// Unreadable entries are left alone (they quarantine on lookup),
    /// as is anything from a *newer* binary.
    pub fn prune_stale(&self) -> Result<u64, StoreError> {
        let mut removed = 0;
        for (_, path) in self.entries()? {
            let bytes = fs::read(&path).map_err(|source| StoreError::Io {
                path: path.clone(),
                source,
            })?;
            let Some((format, code)) = entry_versions(&bytes) else {
                continue;
            };
            if code < CODE_VERSION || format < FORMAT_VERSION {
                fs::remove_file(&path).map_err(|source| StoreError::Io {
                    path: path.clone(),
                    source,
                })?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Merges the entries of stores `a` and `b` into the store at `out`
    /// (created if absent; `out` may also pre-contain entries, which
    /// participate in conflict detection).
    ///
    /// An entry is copied when its key is new; skipped (counted as a
    /// duplicate) when the output already holds an identical result;
    /// and a **hard error** naming both files when the same key maps to
    /// different results — that means the inputs were produced by
    /// semantically different simulators sharing a `CODE_VERSION`, and
    /// silently picking one would corrupt downstream tables. Corrupt
    /// input entries are quarantined in their own store and counted.
    pub fn merge(a: &Path, b: &Path, out: &Path) -> Result<MergeReport, StoreError> {
        let output = ResultStore::open(out)?;
        let mut origin: std::collections::HashMap<u64, (PathBuf, u64)> =
            std::collections::HashMap::new();
        // Seed conflict detection with whatever already lives in the
        // output (quarantining its corrupt entries too).
        for (key, path) in output.entries()? {
            match output.load(key)? {
                LoadOutcome::Hit(result) => {
                    origin.insert(key, (path, result.digest()));
                }
                LoadOutcome::Miss | LoadOutcome::Quarantined { .. } => {}
            }
        }
        let mut report = MergeReport::default();
        for dir in [a, b] {
            let input = ResultStore::open(dir)?;
            for (key, path) in input.entries()? {
                match input.load(key)? {
                    LoadOutcome::Hit(result) => {
                        let digest = result.digest();
                        match origin.get(&key) {
                            Some((first, known)) if *known != digest => {
                                return Err(StoreError::Conflict {
                                    key,
                                    first: first.clone(),
                                    second: path,
                                });
                            }
                            Some(_) => report.duplicates += 1,
                            None => {
                                output.save(key, &result)?;
                                report.merged += 1;
                                origin.insert(key, (path, digest));
                            }
                        }
                    }
                    LoadOutcome::Quarantined { .. } => report.quarantined += 1,
                    LoadOutcome::Miss => {}
                }
            }
        }
        Ok(report)
    }
}

fn push_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn push_str(buf: &mut Vec<u8>, s: &str) {
    push_u64(buf, s.len() as u64);
    buf.extend_from_slice(s.as_bytes());
}

fn push_histogram(buf: &mut Vec<u8>, h: &Histogram) {
    let pairs: Vec<(u64, u64)> = h.buckets().collect();
    push_u64(buf, pairs.len() as u64);
    for (lower, count) in pairs {
        push_u64(buf, lower);
        push_u64(buf, count);
    }
    push_u64(buf, h.sum());
    push_u64(buf, h.max());
}

fn checksum(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

fn encode_entry(key: u64, result: &RunResult) -> Vec<u8> {
    let mut payload = Vec::with_capacity(512);
    push_str(&mut payload, result.protocol);
    push_u64(&mut payload, result.runtime_cycles);
    push_u64(&mut payload, result.ops_completed);
    push_u64(&mut payload, result.measured_misses);
    push_u64(&mut payload, result.miss_latency_mean.to_bits());
    push_u64(&mut payload, result.coherence_checks);
    push_u64(&mut payload, result.token_audits);
    push_u64(&mut payload, result.events_processed);
    for class in TrafficClass::ALL {
        push_u64(&mut payload, result.traffic.bytes(class));
        push_u64(&mut payload, result.traffic.traversals(class));
    }
    push_u64(&mut payload, result.traffic.dropped_packets());
    push_u64(&mut payload, result.traffic.dropped_bytes());
    let c = &result.counters;
    for v in [
        c.hits,
        c.misses,
        c.satisfied_before_activation,
        c.tenure_timeouts,
        c.direct_responses,
        c.direct_ignored,
        c.reissues,
        c.persistent_requests,
        c.writebacks,
    ] {
        push_u64(&mut payload, v);
    }
    let pairs: Vec<(u64, u64)> = result.miss_latency.buckets().collect();
    push_u64(&mut payload, pairs.len() as u64);
    for (lower, count) in pairs {
        push_u64(&mut payload, lower);
        push_u64(&mut payload, count);
    }
    push_u64(&mut payload, result.miss_latency.sum());
    push_u64(&mut payload, result.miss_latency.max());
    match &result.open_loop {
        None => push_u64(&mut payload, 0),
        Some(ol) => {
            push_u64(&mut payload, 1);
            for v in [
                ol.arrivals,
                ol.drops,
                ol.measured_arrivals,
                ol.measured_drops,
                ol.blocked_cycles,
                ol.backlog_hwm,
                ol.in_flight_at_horizon,
            ] {
                push_u64(&mut payload, v);
            }
            let pairs: Vec<(u64, u64)> = ol.sojourn.buckets().collect();
            push_u64(&mut payload, pairs.len() as u64);
            for (lower, count) in pairs {
                push_u64(&mut payload, lower);
                push_u64(&mut payload, count);
            }
            push_u64(&mut payload, ol.sojourn.sum());
            push_u64(&mut payload, ol.sojourn.max());
        }
    }
    match &result.spans {
        None => push_u64(&mut payload, 0),
        Some(spans) => {
            push_u64(&mut payload, 1);
            for h in [
                &spans.queue_wait,
                &spans.network,
                &spans.home,
                &spans.token_wait,
            ] {
                push_histogram(&mut payload, h);
            }
        }
    }

    let mut bytes = Vec::with_capacity(HEADER_LEN + payload.len() + CHECKSUM_LEN);
    bytes.extend_from_slice(&MAGIC);
    push_u32(&mut bytes, FORMAT_VERSION);
    push_u32(&mut bytes, CODE_VERSION);
    push_u32(&mut bytes, 0);
    push_u64(&mut bytes, key);
    push_u64(&mut bytes, payload.len() as u64);
    bytes.extend_from_slice(&payload);
    let sum = checksum(&bytes);
    push_u64(&mut bytes, sum);
    bytes
}

/// Sequential little-endian reader over a payload slice.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err("payload truncated".into());
        };
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.buf[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn str(&mut self) -> Result<&'a str, String> {
        let len = usize::try_from(self.u64()?).map_err(|_| "string length overflows")?;
        let end = self.pos.checked_add(len).filter(|&e| e <= self.buf.len());
        let Some(end) = end else {
            return Err("payload truncated inside a string".into());
        };
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| "string is not UTF-8".to_string())?;
        self.pos = end;
        Ok(s)
    }

    fn done(&self) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing payload bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

/// Structural validation shared by [`ResultStore::stats`] and
/// [`ResultStore::prune_stale`]: magic, length frame, and checksum —
/// but deliberately *not* the format/code version gates `decode_entry`
/// applies, so stale-but-intact entries can be inventoried. Returns
/// `(format_version, code_version)` or `None` if the bytes cannot be
/// trusted at all.
fn entry_versions(bytes: &[u8]) -> Option<(u32, u32)> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN || bytes[..4] != MAGIC {
        return None;
    }
    let payload_len = usize::try_from(read_u64(bytes, 24)).ok()?;
    let expected = HEADER_LEN
        .checked_add(payload_len)?
        .checked_add(CHECKSUM_LEN)?;
    if expected != bytes.len() {
        return None;
    }
    let body = &bytes[..bytes.len() - CHECKSUM_LEN];
    if checksum(body) != read_u64(bytes, bytes.len() - CHECKSUM_LEN) {
        return None;
    }
    Some((read_u32(bytes, 4), read_u32(bytes, 8)))
}

fn read_u32(bytes: &[u8], at: usize) -> u32 {
    let mut raw = [0u8; 4];
    raw.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(raw)
}

fn read_u64(bytes: &[u8], at: usize) -> u64 {
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(raw)
}

/// Decodes and validates a full entry. `expect_key` additionally pins
/// the key the caller asked for (None during merging, where any
/// well-formed key is accepted). Returns the stored key and result, or
/// a human-readable rejection reason.
fn decode_entry(bytes: &[u8], expect_key: Option<u64>) -> Result<(u64, RunResult), String> {
    if bytes.len() < HEADER_LEN + CHECKSUM_LEN {
        return Err(format!("entry truncated ({} bytes)", bytes.len()));
    }
    if bytes[..4] != MAGIC {
        return Err("bad magic (not a patchsim store entry)".into());
    }
    let format = read_u32(bytes, 4);
    if format != FORMAT_VERSION {
        return Err(format!(
            "unsupported entry format v{format} (this binary reads v{FORMAT_VERSION})"
        ));
    }
    let code = read_u32(bytes, 8);
    let key = read_u64(bytes, 16);
    let payload_len =
        usize::try_from(read_u64(bytes, 24)).map_err(|_| "payload length overflows")?;
    let expected_len = HEADER_LEN
        .checked_add(payload_len)
        .and_then(|n| n.checked_add(CHECKSUM_LEN));
    if expected_len != Some(bytes.len()) {
        return Err(format!(
            "length mismatch: header claims {payload_len}-byte payload but entry is {} bytes",
            bytes.len()
        ));
    }
    let body = &bytes[..bytes.len() - CHECKSUM_LEN];
    let stored_sum = read_u64(bytes, bytes.len() - CHECKSUM_LEN);
    if checksum(body) != stored_sum {
        return Err("checksum mismatch (bit rot or partial write)".into());
    }
    if code != CODE_VERSION {
        return Err(format!(
            "stale code version v{code} (this binary is v{CODE_VERSION})"
        ));
    }
    if let Some(expected) = expect_key {
        if key != expected {
            return Err(format!(
                "key mismatch: entry claims {key:016x}, expected {expected:016x}"
            ));
        }
    }
    let mut r = Reader {
        buf: &bytes[HEADER_LEN..bytes.len() - CHECKSUM_LEN],
        pos: 0,
    };
    let protocol = match r.str()? {
        "Directory" => "Directory",
        "PATCH" => "PATCH",
        "TokenB" => "TokenB",
        other => return Err(format!("unknown protocol name '{other}'")),
    };
    let runtime_cycles = r.u64()?;
    let ops_completed = r.u64()?;
    let measured_misses = r.u64()?;
    let miss_latency_mean = r.f64()?;
    let coherence_checks = r.u64()?;
    let token_audits = r.u64()?;
    let events_processed = r.u64()?;
    let mut class_bytes = [0u64; 8];
    let mut class_traversals = [0u64; 8];
    for i in 0..8 {
        class_bytes[i] = r.u64()?;
        class_traversals[i] = r.u64()?;
    }
    let dropped_packets = r.u64()?;
    let dropped_bytes = r.u64()?;
    let traffic = TrafficStats::from_parts(
        class_bytes,
        class_traversals,
        dropped_packets,
        dropped_bytes,
    );
    let counters = ProtocolCounters {
        hits: r.u64()?,
        misses: r.u64()?,
        satisfied_before_activation: r.u64()?,
        tenure_timeouts: r.u64()?,
        direct_responses: r.u64()?,
        direct_ignored: r.u64()?,
        reissues: r.u64()?,
        persistent_requests: r.u64()?,
        writebacks: r.u64()?,
    };
    let n_pairs = usize::try_from(r.u64()?).map_err(|_| "histogram length overflows")?;
    if n_pairs > 32 {
        return Err(format!("histogram claims {n_pairs} buckets (max 32)"));
    }
    let mut pairs = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let lower = r.u64()?;
        let count = r.u64()?;
        pairs.push((lower, count));
    }
    let sum = r.u64()?;
    let max = r.u64()?;
    let open_loop = match r.u64()? {
        0 => None,
        1 => {
            let arrivals = r.u64()?;
            let drops = r.u64()?;
            let measured_arrivals = r.u64()?;
            let measured_drops = r.u64()?;
            let blocked_cycles = r.u64()?;
            let backlog_hwm = r.u64()?;
            let in_flight_at_horizon = r.u64()?;
            let n = usize::try_from(r.u64()?).map_err(|_| "histogram length overflows")?;
            if n > 32 {
                return Err(format!("sojourn histogram claims {n} buckets (max 32)"));
            }
            let mut soj_pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let lower = r.u64()?;
                let count = r.u64()?;
                soj_pairs.push((lower, count));
            }
            let soj_sum = r.u64()?;
            let soj_max = r.u64()?;
            let sojourn = Histogram::from_parts(&soj_pairs, soj_sum, soj_max)
                .ok_or("malformed sojourn histogram buckets")?;
            Some(OpenLoopStats {
                arrivals,
                drops,
                measured_arrivals,
                measured_drops,
                blocked_cycles,
                backlog_hwm,
                in_flight_at_horizon,
                sojourn,
            })
        }
        other => return Err(format!("bad open-loop presence flag {other}")),
    };
    let spans = match r.u64()? {
        0 => None,
        1 => {
            let queue_wait = read_histogram(&mut r, "queue-wait")?;
            let network = read_histogram(&mut r, "network")?;
            let home = read_histogram(&mut r, "home")?;
            let token_wait = read_histogram(&mut r, "token-wait")?;
            Some(SpanStats {
                queue_wait,
                network,
                home,
                token_wait,
            })
        }
        other => return Err(format!("bad spans presence flag {other}")),
    };
    r.done()?;
    let miss_latency =
        Histogram::from_parts(&pairs, sum, max).ok_or("malformed histogram buckets")?;
    Ok((
        key,
        RunResult {
            protocol,
            runtime_cycles,
            ops_completed,
            measured_misses,
            traffic,
            counters,
            miss_latency_mean,
            miss_latency,
            coherence_checks,
            token_audits,
            events_processed,
            open_loop,
            spans,
            // Host wall-time is not a property of the configuration, so
            // it is never persisted: a store hit has no profile.
            profile: None,
        },
    ))
}

/// Decodes one bucket-pairs + sum + max histogram block.
fn read_histogram(r: &mut Reader<'_>, what: &str) -> Result<Histogram, String> {
    let n = usize::try_from(r.u64()?).map_err(|_| "histogram length overflows")?;
    if n > 32 {
        return Err(format!("{what} histogram claims {n} buckets (max 32)"));
    }
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        let lower = r.u64()?;
        let count = r.u64()?;
        pairs.push((lower, count));
    }
    let sum = r.u64()?;
    let max = r.u64()?;
    Histogram::from_parts(&pairs, sum, max)
        .ok_or_else(|| format!("malformed {what} histogram buckets"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::ProtocolKind;

    fn sample_result() -> RunResult {
        let cfg = SimConfig::new(ProtocolKind::Patch, 4)
            .with_ops_per_core(50)
            .with_seed(11);
        crate::run(&cfg)
    }

    fn temp_store(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("patchsim-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn encode_decode_round_trips() {
        let result = sample_result();
        let bytes = encode_entry(42, &result);
        let (key, decoded) = decode_entry(&bytes, Some(42)).expect("valid entry");
        assert_eq!(key, 42);
        assert_eq!(decoded.digest(), result.digest());
        assert_eq!(decoded.protocol, result.protocol);
        assert_eq!(decoded.miss_latency_mean, result.miss_latency_mean);
        assert_eq!(
            decoded.miss_latency.percentile(0.95),
            result.miss_latency.percentile(0.95)
        );
    }

    #[test]
    fn save_load_round_trips_and_misses_cleanly() {
        let dir = temp_store("roundtrip");
        let store = ResultStore::open(&dir).unwrap();
        let result = sample_result();
        let key = 0xabcd;
        assert!(matches!(store.load(key).unwrap(), LoadOutcome::Miss));
        store.save(key, &result).unwrap();
        match store.load(key).unwrap() {
            LoadOutcome::Hit(got) => assert_eq!(got.digest(), result.digest()),
            other => panic!("expected hit, got {other:?}"),
        }
        assert_eq!(store.entries().unwrap(), vec![(key, store.entry_path(key))]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entry_is_quarantined() {
        let dir = temp_store("truncate");
        let store = ResultStore::open(&dir).unwrap();
        let key = 7;
        store.save(key, &sample_result()).unwrap();
        let path = store.entry_path(key);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        match store.load(key).unwrap() {
            LoadOutcome::Quarantined { path, reason } => {
                assert!(path.starts_with(dir.join("corrupt")), "path {path:?}");
                assert!(path.exists());
                assert!(!reason.is_empty());
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        // The slot is free again: the next lookup is a clean miss.
        assert!(matches!(store.load(key).unwrap(), LoadOutcome::Miss));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_mismatch_is_quarantined() {
        let dir = temp_store("keymismatch");
        let store = ResultStore::open(&dir).unwrap();
        store.save(9, &sample_result()).unwrap();
        // Rename the entry so its claimed key disagrees with its name.
        fs::rename(store.entry_path(9), store.entry_path(10)).unwrap();
        match store.load(10).unwrap() {
            LoadOutcome::Quarantined { reason, .. } => {
                assert!(reason.contains("key mismatch"), "reason: {reason}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_loop_results_round_trip() {
        let cfg = SimConfig::new(ProtocolKind::Patch, 4)
            .with_workload(crate::WorkloadSpec::OpenLoop(
                crate::ArrivalProfile::parse("poisson:40,cap=4").expect("valid spec"),
            ))
            .with_ops_per_core(60)
            .with_seed(3);
        let result = crate::run(&cfg);
        let ol = result.open_loop.as_ref().expect("open-loop run has stats");
        assert!(ol.arrivals > 0);
        let bytes = encode_entry(5, &result);
        let (_, decoded) = decode_entry(&bytes, Some(5)).expect("valid entry");
        assert_eq!(decoded.digest(), result.digest());
        let got = decoded
            .open_loop
            .expect("open-loop stats survive the codec");
        assert_eq!(got.arrivals, ol.arrivals);
        assert_eq!(got.drops, ol.drops);
        assert_eq!(got.sojourn.count(), ol.sojourn.count());
        assert_eq!(got.sojourn.sum(), ol.sojourn.sum());
    }

    #[test]
    fn stats_inventories_and_prune_stale_reclaims() {
        let dir = temp_store("stats");
        let store = ResultStore::open(&dir).unwrap();
        let result = sample_result();
        store.save(1, &result).unwrap();
        store.save(2, &result).unwrap();
        // Forge a stale entry: same layout, older code version. The
        // checksum must be recomputed after the header edit.
        let mut bytes = encode_entry(3, &result);
        bytes[8..12].copy_from_slice(&(CODE_VERSION - 1).to_le_bytes());
        let trunc = bytes.len() - CHECKSUM_LEN;
        let sum = checksum(&bytes[..trunc]).to_le_bytes();
        bytes[trunc..].copy_from_slice(&sum);
        fs::write(store.entry_path(3), &bytes).unwrap();
        // An unreadable (truncated) entry and a quarantined one.
        fs::write(store.entry_path(4), &bytes[..40]).unwrap();
        store.save(5, &result).unwrap();
        let path = store.entry_path(5);
        let full = fs::read(&path).unwrap();
        fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert!(matches!(
            store.load(5).unwrap(),
            LoadOutcome::Quarantined { .. }
        ));

        let report = store.stats().unwrap();
        assert_eq!(
            report.by_code_version,
            vec![(CODE_VERSION - 1, 1), (CODE_VERSION, 2)]
        );
        assert_eq!(report.stale_format, 0);
        assert_eq!(report.unreadable, 1);
        assert_eq!(report.quarantined, 1);
        assert!(report.total_bytes > 0);

        assert_eq!(store.prune_stale().unwrap(), 1);
        assert!(!store.entry_path(3).exists());
        // Current entries and the unreadable one survive the prune.
        assert!(store.entry_path(1).exists());
        assert!(store.entry_path(4).exists());
        let after = store.stats().unwrap();
        assert_eq!(after.by_code_version, vec![(CODE_VERSION, 2)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_key_tracks_config_and_code_version() {
        let a = SimConfig::new(ProtocolKind::Patch, 4).with_seed(1);
        let b = SimConfig::new(ProtocolKind::Patch, 4).with_seed(2);
        assert_eq!(cell_key(&a), cell_key(&a.clone()));
        assert_ne!(cell_key(&a), cell_key(&b));
        // The key is not the raw config digest: CODE_VERSION is folded in.
        assert_ne!(cell_key(&a), a.stable_digest());
    }
}
