//! Experiment result tables: per-cell summaries plus caller-defined
//! metric columns with baseline normalization and confidence intervals.

use std::fmt;
use std::io::{self, Write};

use patchsim_kernel::stats::ConfidenceInterval;

use crate::exp::emit::Format;
use crate::{RunSummary, SimConfig};

/// The measured outcome of one grid cell: its axis labels, the
/// configuration that produced it, and the summary over its replications.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// One label per plan axis, in axis order.
    pub labels: Vec<String>,
    /// The configuration the cell simulated (seed = the cell's base seed).
    pub config: SimConfig,
    /// Statistics over the cell's perturbed-seed runs.
    pub summary: RunSummary,
}

/// How a failed cell died. Rendered in failure reports and used by the
/// CLI to pick an exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// The simulation panicked (e.g. a livelock watchdog or an internal
    /// invariant check fired).
    Panic,
    /// The cell exceeded its wall-clock budget.
    Timeout,
    /// The run completed but its `--record-trace` output could not be
    /// written.
    TraceWrite,
    /// The run completed but its `--metrics` JSONL output could not be
    /// written.
    MetricsWrite,
}

impl FailureKind {
    /// Short lowercase label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::Timeout => "timeout",
            FailureKind::TraceWrite => "trace-write",
            FailureKind::MetricsWrite => "metrics-write",
        }
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One grid cell that produced no result: its coordinates, the config
/// that failed, and what went wrong on the last attempt.
#[derive(Debug, Clone)]
pub struct CellFailure {
    /// One label per plan axis, in axis order.
    pub labels: Vec<String>,
    /// The configuration that failed (seed = the cell's base seed).
    pub config: SimConfig,
    /// The failure category of the final attempt.
    pub kind: FailureKind,
    /// How many attempts were made (1 = no retries).
    pub attempts: u32,
    /// The panic payload, timeout description, or I/O error text.
    pub error: String,
}

/// Typed errors from table construction and value computation —
/// misdeclared normalization columns and rows whose baseline cell is
/// absent (e.g. because it failed and was excluded from the grid).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// The requested normalization axis is not one of the table's axes.
    UnknownAxis {
        /// The axis name the caller passed.
        axis: String,
        /// The table's actual axes.
        axes: Vec<String>,
    },
    /// The baseline label never occurs on the normalization axis.
    UnknownBaseline {
        /// The normalization axis.
        axis: String,
        /// The label that never occurs on it.
        baseline: String,
    },
    /// A row has no baseline cell to normalize against.
    MissingBaseline {
        /// The baseline label looked for.
        baseline: String,
        /// The row's coordinates, joined with `/`.
        row: String,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::UnknownAxis { axis, axes } => write!(
                f,
                "unknown normalization axis '{axis}' (table axes: {})",
                axes.join(", ")
            ),
            TableError::UnknownBaseline { axis, baseline } => {
                write!(
                    f,
                    "baseline label '{baseline}' never occurs on axis '{axis}'"
                )
            }
            TableError::MissingBaseline { baseline, row } => {
                write!(f, "no baseline cell '{baseline}' for row {row}")
            }
        }
    }
}

impl std::error::Error for TableError {}

/// A scalar metric extractor over one cell.
pub type Metric = Box<dyn Fn(&CellResult) -> f64>;

/// A confidence-interval metric extractor over one cell.
pub type CiMetric = Box<dyn Fn(&CellResult) -> ConfidenceInterval>;

enum ColumnKind {
    Metric(Metric),
    Ci(CiMetric),
    Normalized {
        axis: usize,
        baseline: String,
        metric: Metric,
    },
}

impl fmt::Debug for ColumnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnKind::Metric(_) => f.write_str("Metric"),
            ColumnKind::Ci(_) => f.write_str("Ci"),
            ColumnKind::Normalized { axis, baseline, .. } => f
                .debug_struct("Normalized")
                .field("axis", axis)
                .field("baseline", baseline)
                .finish_non_exhaustive(),
        }
    }
}

/// One metric column of a [`Table`].
#[derive(Debug)]
pub struct Column {
    name: String,
    precision: usize,
    kind: ColumnKind,
}

impl Column {
    /// The column's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Decimal places used when formatting the column's values.
    pub fn precision(&self) -> usize {
        self.precision
    }

    /// Whether the column carries a confidence interval (emitters render
    /// such columns as a mean plus a 95% half-width).
    pub fn has_ci(&self) -> bool {
        matches!(self.kind, ColumnKind::Ci(_))
    }
}

/// One computed table value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// A scalar metric.
    Num(f64),
    /// A mean with a 95% confidence half-width.
    Ci(ConfidenceInterval),
}

impl Value {
    /// The value's primary scalar (the mean, for CI values).
    pub fn primary(&self) -> f64 {
        match self {
            Value::Num(v) => *v,
            Value::Ci(ci) => ci.mean,
        }
    }
}

/// An experiment result grid with named metric columns, produced by
/// [`Runner::run`](crate::exp::Runner::run) and rendered by the emitters
/// in [`exp`](crate::exp).
///
/// Columns are declared by the caller: plain metrics, metrics with 95%
/// confidence intervals, and metrics normalized to a baseline value of
/// one axis (the cell with the same coordinates except that axis set to
/// the baseline label — the y-axis convention of the paper's figures).
#[derive(Debug)]
pub struct Table {
    title: String,
    axes: Vec<String>,
    cells: Vec<CellResult>,
    columns: Vec<Column>,
    notes: Vec<String>,
    failures: Vec<CellFailure>,
}

impl Table {
    /// Builds a table from raw cell results.
    ///
    /// # Panics
    ///
    /// Panics if any cell's label count differs from the axis count.
    pub fn new(title: impl Into<String>, axes: Vec<String>, cells: Vec<CellResult>) -> Self {
        for cell in &cells {
            assert_eq!(
                cell.labels.len(),
                axes.len(),
                "cell labels must match axis count"
            );
        }
        Table {
            title: title.into(),
            axes,
            cells,
            columns: Vec::new(),
            notes: Vec::new(),
            failures: Vec::new(),
        }
    }

    /// Attaches the plan cells that produced no result (panicked, timed
    /// out, or failed their trace write after exhausting retries).
    /// Emitters render them explicitly so a sweep with failures can
    /// never be mistaken for a complete one.
    ///
    /// # Panics
    ///
    /// Panics if any failure's label count differs from the axis count.
    pub fn with_cell_failures(mut self, failures: Vec<CellFailure>) -> Self {
        for failure in &failures {
            assert_eq!(
                failure.labels.len(),
                self.axes.len(),
                "failure labels must match axis count"
            );
        }
        self.failures = failures;
        self
    }

    /// The cells that produced no result, in grid order.
    pub fn failures(&self) -> &[CellFailure] {
        &self.failures
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Axis names (the label columns).
    pub fn axes(&self) -> &[String] {
        &self.axes
    }

    /// The cells, in grid order.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// The declared metric columns.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Free-form notes (paper context, caveats). The text emitter prints
    /// them as trailing `#` lines; JSON carries them in a `notes` array;
    /// CSV omits them.
    pub fn notes(&self) -> &[String] {
        &self.notes
    }

    /// Appends a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Replaces the table's title (plans that back several figures let
    /// each binary title its own table).
    pub fn with_title(mut self, title: impl Into<String>) -> Self {
        self.title = title.into();
        self
    }

    fn push_column(&mut self, name: String, precision: usize, kind: ColumnKind) {
        assert!(
            !self.axes.contains(&name) && !self.columns.iter().any(|c| c.name == name),
            "duplicate column name '{name}'"
        );
        self.columns.push(Column {
            name,
            precision,
            kind,
        });
    }

    /// Adds a scalar metric column.
    ///
    /// # Panics
    ///
    /// Panics if `name` repeats an axis or column name.
    pub fn with_column(
        mut self,
        name: impl Into<String>,
        precision: usize,
        metric: impl Fn(&CellResult) -> f64 + 'static,
    ) -> Self {
        self.push_column(name.into(), precision, ColumnKind::Metric(Box::new(metric)));
        self
    }

    /// Adds a metric column carrying a 95% confidence interval.
    ///
    /// # Panics
    ///
    /// Panics if `name` repeats an axis or column name.
    pub fn with_ci_column(
        mut self,
        name: impl Into<String>,
        precision: usize,
        metric: impl Fn(&CellResult) -> ConfidenceInterval + 'static,
    ) -> Self {
        self.push_column(name.into(), precision, ColumnKind::Ci(Box::new(metric)));
        self
    }

    /// Adds a metric column normalized to a baseline: each cell's value is
    /// divided by the metric of the cell at the same coordinates with
    /// `axis` set to `baseline_label` (so the baseline cells themselves
    /// read 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `axis` is not one of the table's axes, if
    /// `baseline_label` never occurs on that axis, or if `name` repeats an
    /// existing column or axis name. Callers handling user-supplied axis
    /// names should use [`try_normalized_column`](Table::try_normalized_column).
    pub fn with_normalized_column(
        self,
        name: impl Into<String>,
        precision: usize,
        axis: &str,
        baseline_label: &str,
        metric: impl Fn(&CellResult) -> f64 + 'static,
    ) -> Self {
        self.try_normalized_column(name, precision, axis, baseline_label, metric)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`with_normalized_column`](Table::with_normalized_column):
    /// a bad axis or baseline label comes back as a [`TableError`] naming
    /// the offending axis instead of a panic.
    ///
    /// # Errors
    ///
    /// [`TableError::UnknownAxis`] when `axis` is not a table axis;
    /// [`TableError::UnknownBaseline`] when `baseline_label` never occurs
    /// on it (in a non-empty table).
    ///
    /// # Panics
    ///
    /// Still panics if `name` repeats an existing column or axis name —
    /// that is a programming error in the plan, not a data condition.
    pub fn try_normalized_column(
        mut self,
        name: impl Into<String>,
        precision: usize,
        axis: &str,
        baseline_label: &str,
        metric: impl Fn(&CellResult) -> f64 + 'static,
    ) -> Result<Self, TableError> {
        let Some(axis_idx) = self.axes.iter().position(|a| a == axis) else {
            return Err(TableError::UnknownAxis {
                axis: axis.to_string(),
                axes: self.axes.clone(),
            });
        };
        if !self.cells.is_empty()
            && !self
                .cells
                .iter()
                .any(|c| c.labels[axis_idx] == baseline_label)
        {
            return Err(TableError::UnknownBaseline {
                axis: axis.to_string(),
                baseline: baseline_label.to_string(),
            });
        }
        self.push_column(
            name.into(),
            precision,
            ColumnKind::Normalized {
                axis: axis_idx,
                baseline: baseline_label.to_string(),
                metric: Box::new(metric),
            },
        );
        Ok(self)
    }

    /// The row index of the baseline cell for `row` on `axis`: identical
    /// coordinates except `axis` replaced by `baseline`.
    fn try_baseline_row(
        &self,
        row: usize,
        axis: usize,
        baseline: &str,
    ) -> Result<usize, TableError> {
        let labels = &self.cells[row].labels;
        self.cells
            .iter()
            .position(|c| {
                c.labels[axis] == baseline
                    && c.labels
                        .iter()
                        .enumerate()
                        .all(|(i, l)| i == axis || l == &labels[i])
            })
            .ok_or_else(|| TableError::MissingBaseline {
                baseline: baseline.to_string(),
                row: labels.join("/"),
            })
    }

    /// Computes the value of column `col` for row `row`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range, or if a normalized column
    /// has no baseline cell for the row. Emitters use
    /// [`try_value`](Table::try_value) so a sparse grid (e.g. after cell
    /// failures) surfaces as an error, not a crash.
    pub fn value(&self, row: usize, col: usize) -> Value {
        self.try_value(row, col).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible form of [`value`](Table::value): a normalized column whose
    /// baseline cell is absent (failed, filtered, or never planned) comes
    /// back as [`TableError::MissingBaseline`] naming the row.
    ///
    /// # Errors
    ///
    /// [`TableError::MissingBaseline`] when a normalized column has no
    /// baseline cell for the row.
    ///
    /// # Panics
    ///
    /// Still panics if `row` or `col` is out of range.
    pub fn try_value(&self, row: usize, col: usize) -> Result<Value, TableError> {
        let cell = &self.cells[row];
        Ok(match &self.columns[col].kind {
            ColumnKind::Metric(metric) => Value::Num(metric(cell)),
            ColumnKind::Ci(metric) => Value::Ci(metric(cell)),
            ColumnKind::Normalized {
                axis,
                baseline,
                metric,
            } => {
                let base = metric(&self.cells[self.try_baseline_row(row, *axis, baseline)?]);
                Value::Num(metric(cell) / base)
            }
        })
    }

    /// Renders the table in `format` to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    pub fn emit(&self, format: Format, out: &mut dyn Write) -> io::Result<()> {
        format.emitter().emit(self, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{AxisValue, Runner, Sweep};
    use crate::{ProtocolKind, SimConfig, WorkloadSpec};

    fn tiny_table() -> Table {
        let base = SimConfig::new(ProtocolKind::Directory, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 32,
                write_frac: 0.3,
                think_mean: 2,
            })
            .with_ops_per_core(40);
        let plan = Sweep::new("t", base)
            .axis(
                "config",
                vec![
                    AxisValue::new("Directory", |c| c),
                    AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
                ],
            )
            .axis(
                "think",
                vec![
                    AxisValue::new("short", |c| c),
                    AxisValue::new("long", |c| {
                        c.with_workload(WorkloadSpec::Microbenchmark {
                            table_blocks: 32,
                            write_frac: 0.3,
                            think_mean: 20,
                        })
                    }),
                ],
            )
            .build();
        Runner::serial().run(&plan)
    }

    #[test]
    fn normalized_column_reads_one_on_the_baseline() {
        let table =
            tiny_table().with_normalized_column("norm_runtime", 3, "config", "Directory", |cell| {
                cell.summary.runtime.mean
            });
        // Rows 0/1 are the Directory baselines for rows 2/3.
        for row in 0..2 {
            match table.value(row, 0) {
                Value::Num(v) => assert!((v - 1.0).abs() < 1e-12),
                v => panic!("unexpected value {v:?}"),
            }
        }
        // The PATCH rows normalize against the matching think-time cell.
        let v2 = table.value(2, 0).primary();
        let expected =
            table.cells()[2].summary.runtime.mean / table.cells()[0].summary.runtime.mean;
        assert!((v2 - expected).abs() < 1e-12);
    }

    #[test]
    fn ci_columns_carry_half_widths() {
        let table = tiny_table().with_ci_column("runtime", 0, |cell| cell.summary.runtime);
        match table.value(0, 0) {
            Value::Ci(ci) => assert!(ci.mean > 0.0),
            v => panic!("unexpected value {v:?}"),
        }
        assert!(table.columns()[0].has_ci());
    }

    #[test]
    #[should_panic(expected = "unknown normalization axis")]
    fn unknown_axis_rejected() {
        let _ = tiny_table().with_normalized_column("n", 3, "nope", "Directory", |_| 0.0);
    }

    #[test]
    #[should_panic(expected = "never occurs")]
    fn unknown_baseline_rejected() {
        let _ = tiny_table().with_normalized_column("n", 3, "config", "nope", |_| 0.0);
    }

    #[test]
    fn try_normalized_column_names_the_bad_axis() {
        let err = tiny_table()
            .try_normalized_column("n", 3, "nope", "Directory", |_| 0.0)
            .unwrap_err();
        assert_eq!(
            err,
            TableError::UnknownAxis {
                axis: "nope".into(),
                axes: vec!["config".into(), "think".into()],
            }
        );
        assert!(err
            .to_string()
            .contains("unknown normalization axis 'nope'"));
        let err = tiny_table()
            .try_normalized_column("n", 3, "config", "nope", |_| 0.0)
            .unwrap_err();
        assert!(err.to_string().contains("never occurs"));
    }

    #[test]
    fn try_value_reports_missing_baseline_rows() {
        // Drop the Directory/short baseline so row PATCH/short has no
        // cell to normalize against — the situation a failed cell
        // creates.
        let full = tiny_table();
        let cells: Vec<CellResult> = full
            .cells()
            .iter()
            .filter(|c| !(c.labels[0] == "Directory" && c.labels[1] == "short"))
            .cloned()
            .collect();
        let table = Table::new("t", full.axes().to_vec(), cells)
            .try_normalized_column("norm", 3, "config", "Directory", |c| c.summary.runtime.mean)
            .unwrap();
        let bad_row = table
            .cells()
            .iter()
            .position(|c| c.labels == vec!["PATCH".to_string(), "short".to_string()])
            .unwrap();
        let err = table.try_value(bad_row, 0).unwrap_err();
        assert_eq!(
            err,
            TableError::MissingBaseline {
                baseline: "Directory".into(),
                row: "PATCH/short".into(),
            }
        );
        // Rows whose baseline survives still compute.
        let good_row = table
            .cells()
            .iter()
            .position(|c| c.labels == vec!["Directory".to_string(), "long".to_string()])
            .unwrap();
        assert!(table.try_value(good_row, 0).is_ok());
    }

    #[test]
    fn failures_attach_and_render_metadata() {
        let full = tiny_table();
        let victim = full.cells()[0].clone();
        let survivors: Vec<CellResult> = full.cells()[1..].to_vec();
        let table = Table::new("t", full.axes().to_vec(), survivors).with_cell_failures(vec![
            CellFailure {
                labels: victim.labels.clone(),
                config: victim.config.clone(),
                kind: FailureKind::Panic,
                attempts: 2,
                error: "boom".into(),
            },
        ]);
        assert_eq!(table.failures().len(), 1);
        assert_eq!(table.failures()[0].kind.label(), "panic");
        assert_eq!(FailureKind::Timeout.to_string(), "timeout");
        assert_eq!(FailureKind::TraceWrite.to_string(), "trace-write");
    }

    #[test]
    #[should_panic(expected = "duplicate column name")]
    fn duplicate_column_rejected() {
        let _ = tiny_table()
            .with_column("x", 1, |_| 0.0)
            .with_column("x", 1, |_| 0.0);
    }
}
