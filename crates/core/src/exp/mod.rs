//! Declarative experiment plans, a parallel deterministic runner, and
//! machine-readable result tables.
//!
//! The paper's evaluation (§8) is a grid of experiments — protocol
//! configurations × workloads × bandwidth/core-count/coarseness sweeps ×
//! perturbed seeds. This module expresses that grid declaratively:
//!
//! 1. [`Sweep`] declares labeled axes over a base [`SimConfig`] and
//!    builds an [`ExperimentPlan`] — the cross product of the axes, each
//!    cell a named, fully assembled configuration.
//! 2. [`Runner`] executes every `(cell, replication)` pair on a
//!    `std::thread` worker pool. Per-replication seeds are derived with
//!    [`replicate_seed`](patchsim_kernel::replicate_seed) from the cell's
//!    base seed, never from execution order, so parallel and serial runs
//!    produce identical results.
//! 3. [`Table`] holds one summarized row per cell and renders through the
//!    pluggable [`Emitter`]s — aligned text, CSV, or JSON — with
//!    baseline-normalized and confidence-interval columns declared by the
//!    caller.
//!
//! Two robustness layers make long sweeps practical:
//!
//! * **Fault isolation** — each `(cell, replication)` run executes inside
//!   a panic boundary with an optional wall-clock timeout and bounded
//!   retries; cells that still fail surface as [`CellFailure`]s on the
//!   table (rendered explicitly by every emitter) instead of killing the
//!   sweep.
//! * **Resumability** — [`store`] persists each run's result under a
//!   content-addressed key ([`cell_key`]); a [`Runner`] with an attached
//!   [`ResultStore`] loads hits and recomputes only misses, so a killed
//!   sweep resumes to a byte-identical table. Corrupt entries are
//!   quarantined and recomputed, never trusted.
//!
//! # Examples
//!
//! ```
//! use patchsim::exp::{AxisValue, Format, Runner, Sweep};
//! use patchsim::{ProtocolKind, SimConfig, WorkloadSpec};
//!
//! let base = SimConfig::new(ProtocolKind::Directory, 4)
//!     .with_workload(WorkloadSpec::Microbenchmark {
//!         table_blocks: 64,
//!         write_frac: 0.3,
//!         think_mean: 5,
//!     })
//!     .with_ops_per_core(50);
//! let plan = Sweep::new("demo", base)
//!     .axis(
//!         "config",
//!         vec![
//!             AxisValue::new("Directory", |c| c),
//!             AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
//!         ],
//!     )
//!     .seeds(2)
//!     .build();
//! let table = Runner::new()
//!     .run(&plan)
//!     .with_ci_column("runtime", 0, |cell| cell.summary.runtime)
//!     .with_normalized_column("norm", 3, "config", "Directory", |cell| {
//!         cell.summary.runtime.mean
//!     });
//! let mut csv = Vec::new();
//! table.emit(Format::Csv, &mut csv).unwrap();
//! assert!(String::from_utf8(csv).unwrap().starts_with("config,runtime"));
//! ```
//!
//! [`SimConfig`]: crate::SimConfig

mod emit;
mod plan;
mod runner;
pub mod store;
mod table;

pub use emit::{CsvEmitter, Emitter, Format, JsonEmitter, TextEmitter};
pub use plan::{AxisValue, Cell, ConfigTransform, ExperimentPlan, Sweep};
pub use runner::Runner;
pub use store::{
    cell_key, LoadOutcome, MergeReport, ResultStore, StoreError, StoreStatsReport, CODE_VERSION,
};
pub use table::{
    CellFailure, CellResult, CiMetric, Column, FailureKind, Metric, Table, TableError, Value,
};
