//! The experiment runner: executes a plan's cells on a worker pool with
//! deterministic per-cell seed derivation, cell-level fault isolation,
//! and optional result-store caching.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use patchsim_kernel::replicate_seed;

use crate::exp::plan::ExperimentPlan;
use crate::exp::store::{LoadOutcome, ResultStore};
use crate::exp::table::{CellFailure, CellResult, FailureKind, Table};
use crate::report::summarize;
use crate::system::{try_run, RunError, RunResult};
use crate::SimConfig;

/// Executes every cell of an [`ExperimentPlan`] and aggregates the
/// results into a [`Table`].
///
/// Runs execute on a self-contained `std::thread` worker pool. Each
/// simulation is a pure function of its configuration, and every
/// replication's seed is derived with [`replicate_seed`] from the cell's
/// base seed — never from execution order — so the table is bit-identical
/// whatever the thread count. Grid cells are embarrassingly parallel
/// (Figure 4 alone is 30 independent cells), which makes the pool a
/// wall-clock win on every figure.
///
/// # Fault isolation
///
/// Each `(cell, replication)` run is isolated: a panic inside the
/// simulator (a protocol-invariant check, a livelock watchdog) or a
/// wall-clock timeout ([`with_cell_timeout`](Runner::with_cell_timeout))
/// fails only that cell. Failed runs are retried up to the configured
/// retry budget; cells that still fail are reported as
/// [`CellFailure`]s on the resulting table while every other cell's
/// results stand.
///
/// # Resumability
///
/// With a [`ResultStore`] attached ([`with_store`](Runner::with_store)),
/// every completed run is persisted under its content-addressed key and
/// loaded back on the next invocation, so an interrupted sweep resumes
/// from where it died — recomputing only missing or corrupt entries —
/// and, by determinism, produces a byte-identical table.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
    store: Option<ResultStore>,
    cell_timeout: Option<Duration>,
    retries: u32,
    progress: bool,
}

/// Shared progress counters for the `--progress` stderr heartbeat.
struct Progress {
    done: AtomicUsize,
    failed: AtomicUsize,
    total: usize,
    start: Instant,
    /// Last heartbeat instant, mutexed so only one worker prints at a
    /// time and lines never interleave.
    last: Mutex<Instant>,
}

impl Progress {
    fn new(total: usize) -> Self {
        let now = Instant::now();
        Progress {
            done: AtomicUsize::new(0),
            failed: AtomicUsize::new(0),
            total,
            start: now,
            last: Mutex::new(now),
        }
    }

    /// Notes one finished run and emits a throttled (~1/s) heartbeat.
    fn tick(&self, failed: bool) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        if failed {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        let mut last = self.last.lock().expect("progress clock poisoned");
        let finished = done == self.total;
        if !finished && last.elapsed() < Duration::from_secs(1) {
            return;
        }
        *last = Instant::now();
        eprintln!(
            "patchsim: progress {done}/{} runs ({} failed), {}s elapsed",
            self.total,
            self.failed.load(Ordering::Relaxed),
            self.start.elapsed().as_secs(),
        );
    }
}

/// How one `(cell, replication)` run failed, after retries.
#[derive(Debug)]
struct ItemFailure {
    kind: FailureKind,
    attempts: u32,
    error: String,
}

/// Store-activity counters, aggregated across workers for the end-of-run
/// summary line.
#[derive(Debug, Default)]
struct StoreStats {
    hits: AtomicU64,
    computed: AtomicU64,
    quarantined: AtomicU64,
}

impl Runner {
    /// A runner using all available hardware parallelism.
    pub fn new() -> Self {
        Runner {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            store: None,
            cell_timeout: None,
            retries: 1,
            progress: false,
        }
    }

    /// A single-threaded runner (runs cells inline, in grid order).
    pub fn serial() -> Self {
        Runner::new().with_threads(1)
    }

    /// Sets the worker count (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Attaches a result store: completed runs are persisted and prior
    /// runs are loaded instead of recomputed.
    pub fn with_store(mut self, store: ResultStore) -> Self {
        self.store = Some(store);
        self
    }

    /// Sets a wall-clock budget per `(cell, replication)` run. Runs that
    /// exceed it fail with [`FailureKind::Timeout`] (checked
    /// cooperatively inside the event loop, so the worker thread is
    /// reclaimed, not abandoned).
    pub fn with_cell_timeout(mut self, timeout: Duration) -> Self {
        self.cell_timeout = Some(timeout);
        self
    }

    /// Sets how many times a failed run is retried before its cell is
    /// reported failed (default 1; 0 disables retries). Retries mainly
    /// help timeout flakes on loaded machines — a deterministic panic
    /// will simply repeat.
    pub fn with_retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    /// Enables a throttled stderr heartbeat (`patchsim: progress ...`)
    /// reporting runs done/total, failures, and elapsed time — for
    /// watching 10^4-cell sharded sweeps without polluting stdout.
    pub fn with_progress(mut self, progress: bool) -> Self {
        self.progress = progress;
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every `(cell, replication)` pair of `plan` and returns one
    /// summarized [`Table`] row per cell, in grid order. Cells whose runs
    /// panic, time out, or cannot write their trace are excluded from the
    /// grid and reported via [`Table::failures`] instead of aborting the
    /// sweep.
    pub fn run(&self, plan: &ExperimentPlan) -> Table {
        let seeds = plan.seeds();
        // One work item per (cell, replication), flattened in grid order.
        let configs: Vec<SimConfig> = plan
            .cells()
            .iter()
            .flat_map(|cell| {
                (0..seeds).map(|rep| {
                    let base = cell.config.seed;
                    let mut cfg = cell.config.clone().with_seed(replicate_seed(base, rep));
                    // Only replication 0 records traces and metrics:
                    // later replications run perturbed seeds, and a
                    // shared output path would be a last-writer-wins
                    // race across the worker pool.
                    if rep > 0 {
                        cfg.record_trace = None;
                        cfg.telemetry.metrics = None;
                    }
                    cfg
                })
            })
            .collect();
        let stats = StoreStats::default();
        let results = self.execute(&configs, &stats);
        if self.store.is_some() {
            eprintln!(
                "patchsim: store: {} loaded, {} computed, {} quarantined",
                stats.hits.load(Ordering::Relaxed),
                stats.computed.load(Ordering::Relaxed),
                stats.quarantined.load(Ordering::Relaxed),
            );
        }
        let mut cells = Vec::new();
        let mut failures = Vec::new();
        for (cell, outcomes) in plan.cells().iter().zip(results.chunks(seeds as usize)) {
            let failed = outcomes.iter().find_map(|o| o.as_ref().err());
            match failed {
                None => {
                    let runs: Vec<RunResult> = outcomes
                        .iter()
                        .map(|o| o.as_ref().expect("checked above").clone())
                        .collect();
                    cells.push(CellResult {
                        labels: cell.labels.clone(),
                        config: cell.config.clone(),
                        summary: summarize(&runs),
                    });
                }
                Some(failure) => failures.push(CellFailure {
                    labels: cell.labels.clone(),
                    config: cell.config.clone(),
                    kind: failure.kind,
                    attempts: failure.attempts,
                    error: failure.error.clone(),
                }),
            }
        }
        Table::new(plan.name(), plan.axis_names().to_vec(), cells).with_cell_failures(failures)
    }

    /// Runs every configuration and returns per-item outcomes in input
    /// order, regardless of which worker executed which run.
    fn execute(
        &self,
        configs: &[SimConfig],
        stats: &StoreStats,
    ) -> Vec<Result<RunResult, ItemFailure>> {
        let threads = self.threads.min(configs.len()).max(1);
        let progress = self.progress.then(|| Progress::new(configs.len()));
        if threads == 1 {
            return configs
                .iter()
                .map(|c| {
                    let outcome = self.run_item(c, stats);
                    if let Some(p) = &progress {
                        p.tick(outcome.is_err());
                    }
                    outcome
                })
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<Result<RunResult, ItemFailure>>>> =
            configs.iter().map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= configs.len() {
                        break;
                    }
                    let outcome = self.run_item(&configs[i], stats);
                    if let Some(p) = &progress {
                        p.tick(outcome.is_err());
                    }
                    *slots[i].lock().expect("result slot poisoned") = Some(outcome);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker filled every claimed slot")
            })
            .collect()
    }

    /// Executes one `(cell, replication)` run: store lookup, isolated
    /// execution with retries, store write-back.
    fn run_item(&self, config: &SimConfig, stats: &StoreStats) -> Result<RunResult, ItemFailure> {
        // Runs with a side output — a recorded trace or a metrics time
        // series — always execute (a cache hit would skip the run that
        // writes the file); their result is still saved for future
        // plain invocations.
        if config.record_trace.is_none() && config.telemetry.metrics.is_none() {
            if let Some(store) = &self.store {
                let key = crate::exp::store::cell_key(config);
                match store.load(key) {
                    Ok(LoadOutcome::Hit(result)) => {
                        stats.hits.fetch_add(1, Ordering::Relaxed);
                        return Ok(*result);
                    }
                    Ok(LoadOutcome::Miss) => {}
                    Ok(LoadOutcome::Quarantined { path, reason }) => {
                        stats.quarantined.fetch_add(1, Ordering::Relaxed);
                        eprintln!(
                            "patchsim: quarantined corrupt store entry {} ({reason}); recomputing",
                            path.display()
                        );
                    }
                    Err(e) => {
                        eprintln!("patchsim: result store read failed ({e}); recomputing");
                    }
                }
            }
        }
        let attempts = self.retries + 1;
        let mut last = None;
        for attempt in 1..=attempts {
            match run_isolated(config, self.cell_timeout) {
                Ok(result) => {
                    stats.computed.fetch_add(1, Ordering::Relaxed);
                    if let Some(store) = &self.store {
                        let key = crate::exp::store::cell_key(config);
                        if let Err(e) = store.save(key, &result) {
                            eprintln!("patchsim: result store write failed ({e})");
                        }
                    }
                    return Ok(result);
                }
                Err(failure) => {
                    let fatal = matches!(
                        failure.kind,
                        FailureKind::TraceWrite | FailureKind::MetricsWrite
                    );
                    last = Some(ItemFailure {
                        attempts: attempt,
                        ..failure
                    });
                    // A failed trace or metrics write is an environment
                    // problem (bad path, full disk): retrying the
                    // simulation cannot fix it.
                    if fatal {
                        break;
                    }
                }
            }
        }
        Err(last.expect("at least one attempt ran"))
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

/// Runs one simulation inside a panic boundary, classifying the outcome.
fn run_isolated(config: &SimConfig, timeout: Option<Duration>) -> Result<RunResult, ItemFailure> {
    // AssertUnwindSafe: the closure owns a fresh clone of the config and
    // the System it builds; nothing outside the boundary can observe a
    // broken invariant after an unwind.
    match catch_unwind(AssertUnwindSafe(|| try_run(config, timeout))) {
        Ok(Ok(result)) => Ok(result),
        Ok(Err(e @ RunError::Timeout { .. })) => Err(ItemFailure {
            kind: FailureKind::Timeout,
            attempts: 0,
            error: e.to_string(),
        }),
        Ok(Err(e @ RunError::TraceWrite { .. })) => Err(ItemFailure {
            kind: FailureKind::TraceWrite,
            attempts: 0,
            error: e.to_string(),
        }),
        Ok(Err(e @ RunError::MetricsWrite { .. })) => Err(ItemFailure {
            kind: FailureKind::MetricsWrite,
            attempts: 0,
            error: e.to_string(),
        }),
        Err(payload) => Err(ItemFailure {
            kind: FailureKind::Panic,
            attempts: 0,
            error: panic_message(&payload),
        }),
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{AxisValue, Sweep};
    use crate::{ProtocolKind, WorkloadSpec};

    fn tiny_plan(seeds: u64) -> ExperimentPlan {
        let base = SimConfig::new(ProtocolKind::Directory, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 32,
                write_frac: 0.3,
                think_mean: 2,
            })
            .with_ops_per_core(40);
        Sweep::new("tiny", base)
            .axis(
                "config",
                vec![
                    AxisValue::new("Directory", |c| c),
                    AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
                    AxisValue::new("TokenB", |c| c.with_kind(ProtocolKind::TokenB)),
                ],
            )
            .axis(
                "seed",
                vec![
                    AxisValue::new("s1", |c| c.with_seed(1)),
                    AxisValue::new("s2", |c| c.with_seed(2)),
                ],
            )
            .seeds(seeds)
            .build()
    }

    #[test]
    fn parallel_matches_serial_cell_for_cell() {
        let plan = tiny_plan(2);
        let serial = Runner::serial().run(&plan);
        let parallel = Runner::new().with_threads(4).run(&plan);
        assert_eq!(serial.cells().len(), parallel.cells().len());
        for (a, b) in serial.cells().iter().zip(parallel.cells().iter()) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.summary.runtime, b.summary.runtime);
            assert_eq!(a.summary.bytes_per_miss, b.summary.bytes_per_miss);
            for (ra, rb) in a.summary.runs.iter().zip(b.summary.runs.iter()) {
                assert_eq!(ra.runtime_cycles, rb.runtime_cycles);
                assert_eq!(ra.traffic, rb.traffic);
                assert_eq!(ra.measured_misses, rb.measured_misses);
            }
        }
    }

    #[test]
    fn replications_use_derived_seeds() {
        let plan = tiny_plan(3);
        let table = Runner::serial().run(&plan);
        let runs = &table.cells()[0].summary.runs;
        assert_eq!(runs.len(), 3);
        // Replications differ from each other (the seeds really changed).
        assert!(
            runs[0].runtime_cycles != runs[1].runtime_cycles
                || runs[1].runtime_cycles != runs[2].runtime_cycles
        );
    }

    #[test]
    fn oversized_thread_count_is_clamped() {
        let plan = tiny_plan(1);
        let table = Runner::new().with_threads(64).run(&plan);
        assert_eq!(table.cells().len(), 6);
    }

    /// A plan whose "tiny budget" axis value livelocks the cycle cap,
    /// making that one cell panic deterministically.
    fn plan_with_poison_cell() -> ExperimentPlan {
        let base = SimConfig::new(ProtocolKind::Directory, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 32,
                write_frac: 0.3,
                think_mean: 2,
            })
            .with_ops_per_core(40);
        Sweep::new("poison", base)
            .axis(
                "budget",
                vec![
                    AxisValue::new("normal", |c| c),
                    AxisValue::new("tiny", |mut c| {
                        c.max_cycles = 10;
                        c
                    }),
                ],
            )
            .build()
    }

    #[test]
    fn panicking_cell_is_isolated_and_reported() {
        let table = Runner::serial().run(&plan_with_poison_cell());
        assert_eq!(table.cells().len(), 1);
        assert_eq!(table.cells()[0].labels, vec!["normal".to_string()]);
        assert_eq!(table.failures().len(), 1);
        let failure = &table.failures()[0];
        assert_eq!(failure.labels, vec!["tiny".to_string()]);
        assert_eq!(failure.kind, FailureKind::Panic);
        // Default policy: one retry, so two attempts.
        assert_eq!(failure.attempts, 2);
        assert!(!failure.error.is_empty());
    }

    #[test]
    fn panicking_cell_is_isolated_across_the_pool() {
        let table = Runner::new()
            .with_threads(4)
            .with_retries(0)
            .run(&plan_with_poison_cell());
        assert_eq!(table.cells().len(), 1);
        assert_eq!(table.failures().len(), 1);
        assert_eq!(table.failures()[0].attempts, 1);
    }

    #[test]
    fn timed_out_cell_is_reported_not_fatal() {
        let base = SimConfig::new(ProtocolKind::Directory, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 32,
                write_frac: 0.3,
                think_mean: 2,
            })
            .with_ops_per_core(200_000);
        let plan = Sweep::new("slow", base)
            .axis("only", vec![AxisValue::new("cell", |c| c)])
            .build();
        let table = Runner::serial()
            .with_cell_timeout(Duration::from_nanos(1))
            .with_retries(0)
            .run(&plan);
        assert_eq!(table.cells().len(), 0);
        assert_eq!(table.failures().len(), 1);
        assert_eq!(table.failures()[0].kind, FailureKind::Timeout);
        assert_eq!(table.failures()[0].attempts, 1);
    }
}
