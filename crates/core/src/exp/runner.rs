//! The experiment runner: executes a plan's cells on a worker pool with
//! deterministic per-cell seed derivation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use patchsim_kernel::replicate_seed;

use crate::exp::plan::ExperimentPlan;
use crate::exp::table::{CellResult, Table};
use crate::report::summarize;
use crate::system::{run, RunResult};
use crate::SimConfig;

/// Executes every cell of an [`ExperimentPlan`] and aggregates the
/// results into a [`Table`].
///
/// Runs execute on a self-contained `std::thread` worker pool. Each
/// simulation is a pure function of its configuration, and every
/// replication's seed is derived with [`replicate_seed`] from the cell's
/// base seed — never from execution order — so the table is bit-identical
/// whatever the thread count. Grid cells are embarrassingly parallel
/// (Figure 4 alone is 30 independent cells), which makes the pool a
/// wall-clock win on every figure.
#[derive(Debug, Clone)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner using all available hardware parallelism.
    pub fn new() -> Self {
        Runner {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    }

    /// A single-threaded runner (runs cells inline, in grid order).
    pub fn serial() -> Self {
        Runner { threads: 1 }
    }

    /// Sets the worker count (clamped to at least one).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every `(cell, replication)` pair of `plan` and returns one
    /// summarized [`Table`] row per cell, in grid order.
    ///
    /// # Panics
    ///
    /// Panics if any simulation panics (a detected protocol bug — see
    /// [`System::run`](crate::System::run)); with multiple workers the
    /// panic is propagated when the pool joins.
    pub fn run(&self, plan: &ExperimentPlan) -> Table {
        let seeds = plan.seeds();
        // One work item per (cell, replication), flattened in grid order.
        let configs: Vec<SimConfig> = plan
            .cells()
            .iter()
            .flat_map(|cell| {
                (0..seeds).map(|rep| {
                    let base = cell.config.seed;
                    let mut cfg = cell.config.clone().with_seed(replicate_seed(base, rep));
                    // Only replication 0 records: later replications run
                    // perturbed seeds, and a shared output path would be a
                    // last-writer-wins race across the worker pool.
                    if rep > 0 {
                        cfg.record_trace = None;
                    }
                    cfg
                })
            })
            .collect();
        let results = execute(&configs, self.threads);
        let cells = plan
            .cells()
            .iter()
            .zip(results.chunks(seeds as usize))
            .map(|(cell, runs)| CellResult {
                labels: cell.labels.clone(),
                config: cell.config.clone(),
                summary: summarize(runs),
            })
            .collect();
        Table::new(plan.name(), plan.axis_names().to_vec(), cells)
    }
}

impl Default for Runner {
    fn default() -> Self {
        Runner::new()
    }
}

/// Runs every configuration and returns the results in input order,
/// regardless of which worker executed which run.
fn execute(configs: &[SimConfig], threads: usize) -> Vec<RunResult> {
    let threads = threads.min(configs.len()).max(1);
    if threads == 1 {
        return configs.iter().map(run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<RunResult>>> = configs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= configs.len() {
                    break;
                }
                let result = run(&configs[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("worker filled every claimed slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exp::{AxisValue, Sweep};
    use crate::{ProtocolKind, WorkloadSpec};

    fn tiny_plan(seeds: u64) -> ExperimentPlan {
        let base = SimConfig::new(ProtocolKind::Directory, 4)
            .with_workload(WorkloadSpec::Microbenchmark {
                table_blocks: 32,
                write_frac: 0.3,
                think_mean: 2,
            })
            .with_ops_per_core(40);
        Sweep::new("tiny", base)
            .axis(
                "config",
                vec![
                    AxisValue::new("Directory", |c| c),
                    AxisValue::new("PATCH", |c| c.with_kind(ProtocolKind::Patch)),
                    AxisValue::new("TokenB", |c| c.with_kind(ProtocolKind::TokenB)),
                ],
            )
            .axis(
                "seed",
                vec![
                    AxisValue::new("s1", |c| c.with_seed(1)),
                    AxisValue::new("s2", |c| c.with_seed(2)),
                ],
            )
            .seeds(seeds)
            .build()
    }

    #[test]
    fn parallel_matches_serial_cell_for_cell() {
        let plan = tiny_plan(2);
        let serial = Runner::serial().run(&plan);
        let parallel = Runner::new().with_threads(4).run(&plan);
        assert_eq!(serial.cells().len(), parallel.cells().len());
        for (a, b) in serial.cells().iter().zip(parallel.cells().iter()) {
            assert_eq!(a.labels, b.labels);
            assert_eq!(a.summary.runtime, b.summary.runtime);
            assert_eq!(a.summary.bytes_per_miss, b.summary.bytes_per_miss);
            for (ra, rb) in a.summary.runs.iter().zip(b.summary.runs.iter()) {
                assert_eq!(ra.runtime_cycles, rb.runtime_cycles);
                assert_eq!(ra.traffic, rb.traffic);
                assert_eq!(ra.measured_misses, rb.measured_misses);
            }
        }
    }

    #[test]
    fn replications_use_derived_seeds() {
        let plan = tiny_plan(3);
        let table = Runner::serial().run(&plan);
        let runs = &table.cells()[0].summary.runs;
        assert_eq!(runs.len(), 3);
        // Replications differ from each other (the seeds really changed).
        assert!(
            runs[0].runtime_cycles != runs[1].runtime_cycles
                || runs[1].runtime_cycles != runs[2].runtime_cycles
        );
    }

    #[test]
    fn oversized_thread_count_is_clamped() {
        let plan = tiny_plan(1);
        let table = Runner::new().with_threads(64).run(&plan);
        assert_eq!(table.cells().len(), 6);
    }
}
