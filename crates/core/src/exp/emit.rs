//! Pluggable result emitters: aligned text, CSV, and JSON.
//!
//! All three serializers are hand-rolled (the build environment has no
//! crates.io access, so `serde` is unavailable); the formats are small
//! enough that this costs ~100 lines total.

use std::fmt;
use std::io::{self, Write};

use crate::exp::table::{CellFailure, Table, Value};

/// Computes one table value, mapping [`TableError`](crate::exp::TableError)
/// (e.g. a normalized row whose baseline cell failed) to
/// [`io::ErrorKind::InvalidData`] so emitters report it instead of
/// panicking.
fn table_value(table: &Table, row: usize, col: usize) -> io::Result<Value> {
    table
        .try_value(row, col)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// Flattens a failure's error text to one line for text/CSV comments.
fn one_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

/// Renders a failed cell as a `#` comment line (text and CSV formats).
fn failure_comment(failure: &CellFailure) -> String {
    format!(
        "# FAILED {}: [{} after {} attempt{}] {}",
        failure.labels.join("/"),
        failure.kind,
        failure.attempts,
        if failure.attempts == 1 { "" } else { "s" },
        one_line(&failure.error)
    )
}

/// The output formats every figure binary accepts via `--format`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Format {
    /// Human-readable aligned columns (the default).
    Text,
    /// One header row plus one record per cell; CI columns expand into
    /// `<name>` and `<name>_ci95` fields.
    Csv,
    /// A single object with `title`, `axes`, `notes`, and `rows`.
    Json,
}

impl Format {
    /// Every format, in display order.
    pub const ALL: [Format; 3] = [Format::Text, Format::Csv, Format::Json];

    /// Parses a `--format` argument (case-insensitive).
    pub fn parse(s: &str) -> Option<Format> {
        match s.to_ascii_lowercase().as_str() {
            "text" => Some(Format::Text),
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            _ => None,
        }
    }

    /// The format's `--format` spelling.
    pub fn label(self) -> &'static str {
        match self {
            Format::Text => "text",
            Format::Csv => "csv",
            Format::Json => "json",
        }
    }

    /// The emitter implementing this format.
    pub fn emitter(self) -> Box<dyn Emitter> {
        match self {
            Format::Text => Box::new(TextEmitter),
            Format::Csv => Box::new(CsvEmitter),
            Format::Json => Box::new(JsonEmitter),
        }
    }
}

impl fmt::Display for Format {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Renders a [`Table`] to a byte stream.
pub trait Emitter {
    /// Writes `table` to `out`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `out`.
    fn emit(&self, table: &Table, out: &mut dyn Write) -> io::Result<()>;
}

/// Formats one table value with the column's precision.
fn format_value(value: Value, precision: usize) -> String {
    match value {
        Value::Num(v) => format!("{v:.precision$}"),
        Value::Ci(ci) => format!("{:.precision$} ±{:.precision$}", ci.mean, ci.half_width),
    }
}

/// Human-readable aligned columns, with notes as trailing `#` lines.
#[derive(Debug, Default)]
pub struct TextEmitter;

impl Emitter for TextEmitter {
    fn emit(&self, table: &Table, out: &mut dyn Write) -> io::Result<()> {
        // Pre-render every cell so column widths can be computed.
        let headers: Vec<String> = table
            .axes()
            .iter()
            .cloned()
            .chain(table.columns().iter().map(|c| c.name().to_string()))
            .collect();
        let rows: Vec<Vec<String>> = (0..table.cells().len())
            .map(|row| {
                let mut fields: Vec<String> = table.cells()[row].labels.clone();
                for (col, column) in table.columns().iter().enumerate() {
                    fields.push(format_value(
                        table_value(table, row, col)?,
                        column.precision(),
                    ));
                }
                Ok(fields)
            })
            .collect::<io::Result<_>>()?;
        let widths: Vec<usize> = headers
            .iter()
            .enumerate()
            .map(|(i, h)| {
                rows.iter()
                    .map(|r| r[i].len())
                    .chain(std::iter::once(h.len()))
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        let num_axes = table.axes().len();

        writeln!(out, "{}", table.title())?;
        writeln!(out)?;
        let mut line = String::new();
        for (i, h) in headers.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i < num_axes {
                line.push_str(&format!("{h:<width$}", width = widths[i]));
            } else {
                line.push_str(&format!("{h:>width$}", width = widths[i]));
            }
        }
        writeln!(out, "{}", line.trim_end())?;
        for row in &rows {
            let mut line = String::new();
            for (i, field) in row.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                if i < num_axes {
                    line.push_str(&format!("{field:<width$}", width = widths[i]));
                } else {
                    line.push_str(&format!("{field:>width$}", width = widths[i]));
                }
            }
            writeln!(out, "{}", line.trim_end())?;
        }
        for note in table.notes() {
            writeln!(out, "# {note}")?;
        }
        if !table.failures().is_empty() {
            writeln!(out, "# FAILED CELLS ({})", table.failures().len())?;
            for failure in table.failures() {
                writeln!(out, "{}", failure_comment(failure))?;
            }
        }
        Ok(())
    }
}

/// Quotes a CSV field when it contains a delimiter, quote, or newline.
fn csv_field(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// RFC-4180-style CSV: a header row, then one record per cell.
#[derive(Debug, Default)]
pub struct CsvEmitter;

impl Emitter for CsvEmitter {
    fn emit(&self, table: &Table, out: &mut dyn Write) -> io::Result<()> {
        let mut header: Vec<String> = table.axes().iter().map(|a| csv_field(a)).collect();
        for column in table.columns() {
            header.push(csv_field(column.name()));
            if column.has_ci() {
                header.push(csv_field(&format!("{}_ci95", column.name())));
            }
        }
        writeln!(out, "{}", header.join(","))?;
        for row in 0..table.cells().len() {
            let mut fields: Vec<String> = table.cells()[row]
                .labels
                .iter()
                .map(|l| csv_field(l))
                .collect();
            for (col, column) in table.columns().iter().enumerate() {
                let precision = column.precision();
                match table_value(table, row, col)? {
                    Value::Num(v) => fields.push(format!("{v:.precision$}")),
                    Value::Ci(ci) => {
                        fields.push(format!("{:.precision$}", ci.mean));
                        fields.push(format!("{:.precision$}", ci.half_width));
                    }
                }
            }
            writeln!(out, "{}", fields.join(","))?;
        }
        for failure in table.failures() {
            writeln!(out, "{}", failure_comment(failure))?;
        }
        Ok(())
    }
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a JSON number; non-finite values become `null` (JSON has no
/// NaN or infinity).
fn json_number(v: f64, precision: usize) -> String {
    if v.is_finite() {
        format!("{v:.precision$}")
    } else {
        "null".to_string()
    }
}

/// A single JSON object: `{"title", "axes", "notes", "rows": [...]}`,
/// each row an object keyed by axis and column names.
#[derive(Debug, Default)]
pub struct JsonEmitter;

impl Emitter for JsonEmitter {
    fn emit(&self, table: &Table, out: &mut dyn Write) -> io::Result<()> {
        writeln!(out, "{{")?;
        writeln!(out, "  \"title\": \"{}\",", json_escape(table.title()))?;
        let axes: Vec<String> = table
            .axes()
            .iter()
            .map(|a| format!("\"{}\"", json_escape(a)))
            .collect();
        writeln!(out, "  \"axes\": [{}],", axes.join(", "))?;
        let notes: Vec<String> = table
            .notes()
            .iter()
            .map(|n| format!("\"{}\"", json_escape(n)))
            .collect();
        writeln!(out, "  \"notes\": [{}],", notes.join(", "))?;
        // Rendered only when present, so complete runs keep their exact
        // historical output.
        if !table.failures().is_empty() {
            writeln!(out, "  \"failures\": [")?;
            let n = table.failures().len();
            for (i, failure) in table.failures().iter().enumerate() {
                let comma = if i + 1 < n { "," } else { "" };
                writeln!(
                    out,
                    "    {{\"cell\": \"{}\", \"kind\": \"{}\", \"attempts\": {}, \"error\": \"{}\"}}{comma}",
                    json_escape(&failure.labels.join("/")),
                    failure.kind,
                    failure.attempts,
                    json_escape(&failure.error)
                )?;
            }
            writeln!(out, "  ],")?;
        }
        writeln!(out, "  \"rows\": [")?;
        let rows = table.cells().len();
        for row in 0..rows {
            let mut fields: Vec<String> = table
                .axes()
                .iter()
                .zip(table.cells()[row].labels.iter())
                .map(|(a, l)| format!("\"{}\": \"{}\"", json_escape(a), json_escape(l)))
                .collect();
            for (col, column) in table.columns().iter().enumerate() {
                let name = json_escape(column.name());
                let precision = column.precision();
                match table_value(table, row, col)? {
                    Value::Num(v) => {
                        fields.push(format!("\"{name}\": {}", json_number(v, precision)));
                    }
                    Value::Ci(ci) => fields.push(format!(
                        "\"{name}\": {{\"mean\": {}, \"ci95\": {}, \"n\": {}}}",
                        json_number(ci.mean, precision),
                        json_number(ci.half_width, precision),
                        ci.n
                    )),
                }
            }
            let comma = if row + 1 < rows { "," } else { "" };
            writeln!(out, "    {{{}}}{comma}", fields.join(", "))?;
        }
        writeln!(out, "  ]")?;
        writeln!(out, "}}")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_parsing_round_trips() {
        for f in Format::ALL {
            assert_eq!(Format::parse(f.label()), Some(f));
            assert_eq!(Format::parse(&f.label().to_ascii_uppercase()), Some(f));
        }
        assert_eq!(Format::parse("yaml"), None);
    }

    #[test]
    fn csv_fields_quote_delimiters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn json_escaping_covers_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_numbers_refuse_nan() {
        assert_eq!(json_number(1.25, 2), "1.25");
        assert_eq!(json_number(f64::NAN, 2), "null");
        assert_eq!(json_number(f64::INFINITY, 2), "null");
    }
}
