//! Whole-simulation configuration.

use std::path::PathBuf;

use patchsim_kernel::digest::Digest;
use patchsim_kernel::{stream_seed, streams};
use patchsim_noc::{FabricConfig, FabricKind, FaultSpec, LinkBandwidth};
use patchsim_predictor::PredictorChoice;
use patchsim_protocol::{ProtocolConfig, ProtocolKind};
use patchsim_workload::WorkloadSpec;

/// Telemetry controls for one run.
///
/// Every field defaults to off; the default configuration performs **no**
/// telemetry work at all. The whole subsystem is strictly read-only with
/// respect to the simulation: enabling any field never draws from an RNG,
/// never schedules an event, and never changes event order, so the
/// [`RunResult`](crate::RunResult) digest is identical with telemetry on
/// or off.
#[derive(Clone, Debug, Default)]
pub struct TelemetryConfig {
    /// When set, write an epoch-metrics JSONL time series to this path.
    pub metrics: Option<PathBuf>,
    /// Sampling period in cycles for the epoch metrics (default 10_000).
    pub metrics_every: u64,
    /// Record per-miss phase spans and aggregate them into per-phase
    /// histograms on the run result.
    pub spans: bool,
    /// Directory that receives flight-recorder dumps (`.fdr` files) when
    /// a safety or liveness oracle trips. The file name is derived from
    /// the configuration digest so concurrent cells never collide.
    pub flight_recorder: Option<PathBuf>,
    /// Measure host wall-time and event counts per event class and
    /// attach them to the run result (never folded into the digest).
    pub profile: bool,
}

impl TelemetryConfig {
    /// The default epoch length, in cycles, when `metrics_every` is 0.
    pub const DEFAULT_EPOCH: u64 = 10_000;

    /// The effective sampling period (treats 0 as the default).
    pub fn epoch(&self) -> u64 {
        if self.metrics_every == 0 {
            Self::DEFAULT_EPOCH
        } else {
            self.metrics_every
        }
    }

    /// True when any telemetry feature is enabled.
    pub fn any(&self) -> bool {
        self.metrics.is_some() || self.spans || self.flight_recorder.is_some() || self.profile
    }
}

/// How much runtime verification to perform.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckLevel {
    /// No per-event invariant checking (benchmarks at scale). The
    /// end-of-run drain and completion assertions still apply.
    Off,
    /// Audit token conservation on every message delivery and check
    /// single-writer/read-latest on every completed access. The right
    /// setting for tests and protocol fuzzing.
    Assert,
}

/// Configuration for one simulated system and workload.
///
/// Defaults reproduce the paper's baseline platform: a 2D torus with
/// 16-byte/cycle links and best-effort drop after 100 queued cycles,
/// per-node 1MB private caches, 16-cycle directory, 80-cycle DRAM.
/// [`SimConfig::with_fabric`] swaps the interconnect topology (mesh,
/// ring, crossbar, hierarchical clusters) while keeping everything else.
///
/// # Examples
///
/// ```
/// use patchsim::{LinkBandwidth, PredictorChoice, ProtocolKind, SimConfig};
///
/// let cfg = SimConfig::new(ProtocolKind::Patch, 64)
///     .with_predictor(PredictorChoice::BroadcastIfShared)
///     .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
///     .with_workload(patchsim::presets::oltp())
///     .with_ops_per_core(1_000);
/// assert_eq!(cfg.protocol.num_nodes, 64);
/// ```
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Protocol parameters (forwarded to every controller).
    pub protocol: ProtocolConfig,
    /// Interconnect link bandwidth.
    pub bandwidth: LinkBandwidth,
    /// Staleness bound after which queued best-effort messages drop.
    pub stale_drop_cycles: u64,
    /// The workload every core runs.
    pub workload: WorkloadSpec,
    /// Measured operations each core executes.
    pub ops_per_core: u64,
    /// Warmup operations per core, excluded from traffic and latency
    /// statistics (runtime is measured from the cycle the last core
    /// finishes warmup).
    pub warmup_ops_per_core: u64,
    /// Root RNG seed; perturbation runs vary this.
    pub seed: u64,
    /// Runtime verification level.
    pub check: CheckLevel,
    /// Hard wall-clock bound: the run panics if simulated time exceeds
    /// this, which converts a protocol livelock into a test failure.
    pub max_cycles: u64,
    /// Interconnect fault mix (default: none). The fault schedule is
    /// seeded from [`SimConfig::seed`], so it is replayable and varies
    /// across perturbation replications like every other random stream.
    pub faults: FaultSpec,
    /// Liveness oracle: the run panics if any single miss stays
    /// outstanding longer than this many cycles. `None` (the default)
    /// disables the watchdog; fault-injection runs set it to convert
    /// silent starvation into a test failure.
    pub liveness_horizon: Option<u64>,
    /// When set, the run records every generated work item and writes a
    /// `.ptrc` trace (see `patchsim-trace`) to this path as it finishes.
    /// Replaying that trace via `WorkloadSpec::Trace` reproduces the
    /// run's `RunResult` bit-for-bit.
    pub record_trace: Option<PathBuf>,
    /// Telemetry controls (all off by default). Observation is strictly
    /// read-only: no field here can change simulation results.
    pub telemetry: TelemetryConfig,
}

impl SimConfig {
    /// A paper-default configuration for `kind` on `num_nodes` cores
    /// running the microbenchmark.
    pub fn new(kind: ProtocolKind, num_nodes: u16) -> Self {
        SimConfig {
            protocol: ProtocolConfig::new(kind, num_nodes),
            bandwidth: FabricConfig::DEFAULT_BANDWIDTH,
            stale_drop_cycles: FabricConfig::DEFAULT_STALE_DROP,
            workload: WorkloadSpec::microbenchmark(),
            ops_per_core: 1_000,
            warmup_ops_per_core: 0,
            seed: 1,
            check: CheckLevel::Off,
            max_cycles: u64::MAX / 4,
            faults: FaultSpec::none(),
            liveness_horizon: None,
            record_trace: None,
            telemetry: TelemetryConfig::default(),
        }
    }

    /// Switches the coherence protocol in place, preserving every other
    /// protocol setting (system size, sharer encoding, tenure policy,
    /// cache geometry, ...). This is the protocol-axis transform of the
    /// experiment-plan API, where a kind change must not clobber settings
    /// applied by earlier axes.
    pub fn with_kind(mut self, kind: ProtocolKind) -> Self {
        self.protocol.kind = kind;
        self
    }

    /// Sets the destination-set predictor (PATCH).
    pub fn with_predictor(mut self, predictor: PredictorChoice) -> Self {
        self.protocol = self.protocol.with_predictor(predictor);
        self
    }

    /// Sets the interconnect link bandwidth.
    pub fn with_bandwidth(mut self, bandwidth: LinkBandwidth) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the interconnect fabric topology.
    pub fn with_fabric(mut self, fabric: FabricKind) -> Self {
        self.protocol.fabric = fabric;
        self
    }

    /// Sets the workload.
    pub fn with_workload(mut self, workload: WorkloadSpec) -> Self {
        self.workload = workload;
        self
    }

    /// Sets the per-core measured operation count.
    pub fn with_ops_per_core(mut self, ops: u64) -> Self {
        self.ops_per_core = ops;
        self
    }

    /// Sets the per-core warmup operation count.
    pub fn with_warmup(mut self, ops: u64) -> Self {
        self.warmup_ops_per_core = ops;
        self
    }

    /// Sets the root seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables per-event invariant checking.
    pub fn with_checks(mut self) -> Self {
        self.check = CheckLevel::Assert;
        self
    }

    /// Replaces the protocol configuration wholesale (for settings without
    /// a dedicated builder method).
    pub fn with_protocol(mut self, protocol: ProtocolConfig) -> Self {
        self.protocol = protocol;
        self
    }

    /// Sets the interconnect fault mix (see `patchsim_noc::faults`).
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Arms the starvation watchdog: the run fails if any miss stays
    /// outstanding longer than `cycles`.
    pub fn with_liveness_horizon(mut self, cycles: u64) -> Self {
        self.liveness_horizon = Some(cycles);
        self
    }

    /// Records the run's generated work items to a `.ptrc` trace at
    /// `path` when the run completes.
    pub fn with_record_trace(mut self, path: impl Into<PathBuf>) -> Self {
        self.record_trace = Some(path.into());
        self
    }

    /// Writes an epoch-metrics JSONL time series to `path`, sampling
    /// every `every` cycles (0 selects the default epoch length).
    pub fn with_metrics(mut self, path: impl Into<PathBuf>, every: u64) -> Self {
        self.telemetry.metrics = Some(path.into());
        self.telemetry.metrics_every = every;
        self
    }

    /// Enables per-miss phase-span histograms on the run result.
    pub fn with_spans(mut self) -> Self {
        self.telemetry.spans = true;
        self
    }

    /// Dumps a flight-recorder ring to a `.fdr` file under `dir` when a
    /// safety or liveness oracle trips.
    pub fn with_flight_recorder(mut self, dir: impl Into<PathBuf>) -> Self {
        self.telemetry.flight_recorder = Some(dir.into());
        self
    }

    /// Enables per-event-class host-side self-profiling.
    pub fn with_profile(mut self) -> Self {
        self.telemetry.profile = true;
        self
    }

    /// The stream label of the fault schedule's RNG stream ("faul");
    /// see [`patchsim_kernel::streams`].
    pub const FAULT_STREAM: u64 = streams::FAULT;

    /// A stable content digest of this configuration: every field that
    /// can influence simulation results is folded in, so two
    /// configurations with equal digests produce bit-identical
    /// [`RunResult`](crate::RunResult)s. The result store
    /// ([`exp::store`](crate::exp::store)) keys each `(cell, replication)`
    /// by this digest plus a code-version tag.
    ///
    /// `record_trace` is deliberately excluded — it only adds a side
    /// output, never changes measurements — so a recording run and a
    /// plain run share one cache entry.
    ///
    /// Structured sub-configurations are folded through their `Debug`
    /// representation: any field added to, removed from, or changed in
    /// `ProtocolConfig`, a workload profile, or a fault spec
    /// automatically changes the digest (a conservative invalidation —
    /// renaming a field invalidates cached cells that are still valid,
    /// which only costs recomputation, never staleness). Replayed traces
    /// are the exception: their work items are folded numerically, so the
    /// digest stays proportional to a header instead of rendering a
    /// multi-megabyte `Debug` string.
    pub fn stable_digest(&self) -> u64 {
        let mut d = Digest::new();
        d.str(&format!("{:?}", self.protocol));
        d.str(&format!("{:?}", self.bandwidth));
        d.u64(self.stale_drop_cycles);
        match &self.workload {
            WorkloadSpec::Trace(trace) => {
                d.str("Trace");
                d.str(&trace.label);
                d.u64(trace.seed);
                d.u64(u64::from(trace.num_nodes));
                d.u64(trace.working_set_blocks);
                d.u64(trace.streams.len() as u64);
                for stream in &trace.streams {
                    d.u64(stream.len() as u64);
                    for item in stream {
                        d.u64(item.addr.raw());
                        d.str(&format!("{:?}", item.kind));
                        d.u64(item.think_cycles);
                    }
                }
            }
            other => {
                d.str(&format!("{other:?}"));
            }
        }
        d.u64(self.ops_per_core);
        d.u64(self.warmup_ops_per_core);
        d.u64(self.seed);
        d.str(&format!("{:?}", self.check));
        d.u64(self.max_cycles);
        d.str(&format!("{:?}", self.faults));
        d.opt_u64(self.liveness_horizon);
        // Telemetry never changes measurements, so it is excluded like
        // `record_trace` — with one exception: span collection adds
        // per-phase histograms to the persisted `RunResult`, so a
        // spans-on run must not be satisfied by a spans-off store entry.
        // Folding the flag only when set keeps every pre-telemetry
        // digest unchanged.
        if self.telemetry.spans {
            d.str("telemetry.spans");
        }
        d.finish()
    }

    /// The interconnect configuration this simulation will use: the
    /// configured fabric topology at the system size, with the
    /// configured bandwidth, staleness bound, fault mix, and
    /// auto-calibrated hop latency. The fault schedule is seeded from a
    /// dedicated stream of the run seed, so faults never perturb the
    /// workload's random draws.
    pub fn fabric_config(&self) -> FabricConfig {
        FabricConfig::new(self.protocol.fabric, self.protocol.num_nodes)
            .with_bandwidth(self.bandwidth)
            .with_stale_drop_cycles(self.stale_drop_cycles)
            .with_faults(self.faults)
            .with_fault_seed(stream_seed(self.seed, Self::FAULT_STREAM))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_paper_baseline() {
        let cfg = SimConfig::new(ProtocolKind::Directory, 64);
        assert_eq!(cfg.bandwidth, LinkBandwidth::BytesPerCycle(16.0));
        assert_eq!(cfg.stale_drop_cycles, 100);
        assert_eq!(cfg.check, CheckLevel::Off);
        assert_eq!(cfg.workload.name(), "microbench");
    }

    #[test]
    fn builders_compose() {
        let cfg = SimConfig::new(ProtocolKind::Patch, 16)
            .with_predictor(PredictorChoice::All)
            .with_bandwidth(LinkBandwidth::Unbounded)
            .with_ops_per_core(5)
            .with_warmup(2)
            .with_seed(9)
            .with_checks();
        assert_eq!(cfg.protocol.predictor, PredictorChoice::All);
        assert_eq!(cfg.bandwidth, LinkBandwidth::Unbounded);
        assert_eq!(cfg.ops_per_core, 5);
        assert_eq!(cfg.warmup_ops_per_core, 2);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.check, CheckLevel::Assert);
        assert_eq!(cfg.fabric_config().num_nodes(), 16);
    }

    #[test]
    fn faults_thread_through_and_vary_by_seed() {
        let spec = FaultSpec::parse("jitter").unwrap();
        let cfg = SimConfig::new(ProtocolKind::Patch, 16)
            .with_faults(spec)
            .with_seed(5);
        let fabric = cfg.fabric_config();
        assert_eq!(fabric.faults(), spec);
        // The schedule seed is a dedicated stream of the run seed.
        let other = cfg.clone().with_seed(6).fabric_config();
        assert_ne!(fabric.fault_seed(), other.fault_seed());
        assert!(SimConfig::new(ProtocolKind::Patch, 16)
            .fabric_config()
            .faults()
            .is_none());
        assert!(cfg.liveness_horizon.is_none());
        assert_eq!(
            cfg.with_liveness_horizon(5_000).liveness_horizon,
            Some(5_000)
        );
    }

    #[test]
    fn stable_digest_is_deterministic_and_field_sensitive() {
        let cfg = SimConfig::new(ProtocolKind::Patch, 16)
            .with_ops_per_core(100)
            .with_seed(7);
        assert_eq!(cfg.stable_digest(), cfg.clone().stable_digest());
        assert_ne!(
            cfg.stable_digest(),
            cfg.clone().with_seed(8).stable_digest()
        );
        assert_ne!(
            cfg.stable_digest(),
            cfg.clone().with_ops_per_core(101).stable_digest()
        );
        assert_ne!(
            cfg.stable_digest(),
            cfg.clone().with_checks().stable_digest()
        );
        assert_ne!(
            cfg.stable_digest(),
            SimConfig::new(ProtocolKind::TokenB, 16)
                .with_ops_per_core(100)
                .with_seed(7)
                .stable_digest()
        );
    }

    #[test]
    fn stable_digest_ignores_trace_recording() {
        let cfg = SimConfig::new(ProtocolKind::Patch, 16).with_seed(3);
        let mut recording = cfg.clone();
        recording.record_trace = Some(std::path::PathBuf::from("/tmp/out.trace"));
        assert_eq!(cfg.stable_digest(), recording.stable_digest());
    }

    #[test]
    fn stable_digest_ignores_telemetry_except_spans() {
        let cfg = SimConfig::new(ProtocolKind::Patch, 16).with_seed(3);
        let instrumented = cfg
            .clone()
            .with_metrics("/tmp/metrics.jsonl", 500)
            .with_flight_recorder("/tmp/fdr")
            .with_profile();
        assert_eq!(cfg.stable_digest(), instrumented.stable_digest());
        // Spans add persisted payload, so they segregate store entries.
        assert_ne!(
            cfg.stable_digest(),
            cfg.clone().with_spans().stable_digest()
        );
    }

    #[test]
    fn fabric_threads_through_to_the_interconnect_config() {
        let cfg = SimConfig::new(ProtocolKind::Patch, 16)
            .with_fabric(FabricKind::FullyConnected)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0));
        let fabric = cfg.fabric_config();
        assert_eq!(fabric.kind(), FabricKind::FullyConnected);
        assert_eq!(fabric.num_nodes(), 16);
        assert_eq!(fabric.bandwidth(), LinkBandwidth::BytesPerCycle(2.0));
        // The default remains the paper's torus.
        assert_eq!(
            SimConfig::new(ProtocolKind::Patch, 16)
                .fabric_config()
                .kind(),
            FabricKind::Torus
        );
    }
}
