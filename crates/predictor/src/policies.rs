//! The four destination-set policies evaluated in the paper.

use patchsim_mem::{AccessKind, BlockAddr};
use patchsim_noc::{DestSet, NodeId};

use crate::{Predictor, PredictorTable};

/// Which destination-set policy to use; the names match the paper's
/// configurations (Figure 4's x-axis).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PredictorChoice {
    /// PATCH-None: never send direct requests.
    None,
    /// PATCH-Owner: direct request to the predicted owner only.
    Owner,
    /// PATCH-BcastIfShared: broadcast for recently shared macroblocks.
    BroadcastIfShared,
    /// PATCH-All: broadcast every miss.
    All,
}

impl PredictorChoice {
    /// Instantiates the chosen policy for an `num_nodes`-node system.
    pub fn build(self, num_nodes: u16) -> Box<dyn Predictor + Send> {
        match self {
            PredictorChoice::None => Box::new(NonePredictor::new(num_nodes)),
            PredictorChoice::Owner => Box::new(OwnerPredictor::new(num_nodes)),
            PredictorChoice::BroadcastIfShared => {
                Box::new(BroadcastIfSharedPredictor::new(num_nodes))
            }
            PredictorChoice::All => Box::new(AllPredictor::new(num_nodes)),
        }
    }

    /// The label used in figures ("PATCH-None", "PATCH-All", ...).
    pub fn label(self) -> &'static str {
        match self {
            PredictorChoice::None => "None",
            PredictorChoice::Owner => "Owner",
            PredictorChoice::BroadcastIfShared => "BcastIfShared",
            PredictorChoice::All => "All",
        }
    }
}

impl std::fmt::Display for PredictorChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Sends no direct requests: every miss goes only to the home
/// (PATCH-None). The resulting protocol behaves like DIRECTORY with token
/// counting.
#[derive(Debug)]
pub struct NonePredictor {
    num_nodes: u16,
}

impl NonePredictor {
    /// Creates the policy for an `num_nodes`-node system.
    pub fn new(num_nodes: u16) -> Self {
        NonePredictor { num_nodes }
    }
}

impl Predictor for NonePredictor {
    fn predict(&mut self, _addr: BlockAddr, _kind: AccessKind, _requester: NodeId) -> DestSet {
        DestSet::empty(self.num_nodes)
    }
    fn observe_request(&mut self, _addr: BlockAddr, _from: NodeId) {}
    fn observe_response(&mut self, _addr: BlockAddr, _from: NodeId) {}
}

/// Broadcasts a direct request to every other processor on every miss
/// (PATCH-All). With best-effort delivery this is the paper's headline
/// configuration.
#[derive(Debug)]
pub struct AllPredictor {
    num_nodes: u16,
}

impl AllPredictor {
    /// Creates the policy for an `num_nodes`-node system.
    pub fn new(num_nodes: u16) -> Self {
        AllPredictor { num_nodes }
    }
}

impl Predictor for AllPredictor {
    fn predict(&mut self, _addr: BlockAddr, _kind: AccessKind, requester: NodeId) -> DestSet {
        DestSet::all_except(self.num_nodes, requester)
    }
    fn observe_request(&mut self, _addr: BlockAddr, _from: NodeId) {}
    fn observe_response(&mut self, _addr: BlockAddr, _from: NodeId) {}
}

/// Predicts the block's owner and sends a single direct request to it
/// (PATCH-Owner). Trained by data responses: the last responder for a
/// macroblock is the owner candidate.
#[derive(Debug)]
pub struct OwnerPredictor {
    table: PredictorTable,
}

impl OwnerPredictor {
    /// Creates the policy with the paper's 8192-entry, 1024-byte-macroblock
    /// table.
    pub fn new(num_nodes: u16) -> Self {
        OwnerPredictor {
            table: PredictorTable::new(num_nodes),
        }
    }

    /// Creates the policy with a custom table.
    pub fn with_table(table: PredictorTable) -> Self {
        OwnerPredictor { table }
    }
}

impl Predictor for OwnerPredictor {
    fn predict(&mut self, addr: BlockAddr, _kind: AccessKind, requester: NodeId) -> DestSet {
        match self.table.last_owner(addr) {
            Some(owner) if owner != requester => DestSet::single(self.table.num_nodes(), owner),
            _ => DestSet::empty(self.table.num_nodes()),
        }
    }

    fn observe_request(&mut self, addr: BlockAddr, from: NodeId) {
        self.table.record_requester(addr, from);
    }

    fn observe_response(&mut self, addr: BlockAddr, from: NodeId) {
        self.table.record_responder(addr, from);
    }
}

/// Broadcasts direct requests for macroblocks recently involved with other
/// processors, and sends none otherwise (PATCH-BcastIfShared). Captures
/// most of PATCH-All's latency benefit at a fraction of its traffic.
#[derive(Debug)]
pub struct BroadcastIfSharedPredictor {
    table: PredictorTable,
}

impl BroadcastIfSharedPredictor {
    /// Creates the policy with the paper's default table geometry.
    pub fn new(num_nodes: u16) -> Self {
        BroadcastIfSharedPredictor {
            table: PredictorTable::new(num_nodes),
        }
    }

    /// Creates the policy with a custom table.
    pub fn with_table(table: PredictorTable) -> Self {
        BroadcastIfSharedPredictor { table }
    }
}

impl Predictor for BroadcastIfSharedPredictor {
    fn predict(&mut self, addr: BlockAddr, _kind: AccessKind, requester: NodeId) -> DestSet {
        if self.table.recently_shared(addr, requester) {
            DestSet::all_except(self.table.num_nodes(), requester)
        } else {
            DestSet::empty(self.table.num_nodes())
        }
    }

    fn observe_request(&mut self, addr: BlockAddr, from: NodeId) {
        self.table.record_requester(addr, from);
    }

    fn observe_response(&mut self, addr: BlockAddr, from: NodeId) {
        self.table.record_responder(addr, from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn none_predicts_nothing_ever() {
        let mut p = NonePredictor::new(16);
        p.observe_response(a(0), NodeId::new(3));
        assert!(p
            .predict(a(0), AccessKind::Write, NodeId::new(0))
            .is_empty());
    }

    #[test]
    fn all_predicts_everyone_but_self() {
        let mut p = AllPredictor::new(16);
        let set = p.predict(a(0), AccessKind::Read, NodeId::new(5));
        assert_eq!(set.len(), 15);
        assert!(!set.contains(NodeId::new(5)));
    }

    #[test]
    fn owner_predicts_last_responder() {
        let mut p = OwnerPredictor::new(16);
        assert!(p.predict(a(0), AccessKind::Read, NodeId::new(0)).is_empty());
        p.observe_response(a(0), NodeId::new(7));
        let set = p.predict(a(1), AccessKind::Write, NodeId::new(0));
        assert_eq!(set.as_single(), Some(NodeId::new(7)));
    }

    #[test]
    fn owner_never_predicts_self() {
        let mut p = OwnerPredictor::new(16);
        p.observe_response(a(0), NodeId::new(2));
        assert!(p.predict(a(0), AccessKind::Read, NodeId::new(2)).is_empty());
    }

    #[test]
    fn broadcast_if_shared_gates_on_sharing() {
        let mut p = BroadcastIfSharedPredictor::new(16);
        let me = NodeId::new(0);
        assert!(p.predict(a(0), AccessKind::Read, me).is_empty());
        p.observe_request(a(0), NodeId::new(9));
        let set = p.predict(a(0), AccessKind::Read, me);
        assert_eq!(set.len(), 15);
        assert!(!set.contains(me));
        // A macroblock only this node has touched stays quiet.
        p.observe_request(a(1000), me);
        assert!(p.predict(a(1000), AccessKind::Read, me).is_empty());
    }

    #[test]
    fn choice_builds_and_labels() {
        for (choice, label) in [
            (PredictorChoice::None, "None"),
            (PredictorChoice::Owner, "Owner"),
            (PredictorChoice::BroadcastIfShared, "BcastIfShared"),
            (PredictorChoice::All, "All"),
        ] {
            assert_eq!(choice.label(), label);
            let mut built = choice.build(8);
            // Smoke: prediction for a fresh address never includes self.
            let set = built.predict(a(0), AccessKind::Read, NodeId::new(1));
            assert!(!set.contains(NodeId::new(1)));
        }
    }
}
