//! The macroblock-indexed prediction table shared by the trained policies.

use patchsim_mem::BlockAddr;
use patchsim_noc::{DestSet, NodeId};

/// A direct-mapped prediction table indexed by macroblock.
///
/// Each entry remembers the set of processors recently involved with a
/// macroblock (requesters and responders) and the last seen "owner"
/// candidate. The paper's predictors use 8192 entries with 1024-byte
/// macroblock indexing; with 64-byte blocks that is 16 blocks per
/// macroblock.
///
/// # Examples
///
/// ```
/// use patchsim_mem::BlockAddr;
/// use patchsim_noc::NodeId;
/// use patchsim_predictor::PredictorTable;
///
/// let mut t = PredictorTable::new(64);
/// t.record_responder(BlockAddr::new(0), NodeId::new(3));
/// assert_eq!(t.last_owner(BlockAddr::new(5)), Some(NodeId::new(3))); // same macroblock
/// assert_eq!(t.last_owner(BlockAddr::new(16)), None);                // different macroblock
/// ```
#[derive(Debug)]
pub struct PredictorTable {
    num_nodes: u16,
    entries: Vec<Entry>,
    blocks_per_macroblock: u64,
}

#[derive(Debug, Clone)]
struct Entry {
    /// Which macroblock currently occupies this (direct-mapped) slot.
    tag: Option<u64>,
    /// Last node seen responding with data for this macroblock: the owner
    /// candidate.
    last_owner: Option<NodeId>,
    /// Processors recently seen requesting or responding: the sharing
    /// group.
    group: DestSet,
}

impl PredictorTable {
    /// The paper's table size.
    pub const DEFAULT_ENTRIES: usize = 8192;
    /// The paper's macroblock size with 64-byte blocks (1024 bytes).
    pub const DEFAULT_BLOCKS_PER_MACROBLOCK: u64 = 16;

    /// Creates a table with the paper's default geometry for an
    /// `num_nodes`-node system.
    pub fn new(num_nodes: u16) -> Self {
        Self::with_geometry(
            num_nodes,
            Self::DEFAULT_ENTRIES,
            Self::DEFAULT_BLOCKS_PER_MACROBLOCK,
        )
    }

    /// Creates a table with `entries` direct-mapped entries and
    /// `blocks_per_macroblock` blocks per macroblock.
    ///
    /// # Panics
    ///
    /// Panics if `entries` or `blocks_per_macroblock` is zero.
    pub fn with_geometry(num_nodes: u16, entries: usize, blocks_per_macroblock: u64) -> Self {
        assert!(entries > 0, "table needs at least one entry");
        assert!(blocks_per_macroblock > 0);
        PredictorTable {
            num_nodes,
            entries: vec![
                Entry {
                    tag: None,
                    last_owner: None,
                    group: DestSet::empty(num_nodes),
                };
                entries
            ],
            blocks_per_macroblock,
        }
    }

    fn slot(&mut self, addr: BlockAddr) -> &mut Entry {
        let mb = addr.macroblock(self.blocks_per_macroblock);
        let idx = (mb % self.entries.len() as u64) as usize;
        let num_nodes = self.num_nodes;
        let entry = &mut self.entries[idx];
        if entry.tag != Some(mb) {
            // Conflict (or cold) miss: the slot is recycled for this
            // macroblock.
            entry.tag = Some(mb);
            entry.last_owner = None;
            entry.group = DestSet::empty(num_nodes);
        }
        entry
    }

    fn peek(&self, addr: BlockAddr) -> Option<&Entry> {
        let mb = addr.macroblock(self.blocks_per_macroblock);
        let idx = (mb % self.entries.len() as u64) as usize;
        let entry = &self.entries[idx];
        (entry.tag == Some(mb)).then_some(entry)
    }

    /// Records an incoming request from `from` for `addr`'s macroblock.
    pub fn record_requester(&mut self, addr: BlockAddr, from: NodeId) {
        let entry = self.slot(addr);
        entry.group.insert(from);
    }

    /// Records a data/ack response from `from` for `addr`'s macroblock;
    /// `from` becomes the owner candidate.
    pub fn record_responder(&mut self, addr: BlockAddr, from: NodeId) {
        let entry = self.slot(addr);
        entry.group.insert(from);
        entry.last_owner = Some(from);
    }

    /// The owner candidate for `addr`'s macroblock, if the table has one.
    pub fn last_owner(&self, addr: BlockAddr) -> Option<NodeId> {
        self.peek(addr).and_then(|e| e.last_owner)
    }

    /// Whether `addr`'s macroblock has recently involved any processor
    /// other than `me` — the "recently shared" test of the
    /// broadcast-if-shared policy.
    pub fn recently_shared(&self, addr: BlockAddr, me: NodeId) -> bool {
        self.peek(addr)
            .is_some_and(|e| e.group.iter().any(|n| n != me))
    }

    /// The recent sharing group for `addr`'s macroblock.
    pub fn group(&self, addr: BlockAddr) -> DestSet {
        self.peek(addr)
            .map(|e| e.group.clone())
            .unwrap_or_else(|| DestSet::empty(self.num_nodes))
    }

    /// System size this table was built for.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn macroblock_aliasing_within_table() {
        let mut t = PredictorTable::new(8);
        t.record_responder(a(0), NodeId::new(1));
        // Blocks 0..16 share a macroblock.
        assert_eq!(t.last_owner(a(15)), Some(NodeId::new(1)));
        assert_eq!(t.last_owner(a(16)), None);
    }

    #[test]
    fn conflict_eviction_resets_entry() {
        // Two entries: macroblocks 0 and 2 collide.
        let mut t = PredictorTable::with_geometry(8, 2, 16);
        t.record_responder(a(0), NodeId::new(1));
        assert_eq!(t.last_owner(a(0)), Some(NodeId::new(1)));
        t.record_requester(a(32), NodeId::new(2)); // macroblock 2, same slot
        assert_eq!(
            t.last_owner(a(0)),
            None,
            "evicted by conflicting macroblock"
        );
        assert!(t.recently_shared(a(32), NodeId::new(0)));
    }

    #[test]
    fn recently_shared_ignores_self() {
        let mut t = PredictorTable::new(8);
        let me = NodeId::new(4);
        t.record_requester(a(0), me);
        assert!(!t.recently_shared(a(0), me), "only self in group");
        t.record_requester(a(0), NodeId::new(5));
        assert!(t.recently_shared(a(0), me));
    }

    #[test]
    fn group_accumulates() {
        let mut t = PredictorTable::new(8);
        t.record_requester(a(0), NodeId::new(1));
        t.record_responder(a(3), NodeId::new(2));
        let g = t.group(a(0));
        assert!(g.contains(NodeId::new(1)) && g.contains(NodeId::new(2)));
        assert_eq!(t.group(a(100)).len(), 0, "untouched macroblock is empty");
    }
}
