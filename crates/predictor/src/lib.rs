//! Destination-set predictors for PATCH's direct requests.
//!
//! PATCH sends each miss's request to the home (the *indirect* request)
//! and, optionally, directly to a predicted set of other processors (the
//! *direct* requests, delivered best-effort). The paper takes its
//! predictors directly from Martin et al., *"Using Destination-Set
//! Prediction to Improve the Latency/Bandwidth Tradeoff in Shared Memory
//! Multiprocessors"* (ISCA 2003), and evaluates four policies:
//!
//! * [`NonePredictor`] — no direct requests (PATCH-None: pure directory
//!   behaviour plus token counting).
//! * [`OwnerPredictor`] — predict the single node believed to own the block
//!   (PATCH-Owner): low traffic, roughly half the latency benefit.
//! * [`BroadcastIfSharedPredictor`] — broadcast to all for blocks observed
//!   to be shared recently, none otherwise (PATCH-BcastIfShared).
//! * [`AllPredictor`] — broadcast to everyone on every miss (PATCH-All):
//!   the full latency benefit of snooping, the full traffic cost.
//!
//! Table-based predictors use 8192-entry tables indexed by 1024-byte
//! macroblock (16 64-byte blocks), as in the paper.
//!
//! # Examples
//!
//! ```
//! use patchsim_mem::{AccessKind, BlockAddr};
//! use patchsim_noc::NodeId;
//! use patchsim_predictor::{OwnerPredictor, Predictor};
//!
//! let mut p = OwnerPredictor::new(64);
//! let me = NodeId::new(0);
//! // Before any training the predictor has no owner candidate:
//! assert!(p.predict(BlockAddr::new(100), AccessKind::Read, me).is_empty());
//! // After observing a response from P7 for the same macroblock:
//! p.observe_response(BlockAddr::new(100), NodeId::new(7));
//! let set = p.predict(BlockAddr::new(101), AccessKind::Read, me);
//! assert!(set.contains(NodeId::new(7)));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod policies;
mod table;

pub use policies::{
    AllPredictor, BroadcastIfSharedPredictor, NonePredictor, OwnerPredictor, PredictorChoice,
};
pub use table::PredictorTable;

use patchsim_mem::{AccessKind, BlockAddr};
use patchsim_noc::{DestSet, NodeId};

/// A destination-set predictor.
///
/// The coherence controller consults [`Predictor::predict`] on every miss
/// and trains the predictor with the coherence traffic it observes:
/// requests from other processors ([`Predictor::observe_request`]) and
/// data/ack responses ([`Predictor::observe_response`]).
pub trait Predictor {
    /// The set of processors to send direct requests to for a miss on
    /// `addr` of kind `kind` issued by `requester`. Never includes
    /// `requester` itself. An empty set means "send no direct requests".
    fn predict(&mut self, addr: BlockAddr, kind: AccessKind, requester: NodeId) -> DestSet;

    /// Trains on an incoming request (forwarded or direct) from `from`.
    fn observe_request(&mut self, addr: BlockAddr, from: NodeId);

    /// Trains on an incoming response (data or token ack) from `from`.
    fn observe_response(&mut self, addr: BlockAddr, from: NodeId);
}
