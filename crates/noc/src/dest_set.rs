//! Compact destination sets for multicast messages.

use std::fmt;

use crate::NodeId;

/// A set of destination nodes, stored as a bit vector.
///
/// Destination sets appear on every multicast message (invalidation
/// forwards, direct requests, persistent-request broadcasts) and in the
/// directory's sharer bookkeeping. The representation supports systems up
/// to any size; all sets in one system must be created with the same
/// `num_nodes`.
///
/// Systems of up to 64 nodes — every configuration in the paper's sweeps —
/// use a single inline `u64` word, so creating, cloning, and branching a
/// set in the interconnect hot path allocates nothing. Larger systems
/// spill to a heap-allocated word vector with identical semantics.
///
/// # Examples
///
/// ```
/// use patchsim_noc::{DestSet, NodeId};
///
/// let mut s = DestSet::empty(64);
/// s.insert(NodeId::new(3));
/// s.insert(NodeId::new(60));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(NodeId::new(3)));
/// let members: Vec<_> = s.iter().collect();
/// assert_eq!(members, vec![NodeId::new(3), NodeId::new(60)]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DestSet {
    repr: Repr,
    num_nodes: u16,
}

/// The bit-vector storage: one inline word for ≤64 nodes, a spill vector
/// above. The variant is a pure function of `num_nodes`, so derived
/// equality/hashing never compares across representations.
#[derive(Clone, PartialEq, Eq, Hash)]
enum Repr {
    Inline(u64),
    Spill(Vec<u64>),
}

impl DestSet {
    /// Creates an empty set for a system of `num_nodes` nodes.
    pub fn empty(num_nodes: u16) -> Self {
        let repr = if num_nodes <= 64 {
            Repr::Inline(0)
        } else {
            Repr::Spill(vec![0; (num_nodes as usize).div_ceil(64)])
        };
        DestSet { repr, num_nodes }
    }

    /// Creates a set containing only `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn single(num_nodes: u16, node: NodeId) -> Self {
        let mut s = Self::empty(num_nodes);
        s.insert(node);
        s
    }

    /// Creates a set containing every node.
    pub fn all(num_nodes: u16) -> Self {
        let mut s = Self::empty(num_nodes);
        for w in 0..(num_nodes as usize).div_ceil(64) {
            let bits_here = (num_nodes as usize - w * 64).min(64);
            let word = if bits_here == 64 {
                !0u64
            } else {
                (1u64 << bits_here) - 1
            };
            s.words_mut()[w] = word;
        }
        s
    }

    /// Creates a set containing every node except `excluded` — the shape of
    /// a broadcast direct request.
    pub fn all_except(num_nodes: u16, excluded: NodeId) -> Self {
        let mut s = Self::all(num_nodes);
        s.remove(excluded);
        s
    }

    /// Builds a set from an iterator of nodes.
    pub fn from_nodes(num_nodes: u16, nodes: impl IntoIterator<Item = NodeId>) -> Self {
        let mut s = Self::empty(num_nodes);
        for n in nodes {
            s.insert(n);
        }
        s
    }

    /// The system size this set was created for.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    #[inline]
    fn words(&self) -> &[u64] {
        match &self.repr {
            Repr::Inline(w) => std::slice::from_ref(w),
            Repr::Spill(v) => v,
        }
    }

    #[inline]
    fn words_mut(&mut self) -> &mut [u64] {
        match &mut self.repr {
            Repr::Inline(w) => std::slice::from_mut(w),
            Repr::Spill(v) => v,
        }
    }

    /// Adds `node` to the set. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range for this set's system size.
    pub fn insert(&mut self, node: NodeId) -> bool {
        assert!(
            node.raw() < self.num_nodes,
            "{node} out of range for {}-node system",
            self.num_nodes
        );
        let (w, b) = (node.index() / 64, node.index() % 64);
        let word = &mut self.words_mut()[w];
        let was = *word & (1 << b) != 0;
        *word |= 1 << b;
        !was
    }

    /// Removes `node` from the set. Returns `true` if it was present.
    pub fn remove(&mut self, node: NodeId) -> bool {
        if node.raw() >= self.num_nodes {
            return false;
        }
        let (w, b) = (node.index() / 64, node.index() % 64);
        let word = &mut self.words_mut()[w];
        let was = *word & (1 << b) != 0;
        *word &= !(1 << b);
        was
    }

    /// Returns `true` if `node` is in the set.
    #[inline]
    pub fn contains(&self, node: NodeId) -> bool {
        if node.raw() >= self.num_nodes {
            return false;
        }
        let (w, b) = (node.index() / 64, node.index() % 64);
        self.words()[w] & (1 << b) != 0
    }

    /// Number of nodes in the set.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline(w) => w.count_ones() as usize,
            Repr::Spill(v) => v.iter().map(|w| w.count_ones() as usize).sum(),
        }
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Inline(w) => *w == 0,
            Repr::Spill(v) => v.iter().all(|&w| w == 0),
        }
    }

    /// Removes all nodes.
    pub fn clear(&mut self) {
        self.words_mut().iter_mut().for_each(|w| *w = 0);
    }

    /// In-place union with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the two sets were created for different system sizes.
    pub fn union_with(&mut self, other: &DestSet) {
        assert_eq!(self.num_nodes, other.num_nodes, "mismatched system sizes");
        for (a, b) in self.words_mut().iter_mut().zip(other.words()) {
            *a |= b;
        }
    }

    /// Returns `true` if every member of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &DestSet) -> bool {
        assert_eq!(self.num_nodes, other.num_nodes, "mismatched system sizes");
        self.words()
            .iter()
            .zip(other.words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over members in increasing index order.
    pub fn iter(&self) -> Iter<'_> {
        Iter { set: self, next: 0 }
    }

    /// Returns the sole member if the set has exactly one.
    #[inline]
    pub fn as_single(&self) -> Option<NodeId> {
        if let Repr::Inline(w) = &self.repr {
            return (w.count_ones() == 1).then(|| NodeId::new(w.trailing_zeros() as u16));
        }
        let mut it = self.iter();
        let first = it.next()?;
        if it.next().is_none() {
            Some(first)
        } else {
            None
        }
    }
}

impl fmt::Debug for DestSet {
    /// Prints the set as a list of node ids, e.g. `{P1, P2}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the members of a [`DestSet`].
pub struct Iter<'a> {
    set: &'a DestSet,
    next: u32,
}

impl Iterator for Iter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        let words = self.set.words();
        while (self.next as usize) < self.set.num_nodes as usize {
            let idx = self.next as usize;
            let (w, b) = (idx / 64, idx % 64);
            // Skip whole empty words.
            let word = words[w] >> b;
            if word == 0 {
                self.next = ((w as u32) + 1) * 64;
                continue;
            }
            let offset = word.trailing_zeros();
            let found = idx as u32 + offset;
            if found as usize >= self.set.num_nodes as usize {
                return None;
            }
            self.next = found + 1;
            return Some(NodeId::new(found as u16));
        }
        None
    }
}

impl<'a> IntoIterator for &'a DestSet {
    type Item = NodeId;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_kernel::SimRng;

    /// Draws a random set of up to 39 distinct nodes in `0..300`.
    fn random_nodes(rng: &mut SimRng) -> std::collections::BTreeSet<u16> {
        let count = rng.below(40);
        let mut nodes = std::collections::BTreeSet::new();
        for _ in 0..count {
            nodes.insert(rng.below(300) as u16);
        }
        nodes
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = DestSet::empty(130);
        assert!(s.insert(NodeId::new(0)));
        assert!(s.insert(NodeId::new(129)));
        assert!(!s.insert(NodeId::new(129)), "double insert reports false");
        assert!(s.contains(NodeId::new(0)));
        assert!(s.contains(NodeId::new(129)));
        assert!(!s.contains(NodeId::new(64)));
        assert!(s.remove(NodeId::new(0)));
        assert!(!s.remove(NodeId::new(0)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn inline_and_spill_agree() {
        // The same operations on an inline-sized and a spill-sized set
        // must observe identical membership.
        for num_nodes in [64u16, 65] {
            let mut s = DestSet::empty(num_nodes);
            match (&s.repr, num_nodes) {
                (Repr::Inline(_), 64) | (Repr::Spill(_), 65) => {}
                _ => panic!("unexpected representation for {num_nodes} nodes"),
            }
            for i in (0..num_nodes).step_by(3) {
                s.insert(NodeId::new(i));
            }
            let members: Vec<u16> = s.iter().map(|n| n.raw()).collect();
            let want: Vec<u16> = (0..num_nodes).step_by(3).collect();
            assert_eq!(members, want);
            assert_eq!(s.len(), want.len());
        }
    }

    #[test]
    fn all_and_all_except() {
        let s = DestSet::all(65);
        assert_eq!(s.len(), 65);
        let s = DestSet::all_except(65, NodeId::new(64));
        assert_eq!(s.len(), 64);
        assert!(!s.contains(NodeId::new(64)));
        // Inline boundary: all(64) fills the whole word.
        let s = DestSet::all(64);
        assert_eq!(s.len(), 64);
        assert!(s.contains(NodeId::new(63)));
        let s = DestSet::all(5);
        assert_eq!(s.len(), 5);
        assert!(!s.contains(NodeId::new(5)));
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let nodes = [5u16, 0, 63, 64, 65, 127];
        let s = DestSet::from_nodes(128, nodes.iter().map(|&n| NodeId::new(n)));
        let got: Vec<u16> = s.iter().map(|n| n.raw()).collect();
        assert_eq!(got, vec![0, 5, 63, 64, 65, 127]);
    }

    #[test]
    fn as_single() {
        assert_eq!(DestSet::empty(8).as_single(), None);
        assert_eq!(
            DestSet::single(8, NodeId::new(3)).as_single(),
            Some(NodeId::new(3))
        );
        assert_eq!(DestSet::all(8).as_single(), None);
    }

    #[test]
    fn union_and_subset() {
        let mut a = DestSet::from_nodes(70, [NodeId::new(1), NodeId::new(69)]);
        let b = DestSet::from_nodes(70, [NodeId::new(2)]);
        assert!(!b.is_subset_of(&a));
        a.union_with(&b);
        assert!(b.is_subset_of(&a));
        assert_eq!(a.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        DestSet::empty(8).insert(NodeId::new(8));
    }

    #[test]
    fn contains_out_of_range_is_false() {
        assert!(!DestSet::all(8).contains(NodeId::new(200)));
    }

    #[test]
    fn debug_lists_members() {
        let s = DestSet::from_nodes(8, [NodeId::new(1), NodeId::new(2)]);
        assert_eq!(format!("{s:?}"), "{NodeId(1), NodeId(2)}");
    }

    /// Iteration yields exactly the inserted nodes in sorted order.
    /// Randomised over 256 seeded draws.
    #[test]
    fn iter_matches_inserted() {
        let mut rng = SimRng::from_seed(0xDE57);
        for _ in 0..256 {
            let nodes = random_nodes(&mut rng);
            let s = DestSet::from_nodes(300, nodes.iter().map(|&n| NodeId::new(n)));
            let got: Vec<u16> = s.iter().map(|n| n.raw()).collect();
            let want: Vec<u16> = nodes.into_iter().collect();
            assert_eq!(got, want);
        }
    }

    /// `len`/`is_empty` agree with the true member count.
    /// Randomised over 256 seeded draws.
    #[test]
    fn len_matches_count() {
        let mut rng = SimRng::from_seed(0x1E4);
        for _ in 0..256 {
            let nodes = random_nodes(&mut rng);
            let s = DestSet::from_nodes(300, nodes.iter().map(|&n| NodeId::new(n)));
            assert_eq!(s.len(), nodes.len());
            assert_eq!(s.is_empty(), nodes.is_empty());
        }
    }
}
