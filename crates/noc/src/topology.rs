//! Torus geometry and dimension-order routing.

use crate::NodeId;

/// One of the four inter-router link directions of a 2D torus.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Increasing x, wrapping.
    XPlus,
    /// Decreasing x, wrapping.
    XMinus,
    /// Increasing y, wrapping.
    YPlus,
    /// Decreasing y, wrapping.
    YMinus,
}

impl Direction {
    /// All directions; the index of each direction in this array is its
    /// per-node link index.
    pub const ALL: [Direction; 4] = [
        Direction::XPlus,
        Direction::XMinus,
        Direction::YPlus,
        Direction::YMinus,
    ];

    /// Index of this direction in [`Direction::ALL`].
    pub fn index(self) -> usize {
        match self {
            Direction::XPlus => 0,
            Direction::XMinus => 1,
            Direction::YPlus => 2,
            Direction::YMinus => 3,
        }
    }
}

/// The shape of a 2D torus: a `width × height` grid with wraparound links.
///
/// Node `i` sits at coordinates `(i % width, i / width)`. Construction
/// chooses the most nearly square factorization of the node count, matching
/// the paper's torus configurations (e.g. 64 nodes → 8×8, 512 → 32×16).
///
/// # Examples
///
/// ```
/// use patchsim_noc::{NodeId, Topology};
///
/// let t = Topology::new(64);
/// assert_eq!((t.width(), t.height()), (8, 8));
/// assert_eq!(t.hop_distance(NodeId::new(0), NodeId::new(63)), 2); // wraparound
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Topology {
    width: u16,
    height: u16,
}

impl Topology {
    /// Creates the most nearly square torus with `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: u16) -> Self {
        assert!(num_nodes > 0, "a torus needs at least one node");
        let mut best = (1u16, num_nodes);
        let mut w = 1u16;
        while w as u32 * w as u32 <= num_nodes as u32 {
            if num_nodes.is_multiple_of(w) {
                best = (w, num_nodes / w);
            }
            w += 1;
        }
        // Prefer width >= height for row-major layouts (purely cosmetic).
        Topology {
            width: best.1,
            height: best.0,
        }
    }

    /// Grid width.
    pub fn width(self) -> u16 {
        self.width
    }

    /// Grid height.
    pub fn height(self) -> u16 {
        self.height
    }

    /// Total node count.
    pub fn num_nodes(self) -> u16 {
        self.width * self.height
    }

    /// Coordinates of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn coords(self, node: NodeId) -> (u16, u16) {
        assert!(node.raw() < self.num_nodes(), "{node} out of range");
        (node.raw() % self.width, node.raw() / self.width)
    }

    /// The node at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the grid.
    pub fn node_at(self, x: u16, y: u16) -> NodeId {
        assert!(x < self.width && y < self.height, "({x},{y}) outside grid");
        NodeId::new(y * self.width + x)
    }

    /// The neighbor of `node` in direction `dir`.
    pub fn neighbor(self, node: NodeId, dir: Direction) -> NodeId {
        let (x, y) = self.coords(node);
        let (nx, ny) = match dir {
            Direction::XPlus => ((x + 1) % self.width, y),
            Direction::XMinus => ((x + self.width - 1) % self.width, y),
            Direction::YPlus => (x, (y + 1) % self.height),
            Direction::YMinus => (x, (y + self.height - 1) % self.height),
        };
        self.node_at(nx, ny)
    }

    /// The output direction a packet at `from` takes toward `to` under
    /// dimension-order (X then Y) routing with shortest-way wraparound, or
    /// `None` if `from == to`.
    pub fn next_hop(self, from: NodeId, to: NodeId) -> Option<Direction> {
        if from == to {
            return None;
        }
        let (fx, fy) = self.coords(from);
        let (tx, ty) = self.coords(to);
        if fx != tx {
            let forward = (tx + self.width - fx) % self.width;
            // Ties (exactly half way around) break toward XPlus.
            Some(if forward * 2 <= self.width {
                Direction::XPlus
            } else {
                Direction::XMinus
            })
        } else {
            let forward = (ty + self.height - fy) % self.height;
            Some(if forward * 2 <= self.height {
                Direction::YPlus
            } else {
                Direction::YMinus
            })
        }
    }

    /// Minimal hop count between two nodes on the torus.
    pub fn hop_distance(self, a: NodeId, b: NodeId) -> u32 {
        let (ax, ay) = self.coords(a);
        let (bx, by) = self.coords(b);
        let dx = {
            let fwd = (bx + self.width - ax) % self.width;
            fwd.min(self.width - fwd)
        };
        let dy = {
            let fwd = (by + self.height - ay) % self.height;
            fwd.min(self.height - fwd)
        };
        dx as u32 + dy as u32
    }

    /// Average hop distance between distinct node pairs; used to calibrate
    /// per-hop latency against the paper's "total link latency of 15
    /// cycles".
    pub fn average_hop_distance(self) -> f64 {
        let n = self.num_nodes();
        if n < 2 {
            return 0.0;
        }
        // Distances from node 0 are representative: the torus is
        // vertex-transitive.
        let total: u64 = (0..n)
            .map(|i| self.hop_distance(NodeId::new(0), NodeId::new(i)) as u64)
            .sum();
        total as f64 / (n - 1) as f64
    }
}

/// A precomputed next-hop table: `num_nodes × num_nodes` output
/// directions under dimension-order routing.
///
/// [`Topology::next_hop`] recomputes coordinates, wrap distances, and the
/// tie-break on every call; the interconnect asks that question once per
/// destination per hop, which makes it one of the hottest functions in a
/// multicast-heavy run. This table collapses the whole computation to a
/// single byte load. Built once per [`Torus`](crate::Torus).
///
/// # Examples
///
/// ```
/// use patchsim_noc::{NodeId, RouteTable, Topology};
///
/// let topo = Topology::new(16);
/// let routes = RouteTable::new(topo);
/// assert_eq!(
///     routes.next_hop(NodeId::new(0), NodeId::new(2)),
///     topo.next_hop(NodeId::new(0), NodeId::new(2)),
/// );
/// ```
#[derive(Clone, Debug)]
pub struct RouteTable {
    num_nodes: usize,
    /// Entry `from * num_nodes + to`: the direction's index in
    /// [`Direction::ALL`], or `SELF` when `from == to`.
    dirs: Vec<u8>,
}

/// Table marker for `from == to` (no hop to take).
const SELF: u8 = 4;

impl RouteTable {
    /// Precomputes every pairwise next hop for `topo`.
    pub fn new(topo: Topology) -> Self {
        let n = topo.num_nodes() as usize;
        let mut dirs = vec![SELF; n * n];
        for from in 0..n {
            for to in 0..n {
                if let Some(dir) = topo.next_hop(NodeId::new(from as u16), NodeId::new(to as u16)) {
                    dirs[from * n + to] = dir.index() as u8;
                }
            }
        }
        RouteTable { num_nodes: n, dirs }
    }

    /// The output direction a packet at `from` takes toward `to`, or
    /// `None` if `from == to`. Identical to [`Topology::next_hop`], one
    /// byte load instead of a route computation.
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range for the table's system size.
    #[inline]
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<Direction> {
        let d = self.dirs[from.index() * self.num_nodes + to.index()];
        if d == SELF {
            None
        } else {
            Some(Direction::ALL[d as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_kernel::SimRng;

    #[test]
    fn squarest_factorization() {
        assert_eq!(Topology::new(4).width(), 2);
        assert_eq!(Topology::new(16).width(), 4);
        assert_eq!(Topology::new(64).width(), 8);
        let t = Topology::new(128);
        assert_eq!((t.width(), t.height()), (16, 8));
        let t = Topology::new(512);
        assert_eq!((t.width(), t.height()), (32, 16));
        let t = Topology::new(6);
        assert_eq!((t.width(), t.height()), (3, 2));
    }

    #[test]
    fn coords_round_trip() {
        let t = Topology::new(12);
        for i in 0..12 {
            let n = NodeId::new(i);
            let (x, y) = t.coords(n);
            assert_eq!(t.node_at(x, y), n);
        }
    }

    #[test]
    fn neighbors_wrap() {
        let t = Topology::new(16); // 4x4
        assert_eq!(t.neighbor(NodeId::new(3), Direction::XPlus), NodeId::new(0));
        assert_eq!(
            t.neighbor(NodeId::new(0), Direction::XMinus),
            NodeId::new(3)
        );
        assert_eq!(
            t.neighbor(NodeId::new(0), Direction::YMinus),
            NodeId::new(12)
        );
        assert_eq!(
            t.neighbor(NodeId::new(12), Direction::YPlus),
            NodeId::new(0)
        );
    }

    #[test]
    fn next_hop_none_for_self() {
        let t = Topology::new(16);
        assert_eq!(t.next_hop(NodeId::new(5), NodeId::new(5)), None);
    }

    #[test]
    fn wraparound_distance() {
        let t = Topology::new(64); // 8x8
                                   // corner to corner: 1 hop x (wrap) + 1 hop y (wrap)
        assert_eq!(t.hop_distance(NodeId::new(0), NodeId::new(63)), 2);
        // max distance on 8x8 torus is 4+4
        let max = (0..64)
            .map(|i| t.hop_distance(NodeId::new(0), NodeId::new(i)))
            .max()
            .unwrap();
        assert_eq!(max, 8);
    }

    #[test]
    fn average_hop_distance_known_value() {
        // 2x2 torus: distances from 0 are [0,1,1,2] -> avg over others = 4/3
        let t = Topology::new(4);
        assert!((t.average_hop_distance() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(Topology::new(1).average_hop_distance(), 0.0);
    }

    /// Following next_hop repeatedly always reaches the destination in
    /// exactly hop_distance steps (routing is minimal and loop-free).
    /// Randomised over 512 seeded (size, from, to) draws.
    #[test]
    fn routing_is_minimal() {
        let mut rng = SimRng::from_seed(0x707);
        for _ in 0..512 {
            let n = 1 + rng.below(149) as u16;
            let t = Topology::new(n);
            let from = NodeId::new(rng.below(n as u64) as u16);
            let to = NodeId::new(rng.below(n as u64) as u16);
            let mut cur = from;
            let mut steps = 0;
            while let Some(dir) = t.next_hop(cur, to) {
                cur = t.neighbor(cur, dir);
                steps += 1;
                assert!(
                    steps <= t.hop_distance(from, to),
                    "route exceeded minimal length"
                );
            }
            assert_eq!(cur, to);
            assert_eq!(steps, t.hop_distance(from, to));
        }
    }

    /// The route table agrees with the on-the-fly computation for every
    /// pair, across shapes with and without odd wrap ties.
    #[test]
    fn route_table_matches_next_hop() {
        for n in [1u16, 4, 6, 15, 16, 64] {
            let t = Topology::new(n);
            let table = RouteTable::new(t);
            for from in 0..n {
                for to in 0..n {
                    assert_eq!(
                        table.next_hop(NodeId::new(from), NodeId::new(to)),
                        t.next_hop(NodeId::new(from), NodeId::new(to)),
                        "mismatch for {n}-node torus {from}->{to}"
                    );
                }
            }
        }
    }

    /// The factorization always multiplies back to the node count
    /// (checked exhaustively for every size the paper's sweeps use).
    #[test]
    fn factorization_exact() {
        for n in 1u16..1024 {
            let t = Topology::new(n);
            assert_eq!(t.width() as u32 * t.height() as u32, n as u32);
            assert!(t.width() >= t.height());
        }
    }
}
