//! Per-link priority queueing with best-effort staleness drop.

use std::collections::VecDeque;

use patchsim_kernel::Cycle;

/// Delivery priority of a message.
///
/// PATCH's bandwidth adaptivity rests on a two-level priority scheme: all
/// correctness-relevant traffic (indirect requests, forwards, data, acks)
/// travels at [`Priority::Normal`] and is never dropped, while predictive
/// direct requests travel at [`Priority::BestEffort`] — they transmit only
/// when no normal-priority packet wants the link, and are discarded once
/// they have been queued longer than the configured staleness bound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Priority {
    /// Guaranteed delivery; never dropped, always preferred.
    Normal,
    /// Performance-hint traffic: strictly lower priority, dropped when
    /// stale. Losing such a message must be harmless to correctness.
    BestEffort,
}

/// A queued packet with its enqueue timestamp (for staleness checks).
#[derive(Debug)]
struct Queued<P> {
    enqueued_at: Cycle,
    packet: P,
}

/// The waiting room of one link: a strict-priority pair of FIFO queues.
#[derive(Debug)]
pub(crate) struct PriorityQueue<P> {
    normal: VecDeque<Queued<P>>,
    best_effort: VecDeque<Queued<P>>,
}

impl<P> PriorityQueue<P> {
    /// Creates a queue with `capacity` pre-reserved slots per level.
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        PriorityQueue {
            normal: VecDeque::with_capacity(capacity),
            best_effort: VecDeque::with_capacity(capacity),
        }
    }

    pub(crate) fn push(&mut self, now: Cycle, priority: Priority, packet: P) {
        let q = Queued {
            enqueued_at: now,
            packet,
        };
        match priority {
            Priority::Normal => self.normal.push_back(q),
            Priority::BestEffort => self.best_effort.push_back(q),
        }
    }

    /// Pops the next packet to serve: normal priority first, FIFO within a
    /// level. Best-effort packets that have been queued for more than
    /// `stale_after` cycles are dropped (reported through `on_drop`) rather
    /// than served.
    pub(crate) fn pop(
        &mut self,
        now: Cycle,
        stale_after: u64,
        mut on_drop: impl FnMut(P),
    ) -> Option<P> {
        if let Some(q) = self.normal.pop_front() {
            return Some(q.packet);
        }
        while let Some(q) = self.best_effort.pop_front() {
            if now.saturating_since(q.enqueued_at) > stale_after {
                on_drop(q.packet);
            } else {
                return Some(q.packet);
            }
        }
        None
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.normal.is_empty() && self.best_effort.is_empty()
    }

    pub(crate) fn len(&self) -> usize {
        self.normal.len() + self.best_effort.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(n: u64) -> Cycle {
        Cycle::new(n)
    }

    #[test]
    fn normal_precedes_best_effort() {
        let mut q = PriorityQueue::with_capacity(0);
        q.push(c(0), Priority::BestEffort, "hint");
        q.push(c(1), Priority::Normal, "real");
        assert_eq!(q.pop(c(2), 100, |_| panic!("no drops")), Some("real"));
        assert_eq!(q.pop(c(2), 100, |_| panic!("no drops")), Some("hint"));
        assert!(q.is_empty());
    }

    #[test]
    fn fifo_within_level() {
        let mut q = PriorityQueue::with_capacity(0);
        q.push(c(0), Priority::Normal, 1);
        q.push(c(0), Priority::Normal, 2);
        q.push(c(0), Priority::Normal, 3);
        assert_eq!(q.pop(c(0), 0, |_| ()), Some(1));
        assert_eq!(q.pop(c(0), 0, |_| ()), Some(2));
        assert_eq!(q.pop(c(0), 0, |_| ()), Some(3));
    }

    #[test]
    fn stale_best_effort_is_dropped() {
        let mut q = PriorityQueue::with_capacity(0);
        q.push(c(0), Priority::BestEffort, "old");
        q.push(c(90), Priority::BestEffort, "fresh");
        let mut dropped = Vec::new();
        // At cycle 150, "old" has waited 150 > 100 and is dropped; "fresh"
        // has waited 60 and is served.
        assert_eq!(q.pop(c(150), 100, |p| dropped.push(p)), Some("fresh"));
        assert_eq!(dropped, vec!["old"]);
    }

    #[test]
    fn exactly_at_bound_is_not_stale() {
        let mut q = PriorityQueue::with_capacity(0);
        q.push(c(0), Priority::BestEffort, "edge");
        assert_eq!(q.pop(c(100), 100, |_| panic!("no drops")), Some("edge"));
    }

    #[test]
    fn normal_is_never_dropped() {
        let mut q = PriorityQueue::with_capacity(0);
        q.push(c(0), Priority::Normal, "slow but sure");
        assert_eq!(
            q.pop(c(1_000_000), 100, |_| panic!("no drops")),
            Some("slow but sure")
        );
    }

    #[test]
    fn len_counts_both_levels() {
        let mut q = PriorityQueue::with_capacity(0);
        q.push(c(0), Priority::Normal, 1);
        q.push(c(0), Priority::BestEffort, 2);
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }

    #[test]
    fn pop_empty_returns_none() {
        let mut q: PriorityQueue<u8> = PriorityQueue::with_capacity(0);
        assert_eq!(q.pop(c(0), 0, |_| ()), None);
    }
}
