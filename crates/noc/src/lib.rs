//! Pluggable interconnect fabrics for the `patchsim` cache-coherence
//! simulator.
//!
//! The paper evaluates PATCH on "a 2D-torus with adaptive routing, efficient
//! multicast routing, and a total link latency of 15 cycles", where the
//! interconnect "deprioritizes direct requests and drops them if they have
//! been queued for more than 100 cycles". This crate models exactly the
//! properties those claims rest on — and generalizes the topology: one
//! generic [`Fabric`] engine drives any [`FabricKind`] (torus, mesh, ring,
//! crossbar, hierarchical clusters) through routing tables derived from
//! the topology's adjacency by the deterministic BFS builder in
//! [`fabric`]. The modelled properties:
//!
//! * **Shortest-path table routing** with a fixed deterministic tie-break
//!   (on the torus this reproduces dimension-order routing exactly; the
//!   substitution for GEMS' adaptive routing is documented in `DESIGN.md`).
//! * **Fan-out multicast**: a multi-destination message occupies each link
//!   on its routing tree once, no matter how many destinations lie beyond
//!   it. This is what makes invalidation *forwards* cheap while
//!   acknowledgement *implosion* stays expensive — the asymmetry behind the
//!   paper's Figures 9 and 10.
//! * **Per-link serialization**: finite links transmit
//!   `ceil(bytes / bandwidth)` cycles per packet; contending packets
//!   queue. Link latency and bandwidth are per-link [`LinkParams`] (the
//!   hierarchical fabric gives inter-cluster links distinct parameters).
//! * **Strict priorities with best-effort drop**: [`Priority::BestEffort`]
//!   packets only transmit when no higher-priority packet is waiting, and
//!   are silently discarded once they have waited longer than the
//!   configured staleness bound. This is PATCH's bandwidth-adaptivity
//!   mechanism.
//! * **Per-class traffic accounting** ([`TrafficStats`]) measured in
//!   link-traversal bytes, the unit of every traffic figure in the paper.
//! * **Deterministic fault injection** ([`faults`]): seeded delay spikes,
//!   bounded reordering, duplication, degraded links/nodes, and congestion
//!   storms, replayable from `(FaultSpec, seed)` and disabled by default.
//!
//! The interconnect is driven by the simulation's central event queue: calls
//! to [`Fabric::send`] and [`Fabric::handle`] emit follow-up [`NocEvent`]s
//! via a scheduling callback, and completed deliveries via a delivery
//! callback. [`Torus`] is a type alias for the engine; the legacy
//! [`TorusConfig`] converts into a [`FabricConfig`].
//!
//! # Examples
//!
//! ```
//! use patchsim_kernel::Cycle;
//! use patchsim_noc::{DestSet, NocEvent, NocPayload, NodeId, Priority, Torus, TorusConfig, TrafficClass};
//!
//! #[derive(Clone, Debug)]
//! struct Ping;
//! impl NocPayload for Ping {
//!     fn size_bytes(&self) -> u64 { 8 }
//!     fn traffic_class(&self) -> TrafficClass { TrafficClass::IndirectRequest }
//! }
//!
//! let mut net: Torus<Ping> = Torus::new(TorusConfig::new(16));
//! let mut pending: Vec<(Cycle, NocEvent<Ping>)> = Vec::new();
//! net.send(
//!     Cycle::ZERO,
//!     NodeId::new(0),
//!     DestSet::single(16, NodeId::new(5)),
//!     Priority::Normal,
//!     Ping,
//!     &mut |at, ev| pending.push((at, ev)),
//! );
//! // Drain the event list (a real simulator uses its EventQueue).
//! let mut delivered = Vec::new();
//! while let Some((at, ev)) = pending.pop() {
//!     net.handle(at, ev, &mut |at, ev| pending.push((at, ev)), &mut |node, _msg| {
//!         delivered.push(node);
//!     });
//! }
//! assert_eq!(delivered, vec![NodeId::new(5)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dest_set;
pub mod fabric;
pub mod faults;
mod link;
mod node_id;
mod topology;
mod torus;
mod traffic;

pub use dest_set::DestSet;
pub use fabric::{
    Adjacency, Fabric, FabricConfig, FabricKind, FabricSpec, LinkClass, LinkParams, MulticastTree,
    NocEvent,
};
pub use faults::{DegradeFault, DelayFault, DuplicateFault, FaultSpec, ReorderFault, StormFault};
pub use link::Priority;
pub use node_id::NodeId;
pub use topology::{RouteTable, Topology};
pub use torus::{Torus, TorusConfig};
pub use traffic::{LinkBandwidth, TrafficClass, TrafficStats};

/// Payload carried by the interconnect.
///
/// The interconnect is agnostic to coherence-protocol contents; it only
/// needs each message's wire size (for serialization and traffic
/// accounting) and its traffic class (for the per-class breakdowns of the
/// paper's Figures 5 and 10).
pub trait NocPayload {
    /// Size of the message on the wire, in bytes (header included).
    fn size_bytes(&self) -> u64;
    /// Accounting category for traffic figures.
    fn traffic_class(&self) -> TrafficClass;
    /// Whether the receiving protocol tolerates duplicate deliveries of
    /// this message. The fault layer ([`faults`]) only double-delivers
    /// packets that opt in (e.g. PATCH's token-free direct-request
    /// hints); everything else models a link-level retransmission
    /// instead, preserving at-most-once delivery of token carriers.
    fn dup_safe(&self) -> bool {
        false
    }
}
