//! Deterministic fault injection for the interconnect fabric.
//!
//! A [`FaultSpec`] describes a mix of interconnect misbehaviors — delay
//! spikes, bounded reordering, message duplication, degraded links or
//! nodes, and periodic congestion storms — that the [`Fabric`] engine
//! applies while transmitting packets. Faults are *timing-level*: they
//! stretch, jitter, or repeat link traversals, but never corrupt or
//! silently discard a guaranteed-delivery packet, so every protocol
//! safety invariant (token conservation, coherence) must still hold
//! under any fault mix. What faults *can* break is performance and
//! liveness margins, which is exactly what the `faults` experiment plan
//! measures.
//!
//! # Determinism
//!
//! All fault decisions are drawn from a dedicated [`SimRng`] stream
//! seeded from the run seed (see `FabricConfig::with_fault_seed`), in a
//! fixed order per transmission. A fault schedule is therefore a pure
//! function of `(FaultSpec, seed)`: re-running the same configuration
//! replays the exact same spikes, swaps, and duplicates, and sweeping
//! with `--threads N` stays bit-identical to a serial sweep. A spec of
//! [`FaultSpec::none`] installs no fault state at all — zero extra RNG
//! draws, zero timing change — so fault-free runs are byte-identical to
//! builds that predate the fault layer.
//!
//! [`Fabric`]: crate::fabric::Fabric
//! [`SimRng`]: patchsim_kernel::SimRng
//!
//! # Examples
//!
//! Specs are built from a compact clause grammar (`+`-joined), or from
//! named presets:
//!
//! ```
//! use patchsim_noc::FaultSpec;
//!
//! // 2% of traversals spiked by up to 200 cycles, plus duplication.
//! let spec = FaultSpec::parse("delay:0.02:200+dup:0.01").unwrap();
//! assert!(spec.delay.is_some() && spec.duplicate.is_some());
//! // Labels are canonical and round-trip through the parser.
//! assert_eq!(FaultSpec::parse(&spec.label()), Some(spec));
//!
//! // `none` disables everything; presets name common mixes.
//! assert!(FaultSpec::parse("none").unwrap().is_none());
//! assert!(FaultSpec::parse("chaos").unwrap().reorder.is_some());
//! ```

use patchsim_kernel::SimRng;

/// Per-traversal random delay spikes (`delay:PROB:MAX`).
///
/// Each link traversal independently suffers an extra delay of
/// `1..=max_spike` cycles with probability `prob`. Models transient
/// contention or retry storms on otherwise healthy links.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelayFault {
    /// Probability that a traversal is spiked, in `[0, 1]`.
    pub prob: f64,
    /// Largest extra delay in cycles (uniform in `1..=max_spike`).
    pub max_spike: u64,
}

/// Bounded reordering windows (`reorder:WINDOW`).
///
/// Each traversal's arrival is jittered by a uniform `0..window` extra
/// cycles, letting packets that share a link overtake each other within
/// a bounded horizon. This is the sweepable form of the adversarial
/// reordering that exposed the TokenB persistent-request serial bug.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReorderFault {
    /// Reordering horizon in cycles (jitter is uniform in `0..window`).
    pub window: u64,
}

/// Message duplication (`dup:PROB`).
///
/// Each traversal is duplicated with probability `prob`. Packets that
/// declare themselves duplicate-tolerant (`NocPayload::dup_safe`, e.g.
/// PATCH's token-free direct-request hints) are genuinely delivered
/// twice; all other packets model a link-level retransmission instead —
/// the link is occupied for a second serialization and the single
/// delivery arrives late — because the protocols assume (as real
/// end-to-end NICs guarantee) at-most-once delivery of token carriers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DuplicateFault {
    /// Probability that a traversal is duplicated, in `[0, 1]`.
    pub prob: f64,
}

/// Degraded links or nodes (`slowlinks:FRAC:K`, `slownodes:FRAC:K`).
///
/// A deterministic `fraction` of links (or of nodes, degrading every
/// link they source) runs `factor`× slower: latency is multiplied by
/// `factor` and effective bandwidth divided by it (serialization time
/// scales with the same factor). The degraded set is drawn once at
/// fabric construction from the fault stream, so it is stable for the
/// whole run and replayable from the seed.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeFault {
    /// Fraction of links/nodes degraded, in `[0, 1]`.
    pub fraction: f64,
    /// Slowdown multiplier (≥ 1) applied to latency and serialization.
    pub factor: u64,
}

/// Periodic congestion storms (`storm:PERIOD:LEN:K`).
///
/// Every `period` cycles, all links spend `len` cycles with their
/// serialization time multiplied by `factor` — a global bandwidth
/// brown-out. The storm phase is drawn once from the fault stream so
/// different seeds see storms at different offsets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StormFault {
    /// Storm recurrence period in cycles.
    pub period: u64,
    /// Storm duration in cycles (`len <= period`).
    pub len: u64,
    /// Serialization multiplier (≥ 1) while the storm is active.
    pub factor: u64,
}

/// A deterministic mix of interconnect faults.
///
/// Every field is independently optional; [`FaultSpec::none`] (also the
/// `Default`) disables injection entirely. Build specs with
/// [`FaultSpec::parse`] from the clause grammar documented in
/// `docs/faults.md`, or construct fields directly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FaultSpec {
    /// Random per-traversal delay spikes.
    pub delay: Option<DelayFault>,
    /// Bounded arrival-order jitter.
    pub reorder: Option<ReorderFault>,
    /// Message duplication / link-level retransmission.
    pub duplicate: Option<DuplicateFault>,
    /// A fixed fraction of links degraded for the whole run.
    pub slow_links: Option<DegradeFault>,
    /// A fixed fraction of nodes degraded for the whole run.
    pub slow_nodes: Option<DegradeFault>,
    /// Periodic global congestion storms.
    pub storm: Option<StormFault>,
}

impl FaultSpec {
    /// The empty spec: no fault state installed, no RNG draws, timing
    /// byte-identical to a fault-free build.
    pub fn none() -> Self {
        FaultSpec::default()
    }

    /// `true` if no fault clause is enabled.
    pub fn is_none(&self) -> bool {
        self.delay.is_none()
            && self.reorder.is_none()
            && self.duplicate.is_none()
            && self.slow_links.is_none()
            && self.slow_nodes.is_none()
            && self.storm.is_none()
    }

    /// Parses a spec string: `none`, a preset name, or `+`-joined
    /// clauses (`delay:P:S`, `reorder:W`, `dup:P`, `slowlinks:F:K`,
    /// `slownodes:F:K`, `storm:PERIOD:LEN:K`). Returns `None` on
    /// unknown clauses or out-of-range parameters.
    ///
    /// Presets: `jitter`, `reorder`, `dup`, `slowlinks`, `slownodes`,
    /// `storm`, and `chaos` (a combination stress mix).
    pub fn parse(s: &str) -> Option<FaultSpec> {
        match s {
            "none" => return Some(FaultSpec::none()),
            "jitter" => return FaultSpec::parse("delay:0.02:200"),
            "reorder" => return FaultSpec::parse("reorder:64"),
            "dup" => return FaultSpec::parse("dup:0.01"),
            "slowlinks" => return FaultSpec::parse("slowlinks:0.125:4"),
            "slownodes" => return FaultSpec::parse("slownodes:0.125:4"),
            "storm" => return FaultSpec::parse("storm:20000:2000:8"),
            "chaos" => {
                return FaultSpec::parse("delay:0.02:200+reorder:64+dup:0.01+storm:20000:2000:8")
            }
            _ => {}
        }
        let mut spec = FaultSpec::none();
        for clause in s.split('+') {
            let mut parts = clause.split(':');
            let head = parts.next()?;
            let mut arg = || parts.next();
            match head {
                "delay" => {
                    let prob: f64 = arg()?.parse().ok()?;
                    let max_spike: u64 = arg()?.parse().ok()?;
                    if !(0.0..=1.0).contains(&prob) || max_spike == 0 {
                        return None;
                    }
                    spec.delay = Some(DelayFault { prob, max_spike });
                }
                "reorder" => {
                    let window: u64 = arg()?.parse().ok()?;
                    if window == 0 {
                        return None;
                    }
                    spec.reorder = Some(ReorderFault { window });
                }
                "dup" => {
                    let prob: f64 = arg()?.parse().ok()?;
                    if !(0.0..=1.0).contains(&prob) {
                        return None;
                    }
                    spec.duplicate = Some(DuplicateFault { prob });
                }
                "slowlinks" | "slownodes" => {
                    let fraction: f64 = arg()?.parse().ok()?;
                    let factor: u64 = arg()?.parse().ok()?;
                    if !(0.0..=1.0).contains(&fraction) || factor == 0 {
                        return None;
                    }
                    let d = DegradeFault { fraction, factor };
                    if head == "slowlinks" {
                        spec.slow_links = Some(d);
                    } else {
                        spec.slow_nodes = Some(d);
                    }
                }
                "storm" => {
                    let period: u64 = arg()?.parse().ok()?;
                    let len: u64 = arg()?.parse().ok()?;
                    let factor: u64 = arg()?.parse().ok()?;
                    if period == 0 || len == 0 || len > period || factor == 0 {
                        return None;
                    }
                    spec.storm = Some(StormFault {
                        period,
                        len,
                        factor,
                    });
                }
                _ => return None,
            }
            if parts.next().is_some() {
                return None; // trailing junk in the clause
            }
        }
        Some(spec)
    }

    /// The canonical clause-form label of this spec (`"none"` for the
    /// empty spec). Round-trips through [`FaultSpec::parse`].
    pub fn label(&self) -> String {
        if self.is_none() {
            return "none".to_string();
        }
        let mut clauses = Vec::new();
        if let Some(d) = self.delay {
            clauses.push(format!("delay:{}:{}", d.prob, d.max_spike));
        }
        if let Some(r) = self.reorder {
            clauses.push(format!("reorder:{}", r.window));
        }
        if let Some(d) = self.duplicate {
            clauses.push(format!("dup:{}", d.prob));
        }
        if let Some(d) = self.slow_links {
            clauses.push(format!("slowlinks:{}:{}", d.fraction, d.factor));
        }
        if let Some(d) = self.slow_nodes {
            clauses.push(format!("slownodes:{}:{}", d.fraction, d.factor));
        }
        if let Some(s) = self.storm {
            clauses.push(format!("storm:{}:{}:{}", s.period, s.len, s.factor));
        }
        clauses.join("+")
    }

    /// The preset names accepted by [`FaultSpec::parse`], in display
    /// order — the sweep axis used by the `faults` experiment plan.
    pub const PRESETS: [&'static str; 8] = [
        "none",
        "jitter",
        "reorder",
        "dup",
        "slowlinks",
        "slownodes",
        "storm",
        "chaos",
    ];
}

impl std::fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// What a [`FaultState`] decided about one link traversal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct TraversalFaults {
    /// Extra cycles added to the arrival time (delay spike + reorder
    /// jitter), on top of the degraded latency.
    pub extra_delay: u64,
    /// Whether this traversal is duplicated (interpretation depends on
    /// the packet's `dup_safe` flag).
    pub duplicate: bool,
}

/// Per-run fault machinery: the dedicated RNG stream plus the static
/// degraded-link table and storm phase drawn at construction.
///
/// Only constructed when the spec is non-empty, so fault-free runs pay
/// nothing — no state, no draws, no timing change.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    spec: FaultSpec,
    rng: SimRng,
    /// Static per-link slowdown factor (≥ 1) from `slowlinks`/`slownodes`.
    link_factor: Vec<u64>,
    /// Offset of the first storm within the period.
    storm_phase: u64,
}

impl FaultState {
    /// Draws the run-static fault state (degraded links, storm phase)
    /// for a fabric with `num_links` links whose link `i` is sourced by
    /// node `link_src(i)`.
    ///
    /// Draw order is fixed — nodes in id order, links in id order, then
    /// the storm phase — so the schedule is a pure function of
    /// `(spec, seed)` regardless of topology internals.
    pub fn new(
        spec: FaultSpec,
        seed: u64,
        num_nodes: usize,
        num_links: usize,
        link_src: impl Fn(usize) -> usize,
    ) -> FaultState {
        let mut rng = SimRng::from_seed(seed);
        let mut node_slow = vec![1u64; num_nodes];
        if let Some(d) = spec.slow_nodes {
            for f in node_slow.iter_mut() {
                if rng.chance(d.fraction) {
                    *f = d.factor;
                }
            }
        }
        let mut link_factor = vec![1u64; num_links];
        if let Some(d) = spec.slow_links {
            for f in link_factor.iter_mut() {
                if rng.chance(d.fraction) {
                    *f = d.factor;
                }
            }
        }
        for (i, f) in link_factor.iter_mut().enumerate() {
            *f = (*f).max(node_slow[link_src(i)]);
        }
        let storm_phase = match spec.storm {
            Some(s) => rng.below(s.period),
            None => 0,
        };
        FaultState {
            spec,
            rng,
            link_factor,
            storm_phase,
        }
    }

    /// The static slowdown factor of `link` (1 when healthy).
    pub fn link_factor(&self, link: usize) -> u64 {
        self.link_factor[link]
    }

    /// The serialization multiplier in effect at `now` (storm clause).
    pub fn storm_factor(&self, now: u64) -> u64 {
        match self.spec.storm {
            Some(s) if (now.wrapping_sub(self.storm_phase)) % s.period < s.len => s.factor,
            _ => 1,
        }
    }

    /// Draws the dynamic faults for one traversal. The draw order per
    /// transmission is fixed (spike, reorder, duplicate), and each
    /// clause draws only when enabled — determinism is a property of
    /// the whole `(spec, seed)` pair.
    pub fn draw(&mut self) -> TraversalFaults {
        let mut t = TraversalFaults::default();
        if let Some(d) = self.spec.delay {
            if self.rng.chance(d.prob) {
                t.extra_delay += 1 + self.rng.below(d.max_spike);
            }
        }
        if let Some(r) = self.spec.reorder {
            t.extra_delay += self.rng.below(r.window);
        }
        if let Some(d) = self.spec.duplicate {
            t.duplicate = self.rng.chance(d.prob);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_none_and_empty_spec() {
        let s = FaultSpec::parse("none").unwrap();
        assert!(s.is_none());
        assert_eq!(s, FaultSpec::none());
        assert_eq!(s.label(), "none");
    }

    #[test]
    fn parse_clauses() {
        let s = FaultSpec::parse("delay:0.5:100+reorder:32+dup:0.25").unwrap();
        assert_eq!(
            s.delay,
            Some(DelayFault {
                prob: 0.5,
                max_spike: 100
            })
        );
        assert_eq!(s.reorder, Some(ReorderFault { window: 32 }));
        assert_eq!(s.duplicate, Some(DuplicateFault { prob: 0.25 }));
        assert!(s.slow_links.is_none() && s.storm.is_none());
    }

    #[test]
    fn parse_degrade_and_storm() {
        let s = FaultSpec::parse("slowlinks:0.25:4+slownodes:0.1:2+storm:1000:100:8").unwrap();
        assert_eq!(
            s.slow_links,
            Some(DegradeFault {
                fraction: 0.25,
                factor: 4
            })
        );
        assert_eq!(
            s.slow_nodes,
            Some(DegradeFault {
                fraction: 0.1,
                factor: 2
            })
        );
        assert_eq!(
            s.storm,
            Some(StormFault {
                period: 1000,
                len: 100,
                factor: 8
            })
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "delay",
            "delay:0.5",
            "delay:2.0:100",
            "delay:0.5:0",
            "reorder:0",
            "dup:-0.1",
            "slowlinks:0.5:0",
            "storm:0:0:1",
            "storm:100:200:2", // len > period
            "delay:0.5:100:9", // trailing junk
            "frobnicate:1",
            "delay:0.5:100+bogus",
        ] {
            assert!(FaultSpec::parse(bad).is_none(), "accepted {bad:?}");
        }
    }

    #[test]
    fn labels_round_trip() {
        for spec in [
            "none",
            "delay:0.02:200",
            "reorder:64",
            "dup:0.01",
            "slowlinks:0.125:4",
            "slownodes:0.125:4",
            "storm:20000:2000:8",
            "delay:0.02:200+reorder:64+dup:0.01+storm:20000:2000:8",
        ] {
            let s = FaultSpec::parse(spec).unwrap();
            assert_eq!(FaultSpec::parse(&s.label()), Some(s), "for {spec:?}");
        }
    }

    #[test]
    fn presets_all_parse() {
        for preset in FaultSpec::PRESETS {
            let s = FaultSpec::parse(preset).unwrap_or_else(|| panic!("preset {preset} invalid"));
            assert_eq!(s.is_none(), preset == "none");
        }
    }

    #[test]
    fn fault_state_is_replayable() {
        let spec = FaultSpec::parse("chaos").unwrap();
        let mut a = FaultState::new(spec, 42, 16, 64, |i| i % 16);
        let mut b = FaultState::new(spec, 42, 16, 64, |i| i % 16);
        assert_eq!(a.link_factor, b.link_factor);
        assert_eq!(a.storm_phase, b.storm_phase);
        for _ in 0..1000 {
            assert_eq!(a.draw(), b.draw());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let spec = FaultSpec::parse("delay:0.5:1000").unwrap();
        let mut a = FaultState::new(spec, 1, 4, 8, |_| 0);
        let mut b = FaultState::new(spec, 2, 4, 8, |_| 0);
        let same = (0..256).filter(|_| a.draw() == b.draw()).count();
        assert!(same < 200, "schedules from different seeds should differ");
    }

    #[test]
    fn degraded_links_respect_node_and_link_clauses() {
        let spec = FaultSpec::parse("slownodes:1.0:4").unwrap();
        let state = FaultState::new(spec, 7, 4, 8, |i| i % 4);
        // Every node degraded => every link degraded by the node factor.
        assert!((0..8).all(|i| state.link_factor(i) == 4));

        let spec = FaultSpec::parse("slowlinks:1.0:3").unwrap();
        let state = FaultState::new(spec, 7, 4, 8, |i| i % 4);
        assert!((0..8).all(|i| state.link_factor(i) == 3));
    }

    #[test]
    fn storm_window_is_periodic() {
        let spec = FaultSpec::parse("storm:100:10:8").unwrap();
        let state = FaultState::new(spec, 3, 1, 1, |_| 0);
        let phase = state.storm_phase;
        assert!(phase < 100);
        assert_eq!(state.storm_factor(phase), 8);
        assert_eq!(state.storm_factor(phase + 9), 8);
        assert_eq!(state.storm_factor(phase + 10), 1);
        assert_eq!(state.storm_factor(phase + 100), 8, "recurs every period");
    }

    #[test]
    fn no_storm_means_factor_one() {
        let spec = FaultSpec::parse("dup:0.5").unwrap();
        let state = FaultState::new(spec, 3, 1, 1, |_| 0);
        for now in 0..100 {
            assert_eq!(state.storm_factor(now), 1);
        }
    }
}
