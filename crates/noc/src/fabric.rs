//! Pluggable interconnect fabrics behind a generic routing/multicast layer.
//!
//! The paper evaluates PATCH on a single fixed interconnect (a 2D torus
//! with dimension-order routing). This module generalizes that choice: a
//! fabric is *described* by its adjacency (an ordered out-link list per
//! node, each link tagged with a [`LinkClass`]), and a generic
//! deterministic routing-table builder derives everything the simulator
//! needs — BFS shortest-path next-hop tables with a fixed tie-break
//! (first out-link in per-node declaration order whose far end is
//! strictly closer to the destination), hop-distance matrices, and
//! fan-out multicast trees. New topologies only describe adjacency; they
//! inherit routing, multicast, per-link serialization, priority
//! queueing, and traffic accounting.
//!
//! Five fabrics ship ([`FabricKind`]): the paper's **torus** (the BFS
//! tie-break provably reproduces the legacy dimension-order table entry
//! for entry), **mesh** (torus without wraparound — asymmetric hop counts
//! stress inexact multicast), **ring**, **xbar** (fully connected — one
//! hop between any pair, isolating protocol cost from network cost), and
//! **hier** (clusters of crossbars joined by a global ring, with distinct
//! intra- vs. inter-cluster [`LinkParams`]).
//!
//! The hot path stays exactly as monomorphic as the old torus-only
//! engine: one generic [`Fabric`] engine drives every topology through
//! precomputed tables — a next-hop lookup is a single `u16` load
//! regardless of topology, so there is no per-event dispatch on the
//! fabric kind at all.
//!
//! # Determinism contract
//!
//! Fabric construction and routing are pure functions of
//! ([`FabricKind`], node count, link parameters). BFS visits nodes in
//! ascending id order from each destination, and ties between equal-cost
//! out-links break toward the lowest per-node link slot, so the same
//! configuration always yields bit-identical routing tables — and
//! therefore bit-identical simulations — on every platform and thread
//! count.

use std::collections::VecDeque;
use std::fmt;

use patchsim_kernel::Cycle;

use crate::faults::{FaultSpec, FaultState};
use crate::link::PriorityQueue;
use crate::topology::Topology;
use crate::{DestSet, LinkBandwidth, NocPayload, NodeId, Priority, TrafficClass, TrafficStats};

/// Which interconnect topology to build.
///
/// Parse labels (accepted by `--fabric` and [`FabricKind::parse`]):
/// `torus`, `mesh`, `ring`, `xbar`, `hier` (auto cluster size) or
/// `hier:C` (clusters of `C` nodes).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FabricKind {
    /// The paper's 2D torus with wraparound links and dimension-order
    /// routing (X then Y, shortest way, ties toward the positive
    /// direction).
    Torus,
    /// The same most-nearly-square grid without wraparound. Edge and
    /// corner nodes have degree 2–3, so hop counts are asymmetric.
    Mesh2D,
    /// A bidirectional ring; diameter `n/2`.
    Ring,
    /// A full crossbar: every pair of nodes shares a dedicated link, so
    /// every remote message takes exactly one hop.
    FullyConnected,
    /// A two-level hierarchy: crossbar clusters joined by a global ring
    /// of gateway nodes, with distinct intra- vs. inter-cluster link
    /// latency and bandwidth.
    Hierarchical {
        /// Nodes per cluster. `None` picks the most nearly square
        /// factorization (the larger factor); an explicit size applies
        /// wherever it divides the node count and falls back to the
        /// automatic factorization on systems it does not (so one
        /// `hier:C` choice stays valid across a core-count sweep).
        cluster: Option<u16>,
    },
}

impl FabricKind {
    /// The five shipped fabrics, in display order, with hierarchical
    /// cluster sizing left automatic.
    pub const ALL: [FabricKind; 5] = [
        FabricKind::Torus,
        FabricKind::Mesh2D,
        FabricKind::Ring,
        FabricKind::FullyConnected,
        FabricKind::Hierarchical { cluster: None },
    ];

    /// The short label used by `--fabric`, plan axes, and JSON output.
    pub fn label(self) -> String {
        match self {
            FabricKind::Torus => "torus".into(),
            FabricKind::Mesh2D => "mesh".into(),
            FabricKind::Ring => "ring".into(),
            FabricKind::FullyConnected => "xbar".into(),
            FabricKind::Hierarchical { cluster: None } => "hier".into(),
            FabricKind::Hierarchical { cluster: Some(c) } => format!("hier:{c}"),
        }
    }

    /// Parses a `--fabric` value (a zero cluster size is rejected).
    /// Inverse of [`FabricKind::label`].
    pub fn parse(s: &str) -> Option<FabricKind> {
        match s {
            "torus" => Some(FabricKind::Torus),
            "mesh" => Some(FabricKind::Mesh2D),
            "ring" => Some(FabricKind::Ring),
            "xbar" | "crossbar" => Some(FabricKind::FullyConnected),
            "hier" => Some(FabricKind::Hierarchical { cluster: None }),
            _ => {
                let c: u16 = s.strip_prefix("hier:")?.parse().ok()?;
                (c > 0).then_some(FabricKind::Hierarchical { cluster: Some(c) })
            }
        }
    }

    /// The cluster size this kind uses on an `num_nodes`-node system:
    /// an explicit `Hierarchical` size wherever it divides the node
    /// count (falling back to the automatic factorization where it does
    /// not, so one explicit choice stays valid across a core-count
    /// sweep), the larger factor of the most nearly square
    /// factorization when automatic, and `num_nodes` (one flat cluster)
    /// for every non-hierarchical kind.
    pub fn cluster_size(self, num_nodes: u16) -> u16 {
        match self {
            FabricKind::Hierarchical { cluster: Some(c) }
                if c > 0 && num_nodes.is_multiple_of(c) =>
            {
                c
            }
            FabricKind::Hierarchical { .. } => Topology::new(num_nodes).width(),
            _ => num_nodes,
        }
    }
}

impl fmt::Display for FabricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// The two per-link parameter classes of a fabric.
///
/// Flat fabrics use only `Local`; the hierarchical fabric tags its
/// inter-cluster ring links `Global` so they can carry distinct
/// [`LinkParams`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum LinkClass {
    /// Intra-cluster / default links.
    Local,
    /// Inter-cluster links (hierarchical fabrics only).
    Global,
}

impl LinkClass {
    #[inline]
    fn index(self) -> usize {
        match self {
            LinkClass::Local => 0,
            LinkClass::Global => 1,
        }
    }
}

/// Timing and capacity of one link class: propagation latency plus
/// serialization bandwidth. Replaces the old torus-wide uniform
/// constants.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkParams {
    /// Propagation latency in cycles, charged once per traversal.
    pub latency: u64,
    /// Serialization bandwidth; contending packets queue.
    pub bandwidth: LinkBandwidth,
}

/// Configuration of an interconnect fabric: topology, link parameters,
/// and the best-effort staleness bound.
///
/// # Examples
///
/// ```
/// use patchsim_noc::{FabricConfig, FabricKind, LinkBandwidth};
///
/// let cfg = FabricConfig::new(FabricKind::Ring, 16)
///     .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
///     .with_stale_drop_cycles(100);
/// assert_eq!(cfg.num_nodes(), 16);
/// assert_eq!(cfg.kind(), FabricKind::Ring);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct FabricConfig {
    kind: FabricKind,
    num_nodes: u16,
    /// Per-hop latency of `Local` links; `None` calibrates at build time
    /// so the fabric-wide average traversal costs about 15 cycles of
    /// link latency, matching the paper's torus.
    hop_latency: Option<u64>,
    bandwidth: LinkBandwidth,
    /// Inter-cluster link override (hierarchical only). `None` derives
    /// `4×` the local latency at half the local bandwidth.
    global_link: Option<LinkParams>,
    local_latency: u64,
    stale_drop_cycles: u64,
    faults: FaultSpec,
    fault_seed: u64,
}

impl FabricConfig {
    /// Default link bandwidth: the paper's bandwidth-rich 16 bytes/cycle.
    pub const DEFAULT_BANDWIDTH: LinkBandwidth = LinkBandwidth::BytesPerCycle(16.0);
    /// Default best-effort staleness bound (paper: 100 cycles).
    pub const DEFAULT_STALE_DROP: u64 = 100;

    /// Creates a configuration for `kind` on `num_nodes` nodes with
    /// paper-default timing (hop latency auto-calibrated to a ~15-cycle
    /// average traversal).
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero, or if an explicit hierarchical
    /// cluster size is zero or does not divide `num_nodes`.
    pub fn new(kind: FabricKind, num_nodes: u16) -> Self {
        assert!(num_nodes > 0, "a fabric needs at least one node");
        let cluster = kind.cluster_size(num_nodes);
        assert!(
            cluster > 0 && num_nodes.is_multiple_of(cluster),
            "cluster size {cluster} must divide the node count {num_nodes}"
        );
        FabricConfig {
            kind,
            num_nodes,
            hop_latency: None,
            bandwidth: Self::DEFAULT_BANDWIDTH,
            global_link: None,
            local_latency: 1,
            stale_drop_cycles: Self::DEFAULT_STALE_DROP,
            faults: FaultSpec::none(),
            fault_seed: 0,
        }
    }

    /// Sets the link bandwidth (of `Local` links; a derived `Global`
    /// class scales from it).
    pub fn with_bandwidth(mut self, bandwidth: LinkBandwidth) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Pins the per-hop propagation latency instead of auto-calibrating.
    pub fn with_hop_latency(mut self, cycles: u64) -> Self {
        self.hop_latency = Some(cycles);
        self
    }

    /// Overrides the inter-cluster link parameters (hierarchical only).
    pub fn with_global_link(mut self, params: LinkParams) -> Self {
        self.global_link = Some(params);
        self
    }

    /// Sets the latency of a node sending a message to itself (e.g. to
    /// its own home-directory slice).
    pub fn with_local_latency(mut self, cycles: u64) -> Self {
        self.local_latency = cycles;
        self
    }

    /// Sets how long a best-effort message may wait at one link before
    /// being dropped.
    pub fn with_stale_drop_cycles(mut self, cycles: u64) -> Self {
        self.stale_drop_cycles = cycles;
        self
    }

    /// Sets the fault mix injected while transmitting (see
    /// [`crate::faults`]). The default, [`FaultSpec::none`], installs no
    /// fault machinery at all.
    pub fn with_faults(mut self, faults: FaultSpec) -> Self {
        self.faults = faults;
        self
    }

    /// Seeds the fault schedule. Derive this from the run seed (e.g. via
    /// [`patchsim_kernel::stream_seed`]) so every fault schedule is
    /// replayable from `(spec, seed)`. Ignored when no faults are
    /// configured.
    pub fn with_fault_seed(mut self, seed: u64) -> Self {
        self.fault_seed = seed;
        self
    }

    /// The topology this configuration builds.
    pub fn kind(&self) -> FabricKind {
        self.kind
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// Link bandwidth of `Local` links.
    pub fn bandwidth(&self) -> LinkBandwidth {
        self.bandwidth
    }

    /// Explicit per-hop latency, or `None` when auto-calibrated.
    pub fn hop_latency(&self) -> Option<u64> {
        self.hop_latency
    }

    /// Self-send latency in cycles.
    pub fn local_latency(&self) -> u64 {
        self.local_latency
    }

    /// Best-effort staleness bound in cycles.
    pub fn stale_drop_cycles(&self) -> u64 {
        self.stale_drop_cycles
    }

    /// The configured fault mix.
    pub fn faults(&self) -> FaultSpec {
        self.faults
    }

    /// The fault-schedule seed.
    pub fn fault_seed(&self) -> u64 {
        self.fault_seed
    }
}

// ---------------------------------------------------------------------------
// Adjacency descriptions.
// ---------------------------------------------------------------------------

/// A fabric's raw shape: an *ordered* out-link list per node, each link
/// tagged with its [`LinkClass`].
///
/// This is all a new topology has to provide — [`FabricSpec::from_adjacency`]
/// derives routing tables, hop distances, and multicast trees from it.
/// The link order per node is significant: it is the routing tie-break
/// (lowest slot wins among equal-cost shortest-path links) and the
/// global link numbering (`node`'s slot `s` is link `base(node) + s`).
///
/// Adjacency must be symmetric as a multiset — every `a → b` link is
/// paired with a `b → a` link — and connected.
#[derive(Clone, Debug)]
pub struct Adjacency {
    num_nodes: u16,
    out: Vec<Vec<(NodeId, LinkClass)>>,
}

impl Adjacency {
    /// Creates an adjacency with `num_nodes` nodes and no links.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: u16) -> Self {
        assert!(num_nodes > 0, "a fabric needs at least one node");
        Adjacency {
            num_nodes,
            out: vec![Vec::new(); num_nodes as usize],
        }
    }

    /// Appends a directed link from `from` to `to` (the next slot of
    /// `from`). Call symmetrically, or use [`Adjacency::add_duplex`].
    ///
    /// # Panics
    ///
    /// Panics if either node is out of range.
    pub fn add_link(&mut self, from: NodeId, to: NodeId, class: LinkClass) {
        assert!(from.raw() < self.num_nodes, "{from} out of range");
        assert!(to.raw() < self.num_nodes, "{to} out of range");
        self.out[from.index()].push((to, class));
    }

    /// Appends the link pair `a → b` and `b → a`.
    pub fn add_duplex(&mut self, a: NodeId, b: NodeId, class: LinkClass) {
        self.add_link(a, b, class);
        self.add_link(b, a, class);
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// Total directed links.
    pub fn num_links(&self) -> usize {
        self.out.iter().map(Vec::len).sum()
    }

    /// The adjacency of `kind` on `num_nodes` nodes — the shapes behind
    /// [`FabricSpec::build`], exposed for tests and analysis.
    pub fn of_kind(kind: FabricKind, num_nodes: u16) -> Adjacency {
        match kind {
            FabricKind::Torus => Self::torus(num_nodes),
            FabricKind::Mesh2D => Self::mesh(num_nodes),
            FabricKind::Ring => Self::ring(num_nodes),
            FabricKind::FullyConnected => Self::fully_connected(num_nodes),
            FabricKind::Hierarchical { .. } => {
                Self::hierarchical(num_nodes, kind.cluster_size(num_nodes))
            }
        }
    }

    /// The paper's torus: per node, links in [`crate::topology::Direction::ALL`]
    /// order (XPlus, XMinus, YPlus, YMinus), so the BFS tie-break
    /// reproduces dimension-order routing exactly.
    fn torus(num_nodes: u16) -> Adjacency {
        use crate::topology::Direction;
        let topo = Topology::new(num_nodes);
        let mut adj = Adjacency::new(num_nodes);
        for n in 0..num_nodes {
            let node = NodeId::new(n);
            for dir in Direction::ALL {
                adj.add_link(node, topo.neighbor(node, dir), LinkClass::Local);
            }
        }
        adj
    }

    /// The torus grid without wraparound; boundary nodes simply omit the
    /// missing direction from their slot order.
    fn mesh(num_nodes: u16) -> Adjacency {
        let topo = Topology::new(num_nodes);
        let (w, h) = (topo.width(), topo.height());
        let mut adj = Adjacency::new(num_nodes);
        for n in 0..num_nodes {
            let node = NodeId::new(n);
            let (x, y) = topo.coords(node);
            // Same direction order as the torus (XPlus, XMinus, YPlus,
            // YMinus), minus the links that would wrap.
            if x + 1 < w {
                adj.add_link(node, topo.node_at(x + 1, y), LinkClass::Local);
            }
            if x > 0 {
                adj.add_link(node, topo.node_at(x - 1, y), LinkClass::Local);
            }
            if y + 1 < h {
                adj.add_link(node, topo.node_at(x, y + 1), LinkClass::Local);
            }
            if y > 0 {
                adj.add_link(node, topo.node_at(x, y - 1), LinkClass::Local);
            }
        }
        adj
    }

    /// A bidirectional ring: each node links forward then backward.
    fn ring(num_nodes: u16) -> Adjacency {
        let mut adj = Adjacency::new(num_nodes);
        if num_nodes < 2 {
            return adj;
        }
        for n in 0..num_nodes {
            let node = NodeId::new(n);
            adj.add_link(node, NodeId::new((n + 1) % num_nodes), LinkClass::Local);
            adj.add_link(
                node,
                NodeId::new((n + num_nodes - 1) % num_nodes),
                LinkClass::Local,
            );
        }
        adj
    }

    /// A full crossbar: each node links to every other in ascending id
    /// order.
    fn fully_connected(num_nodes: u16) -> Adjacency {
        let mut adj = Adjacency::new(num_nodes);
        for a in 0..num_nodes {
            for b in 0..num_nodes {
                if a != b {
                    adj.add_link(NodeId::new(a), NodeId::new(b), LinkClass::Local);
                }
            }
        }
        adj
    }

    /// Crossbar clusters of `cluster` nodes (node `i` belongs to cluster
    /// `i / cluster`), joined by a global ring over each cluster's
    /// gateway (its lowest-id node). Intra-cluster links come first in
    /// each node's slot order, tagged `Local`; the gateway's ring links
    /// follow, tagged `Global`.
    fn hierarchical(num_nodes: u16, cluster: u16) -> Adjacency {
        assert!(
            cluster > 0 && num_nodes.is_multiple_of(cluster),
            "cluster size {cluster} must divide the node count {num_nodes}"
        );
        let clusters = num_nodes / cluster;
        let mut adj = Adjacency::new(num_nodes);
        for n in 0..num_nodes {
            let node = NodeId::new(n);
            let base = n - n % cluster;
            for peer in base..base + cluster {
                if peer != n {
                    adj.add_link(node, NodeId::new(peer), LinkClass::Local);
                }
            }
            if clusters > 1 && n == base {
                let cl = n / cluster;
                let fwd = (cl + 1) % clusters;
                let back = (cl + clusters - 1) % clusters;
                adj.add_link(node, NodeId::new(fwd * cluster), LinkClass::Global);
                adj.add_link(node, NodeId::new(back * cluster), LinkClass::Global);
            }
        }
        adj
    }
}

// ---------------------------------------------------------------------------
// The built fabric: routing tables, link tables, multicast trees.
// ---------------------------------------------------------------------------

/// Table marker for `from == to` (no hop to take).
const SELF_SLOT: u16 = u16::MAX;

/// A fully built fabric: BFS shortest-path next-hop tables, hop
/// distances, and flattened per-link parameter tables, derived from an
/// [`Adjacency`] by the generic deterministic routing builder.
///
/// # Examples
///
/// ```
/// use patchsim_noc::{FabricConfig, FabricKind, FabricSpec, NodeId};
///
/// let spec = FabricSpec::build(&FabricConfig::new(FabricKind::Ring, 8));
/// assert_eq!(spec.hop_distance(NodeId::new(0), NodeId::new(3)), 3);
/// // The shortest way from 0 to 6 goes backward around the ring.
/// assert_eq!(spec.next_hop(NodeId::new(0), NodeId::new(6)), Some(NodeId::new(7)));
/// ```
#[derive(Clone, Debug)]
pub struct FabricSpec {
    num_nodes: u16,
    max_degree: u16,
    /// Entry `from * n + to`: the out-link slot of `from` toward `to`,
    /// or [`SELF_SLOT`] when `from == to`.
    next: Vec<u16>,
    /// Entry `dst * n + v`: hop distance from `v` to `dst`.
    dist: Vec<u16>,
    /// `link_base[node] .. link_base[node + 1]` are `node`'s out-links.
    link_base: Vec<u32>,
    /// The router at the far end of each link.
    link_dest: Vec<NodeId>,
    /// Per-link propagation latency in cycles.
    link_latency: Vec<u64>,
    /// Per-link parameter-class index into `class_params`.
    link_class: Vec<u8>,
    /// Resolved parameters per [`LinkClass`].
    class_params: [LinkParams; 2],
}

impl FabricSpec {
    /// Builds the spec for `config`: topology adjacency, auto-calibrated
    /// hop latency (unless pinned), and derived global-link parameters.
    ///
    /// # Panics
    ///
    /// Panics if the configured topology is disconnected.
    pub fn build(config: &FabricConfig) -> FabricSpec {
        let adj = Adjacency::of_kind(config.kind, config.num_nodes);
        // Calibrate the per-hop latency so the average traversal costs
        // about 15 cycles of link latency, exactly as the torus always
        // did — the generic average over all ordered pairs equals the
        // torus's from-node-0 average by vertex transitivity.
        let provisional = LinkParams {
            latency: 1,
            bandwidth: config.bandwidth,
        };
        let mut spec = Self::from_adjacency(&adj, [provisional; 2]);
        let hop_latency = config.hop_latency.unwrap_or_else(|| {
            let avg = spec.average_hop_distance().max(1.0);
            ((15.0 / avg).round() as u64).max(1)
        });
        let local = LinkParams {
            latency: hop_latency,
            bandwidth: config.bandwidth,
        };
        let global = config.global_link.unwrap_or(LinkParams {
            latency: hop_latency * 4,
            bandwidth: match config.bandwidth {
                LinkBandwidth::BytesPerCycle(b) => LinkBandwidth::BytesPerCycle(b / 2.0),
                LinkBandwidth::Unbounded => LinkBandwidth::Unbounded,
            },
        });
        spec.set_class_params([local, global]);
        spec
    }

    /// The generic deterministic routing-table builder: derives next-hop
    /// and distance tables for any symmetric connected adjacency.
    ///
    /// For every destination a BFS (visiting nodes in ascending-id
    /// order) computes hop distances; the next hop from `from` toward
    /// `to` is then `from`'s first out-link slot whose far end is
    /// strictly closer to `to`. The tie-break is total and deterministic,
    /// and on the torus adjacency it reproduces dimension-order routing
    /// exactly (X before Y, wrap ties toward the positive direction).
    ///
    /// # Panics
    ///
    /// Panics if the adjacency is disconnected.
    pub fn from_adjacency(adj: &Adjacency, class_params: [LinkParams; 2]) -> FabricSpec {
        let n = adj.num_nodes as usize;
        #[cfg(debug_assertions)]
        for (v, out) in adj.out.iter().enumerate() {
            for &(u, _) in out {
                let fwd = out.iter().filter(|&&(t, _)| t == u).count();
                let back = adj.out[u.index()]
                    .iter()
                    .filter(|&&(t, _)| t.index() == v)
                    .count();
                debug_assert_eq!(fwd, back, "asymmetric adjacency between P{v} and {u}");
            }
        }

        let mut dist = vec![u16::MAX; n * n];
        let mut frontier = VecDeque::new();
        for dst in 0..n {
            let row = &mut dist[dst * n..(dst + 1) * n];
            row[dst] = 0;
            frontier.push_back(dst);
            while let Some(v) = frontier.pop_front() {
                let dv = row[v];
                for &(nbr, _) in &adj.out[v] {
                    if row[nbr.index()] == u16::MAX {
                        row[nbr.index()] = dv + 1;
                        frontier.push_back(nbr.index());
                    }
                }
            }
            assert!(
                row.iter().all(|&d| d != u16::MAX),
                "fabric is disconnected: some node cannot reach P{dst}"
            );
        }

        let mut next = vec![SELF_SLOT; n * n];
        for from in 0..n {
            for to in 0..n {
                if from == to {
                    continue;
                }
                let d = dist[to * n + from];
                let slot = adj.out[from]
                    .iter()
                    .position(|&(nbr, _)| dist[to * n + nbr.index()] + 1 == d)
                    .expect("a shortest path starts with some out-link");
                next[from * n + to] = slot as u16;
            }
        }

        let mut link_base = Vec::with_capacity(n + 1);
        let mut link_dest = Vec::with_capacity(adj.num_links());
        let mut link_class = Vec::with_capacity(adj.num_links());
        for out in &adj.out {
            link_base.push(link_dest.len() as u32);
            for &(nbr, class) in out {
                link_dest.push(nbr);
                link_class.push(class.index() as u8);
            }
        }
        link_base.push(link_dest.len() as u32);

        let mut spec = FabricSpec {
            num_nodes: adj.num_nodes,
            max_degree: adj.out.iter().map(Vec::len).max().unwrap_or(0) as u16,
            next,
            dist,
            link_base,
            link_dest,
            link_latency: Vec::new(),
            link_class,
            class_params,
        };
        spec.set_class_params(class_params);
        spec
    }

    /// (Re)applies per-class link parameters, refreshing the flattened
    /// per-link latency table.
    fn set_class_params(&mut self, class_params: [LinkParams; 2]) {
        self.class_params = class_params;
        self.link_latency = self
            .link_class
            .iter()
            .map(|&c| class_params[c as usize].latency)
            .collect();
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// Total directed links.
    pub fn num_links(&self) -> usize {
        self.link_dest.len()
    }

    /// The largest per-node out-degree.
    pub fn max_degree(&self) -> usize {
        self.max_degree as usize
    }

    /// Out-degree of `node`.
    pub fn degree(&self, node: NodeId) -> usize {
        (self.link_base[node.index() + 1] - self.link_base[node.index()]) as usize
    }

    /// The resolved parameters of each [`LinkClass`]
    /// (`[Local, Global]`).
    pub fn class_params(&self) -> [LinkParams; 2] {
        self.class_params
    }

    /// The global link id of `node`'s out-link slot `slot`.
    #[inline]
    pub fn link_id(&self, node: NodeId, slot: usize) -> usize {
        self.link_base[node.index()] as usize + slot
    }

    /// The router at the far end of `link`.
    #[inline]
    pub fn link_dest(&self, link: usize) -> NodeId {
        self.link_dest[link]
    }

    /// Propagation latency of `link` in cycles.
    #[inline]
    pub fn link_latency(&self, link: usize) -> u64 {
        self.link_latency[link]
    }

    /// Parameter-class index of `link` (into [`FabricSpec::class_params`]).
    #[inline]
    pub fn link_class(&self, link: usize) -> usize {
        self.link_class[link] as usize
    }

    /// The out-link slot a packet at `from` takes toward `to`, or `None`
    /// if `from == to`. One `u16` load — this is the routing hot path.
    #[inline]
    pub fn next_slot(&self, from: NodeId, to: NodeId) -> Option<usize> {
        let s = self.next[from.index() * self.num_nodes as usize + to.index()];
        (s != SELF_SLOT).then_some(s as usize)
    }

    /// The neighbor a packet at `from` is forwarded to toward `to`, or
    /// `None` if `from == to`.
    pub fn next_hop(&self, from: NodeId, to: NodeId) -> Option<NodeId> {
        self.next_slot(from, to)
            .map(|slot| self.link_dest[self.link_id(from, slot)])
    }

    /// `node`'s neighbors, in out-link slot order (duplicates preserved
    /// for parallel links).
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let base = self.link_base[node.index()] as usize;
        self.link_dest[base..base + self.degree(node)]
            .iter()
            .copied()
    }

    /// Whether the fabric has a direct `a → b` link.
    pub fn is_link(&self, a: NodeId, b: NodeId) -> bool {
        self.neighbors(a).any(|n| n == b)
    }

    /// Minimal hop count from `a` to `b`.
    pub fn hop_distance(&self, a: NodeId, b: NodeId) -> u32 {
        self.dist[b.index() * self.num_nodes as usize + a.index()] as u32
    }

    /// Average hop distance over all ordered pairs of distinct nodes;
    /// the calibration input for the ~15-cycle average traversal.
    pub fn average_hop_distance(&self) -> f64 {
        let n = self.num_nodes as u64;
        if n < 2 {
            return 0.0;
        }
        let total: u64 = self.dist.iter().map(|&d| d as u64).sum();
        total as f64 / (n * (n - 1)) as f64
    }

    /// Expands the fan-out multicast tree a message from `src` to
    /// `dests` traverses: exactly the link-level branching the
    /// [`Fabric`] engine performs, without timing.
    ///
    /// Returns the tree's edges (in deterministic expansion order) and
    /// the delivery set. Every edge is a real fabric link; every
    /// destination appears in `deliveries` exactly once.
    ///
    /// # Panics
    ///
    /// Panics if `dests` was sized for a different system.
    pub fn multicast_tree(&self, src: NodeId, dests: &DestSet) -> MulticastTree {
        assert_eq!(
            dests.num_nodes(),
            self.num_nodes,
            "destination set sized for a different system"
        );
        let mut tree = MulticastTree {
            edges: Vec::new(),
            deliveries: Vec::new(),
        };
        let mut work: VecDeque<(NodeId, DestSet)> = VecDeque::new();
        work.push_back((src, dests.clone()));
        while let Some((node, mut set)) = work.pop_front() {
            if set.remove(node) {
                tree.deliveries.push(node);
            }
            if set.is_empty() {
                continue;
            }
            let mut groups: Vec<Option<DestSet>> = vec![None; self.degree(node)];
            for dest in set.iter() {
                let slot = self
                    .next_slot(node, dest)
                    .expect("dest equal to current node was already removed");
                groups[slot]
                    .get_or_insert_with(|| DestSet::empty(self.num_nodes))
                    .insert(dest);
            }
            for (slot, group) in groups.into_iter().enumerate() {
                let Some(group) = group else { continue };
                let nbr = self.link_dest[self.link_id(node, slot)];
                tree.edges.push((node, nbr));
                work.push_back((nbr, group));
            }
        }
        tree
    }
}

/// The result of [`FabricSpec::multicast_tree`]: the links a fan-out
/// multicast occupies and the nodes it delivers to.
#[derive(Clone, Debug)]
pub struct MulticastTree {
    /// `(from, to)` per traversed link, in expansion order.
    pub edges: Vec<(NodeId, NodeId)>,
    /// Nodes the message is delivered at, in expansion order. Equals the
    /// destination set, each node exactly once.
    pub deliveries: Vec<NodeId>,
}

// ---------------------------------------------------------------------------
// The event-driven fabric engine.
// ---------------------------------------------------------------------------

/// A packet in flight: the payload plus routing and accounting state.
#[derive(Debug)]
struct Packet<M> {
    msg: M,
    dests: DestSet,
    priority: Priority,
    size: u64,
    class: TrafficClass,
    /// Cached `NocPayload::dup_safe` of the message: whether the fault
    /// layer may genuinely deliver this packet twice.
    dup_safe: bool,
}

impl<M: Clone> Packet<M> {
    /// Splits off a copy of this packet covering `dests`.
    fn branch(&self, dests: DestSet) -> Packet<M> {
        Packet {
            msg: self.msg.clone(),
            dests,
            priority: self.priority,
            size: self.size,
            class: self.class,
            dup_safe: self.dup_safe,
        }
    }
}

/// An internal interconnect event. Opaque to callers: obtain them from the
/// scheduling callback of [`Fabric::send`] / [`Fabric::handle`] and feed
/// them back to [`Fabric::handle`] at their scheduled time.
#[derive(Debug)]
pub struct NocEvent<M>(Event<M>);

#[derive(Debug)]
enum Event<M> {
    /// A packet arrives at `node`'s router (possibly its final stop).
    ///
    /// Boxed so a `NocEvent` is pointer-sized: events sit in the kernel
    /// queue's wheel buckets, and moving ~16 bytes per push/pop instead
    /// of a 100+-byte packet keeps the hot loop in cache. The boxes come
    /// from (and return to) the fabric's packet pool, so steady-state
    /// operation performs no allocation.
    Arrive {
        node: NodeId,
        packet: Box<Packet<M>>,
    },
    /// A link finished serializing its current packet.
    LinkFree { link: usize },
}

#[derive(Debug)]
struct LinkState<M> {
    busy: bool,
    queue: PriorityQueue<Box<Packet<M>>>,
    busy_cycles: u64,
}

/// Upper bound on pooled packet boxes; beyond this, freed boxes simply
/// deallocate. Far above any sustained in-flight packet count.
const PACKET_POOL_CAP: usize = 4096;

/// The interconnect engine: one event-driven link/router model driving
/// every [`FabricKind`] through the precomputed tables of a
/// [`FabricSpec`].
///
/// See the [crate-level documentation](crate) for the modelling contract
/// and a usage example. `M` is the protocol message type; it must be
/// `Clone` because multicast fan-out duplicates packets at tree branches.
#[derive(Debug)]
pub struct Fabric<M> {
    spec: FabricSpec,
    /// Last computed serialization delay per link class per size class
    /// (control / data): `(size_bytes, cycles)`. Real traffic uses two
    /// wire sizes, so this caches the float division out of the
    /// per-traversal path while computing unknown sizes exactly as
    /// before.
    ser_memo: [[(u64, u64); 2]; 2],
    config: FabricConfig,
    links: Vec<LinkState<M>>,
    /// Reusable per-out-slot grouping scratch for multicast fan-out;
    /// every entry is `None` between calls.
    groups: Vec<Option<DestSet>>,
    /// Free list of packet boxes: multicast branches and fresh sends
    /// reuse the allocations of delivered packets.
    pool: Vec<Box<Packet<M>>>,
    /// Fault-injection machinery; `None` (no faults configured) keeps the
    /// transmit path byte-identical to a fault-free build.
    faults: Option<FaultState>,
    stats: TrafficStats,
}

impl<M: Clone + NocPayload> Fabric<M> {
    /// Builds the interconnect for `config` (a [`FabricConfig`], or
    /// anything convertible into one, such as the legacy
    /// [`TorusConfig`](crate::TorusConfig)).
    pub fn new(config: impl Into<FabricConfig>) -> Self {
        let config = config.into();
        let spec = FabricSpec::build(&config);
        // Unbounded links never queue (packets start transmitting
        // immediately); finite links get a little headroom so early
        // contention does not reallocate.
        let links = (0..spec.num_links())
            .map(|link| {
                let unbounded = spec.class_params[spec.link_class(link)]
                    .bandwidth
                    .is_unbounded();
                LinkState {
                    busy: false,
                    queue: PriorityQueue::with_capacity(if unbounded { 0 } else { 16 }),
                    busy_cycles: 0,
                }
            })
            .collect();
        let faults = (!config.faults.is_none()).then(|| {
            // Map each link id back to its source node for the per-node
            // degradation clause (link_base is monotone; the node owning
            // link i is the last base at or below i).
            let base = spec.link_base.clone();
            FaultState::new(
                config.faults,
                config.fault_seed,
                spec.num_nodes() as usize,
                spec.num_links(),
                move |link| base.partition_point(|&b| b as usize <= link) - 1,
            )
        });
        Fabric {
            groups: vec![None; spec.max_degree()],
            spec,
            ser_memo: [[(u64::MAX, 0); 2]; 2],
            config,
            links,
            pool: Vec::with_capacity(64),
            faults,
            stats: TrafficStats::new(),
        }
    }

    /// Boxes `packet`, reusing a pooled allocation when one is free.
    #[inline]
    fn alloc_packet(&mut self, packet: Packet<M>) -> Box<Packet<M>> {
        match self.pool.pop() {
            Some(mut boxed) => {
                *boxed = packet;
                boxed
            }
            None => Box::new(packet),
        }
    }

    /// Returns a delivered packet's box to the pool.
    #[inline]
    fn free_packet(&mut self, boxed: Box<Packet<M>>) {
        if self.pool.len() < PACKET_POOL_CAP {
            self.pool.push(boxed);
        }
    }

    /// Serialization delay for a packet of `size` bytes on a link of
    /// class `class`, memoized per size class. Identical to
    /// [`LinkBandwidth::serialization_cycles`], minus the float division
    /// on repeat sizes.
    #[inline]
    fn serialization_cycles(&mut self, class: usize, size: u64) -> u64 {
        let slot = usize::from(size >= 64);
        let (cached_size, cached_cycles) = self.ser_memo[class][slot];
        if cached_size == size {
            return cached_cycles;
        }
        let cycles = self.spec.class_params[class]
            .bandwidth
            .serialization_cycles(size);
        self.ser_memo[class][slot] = (size, cycles);
        cycles
    }

    /// The built routing/link tables.
    pub fn spec(&self) -> &FabricSpec {
        &self.spec
    }

    /// The active configuration.
    pub fn config(&self) -> &FabricConfig {
        &self.config
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets traffic statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }

    /// Injects a message from `src` toward every node in `dests`.
    ///
    /// Multi-destination messages are routed as a single fan-out multicast:
    /// each link of the routing tree carries the message once. Follow-up
    /// events are emitted through `sched`; feed them back via
    /// [`Fabric::handle`] at their timestamps. A destination equal to `src`
    /// is delivered locally after the configured local latency without
    /// touching any link.
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty or sized for a different system.
    pub fn send(
        &mut self,
        now: Cycle,
        src: NodeId,
        dests: DestSet,
        priority: Priority,
        msg: M,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
    ) {
        assert!(!dests.is_empty(), "message from {src} with no destinations");
        assert_eq!(
            dests.num_nodes(),
            self.spec.num_nodes(),
            "destination set sized for a different system"
        );
        let packet = self.alloc_packet(Packet {
            size: msg.size_bytes(),
            class: msg.traffic_class(),
            dup_safe: msg.dup_safe(),
            msg,
            dests,
            priority,
        });
        // Local destinations never touch the network fabric; they arrive at
        // this node's own router after the local latency. Remote
        // destinations start routing immediately. We express both by
        // scheduling the arrival at the source router: `Arrive` handles
        // local delivery and forwards the rest.
        sched(
            now + self.config.local_latency,
            NocEvent(Event::Arrive { node: src, packet }),
        );
    }

    /// Processes one previously scheduled interconnect event.
    ///
    /// `sched` receives follow-up events; `deliver` receives `(node,
    /// message)` pairs for every completed delivery.
    pub fn handle(
        &mut self,
        now: Cycle,
        event: NocEvent<M>,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
        deliver: &mut impl FnMut(NodeId, M),
    ) {
        match event.0 {
            Event::Arrive { node, mut packet } => {
                if packet.dests.remove(node) {
                    if packet.dests.is_empty() {
                        // Final stop: hand the message out (a flat copy —
                        // protocol messages own no heap data) and recycle
                        // the box.
                        deliver(node, packet.msg.clone());
                        self.free_packet(packet);
                        return;
                    }
                    deliver(node, packet.msg.clone());
                }
                self.route_onward(now, node, packet, sched);
            }
            Event::LinkFree { link } => {
                self.links[link].busy = false;
                self.try_start(now, link, sched);
            }
        }
    }

    /// Groups a packet's remaining destinations by out-link slot and
    /// enqueues one branch per slot (fan-out multicast). The packet
    /// itself — message payload included — moves into the last branch, so
    /// the common unicast case clones nothing.
    fn route_onward(
        &mut self,
        now: Cycle,
        node: NodeId,
        mut packet: Box<Packet<M>>,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
    ) {
        debug_assert!(!packet.dests.contains(node));
        // Unicast fast path: one destination means one branch — a single
        // table lookup, no grouping pass.
        if let Some(dest) = packet.dests.as_single() {
            let slot = self
                .spec
                .next_slot(node, dest)
                .expect("dest equal to current node was already removed");
            self.enqueue(now, node, slot, packet, sched);
            return;
        }
        let Self { spec, groups, .. } = self;
        for dest in packet.dests.iter() {
            let slot = spec
                .next_slot(node, dest)
                .expect("dest equal to current node was already removed");
            groups[slot]
                .get_or_insert_with(|| DestSet::empty(spec.num_nodes()))
                .insert(dest);
        }
        let last = groups
            .iter()
            .rposition(|g| g.is_some())
            .expect("routed packet has at least one destination");
        for slot in 0..last {
            let Some(group) = self.groups[slot].take() else {
                continue;
            };
            let branch = packet.branch(group);
            let branch = self.alloc_packet(branch);
            self.enqueue(now, node, slot, branch, sched);
        }
        packet.dests = self.groups[last].take().expect("rposition found a group");
        self.enqueue(now, node, last, packet, sched);
    }

    /// Queues `branch` on `node`'s out-link slot `slot` and kicks the
    /// link if it is idle.
    fn enqueue(
        &mut self,
        now: Cycle,
        node: NodeId,
        slot: usize,
        branch: Box<Packet<M>>,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
    ) {
        let link = self.spec.link_id(node, slot);
        self.links[link].queue.push(now, branch.priority, branch);
        if !self.links[link].busy {
            self.try_start(now, link, sched);
        }
    }

    /// If `link` is idle and has a serviceable packet, begins transmitting
    /// it: charges traffic, occupies the link for the serialization delay,
    /// and schedules the arrival at the neighboring router.
    fn try_start(&mut self, now: Cycle, link: usize, sched: &mut impl FnMut(Cycle, NocEvent<M>)) {
        debug_assert!(!self.links[link].busy);
        let stale = self.config.stale_drop_cycles;
        let stats = &mut self.stats;
        let Some(packet) = self.links[link]
            .queue
            .pop(now, stale, |dropped: Box<Packet<M>>| {
                stats.record_drop(dropped.size)
            })
        else {
            return;
        };
        self.stats.record(packet.class, packet.size);
        let class = self.spec.link_class(link);
        let mut serialize = self.serialization_cycles(class, packet.size);
        let mut latency = self.spec.link_latency(link);
        // Fault injection (None on the fault-free path: timing below is
        // then bit-identical to a build without the fault layer). Degraded
        // links stretch both latency and serialization; storms stretch
        // serialization fabric-wide; spikes and reordering jitter delay
        // the arrival without occupying the link.
        let mut extra_delay = 0;
        let mut duplicate = false;
        if let Some(faults) = self.faults.as_mut() {
            let factor = faults.link_factor(link);
            serialize *= factor * faults.storm_factor(now.as_u64());
            latency *= factor;
            let t = faults.draw();
            extra_delay = t.extra_delay;
            duplicate = t.duplicate;
        }
        let mut dup_packet = None;
        if duplicate {
            // The duplicated bytes cross the link a second time either way.
            self.stats.record(packet.class, packet.size);
            if packet.dup_safe {
                // Genuine double delivery, only for packets whose protocol
                // tolerates duplicates (NocPayload::dup_safe).
                dup_packet = Some(packet.branch(packet.dests.clone()));
            } else {
                // Link-level retransmission: the link is occupied for a
                // second serialization and the single copy arrives late —
                // at-most-once delivery of token carriers is preserved.
                serialize *= 2;
            }
        }
        let neighbor = self.spec.link_dest(link);
        let arrival = now + serialize + latency + extra_delay;
        if let Some(dup) = dup_packet {
            let dup = self.alloc_packet(dup);
            sched(
                arrival + 1,
                NocEvent(Event::Arrive {
                    node: neighbor,
                    packet: dup,
                }),
            );
        }
        sched(
            arrival,
            NocEvent(Event::Arrive {
                node: neighbor,
                packet,
            }),
        );
        // With unbounded bandwidth the link never saturates; skip the
        // busy/free bookkeeping entirely so queues stay empty.
        if !self.spec.class_params[class].bandwidth.is_unbounded() {
            self.links[link].busy = true;
            self.links[link].busy_cycles += serialize;
            sched(now + serialize.max(1), NocEvent(Event::LinkFree { link }));
        } else if !self.links[link].queue.is_empty() {
            self.try_start(now, link, sched);
        }
    }

    /// Total cycles all links spent transmitting; a utilization diagnostic.
    pub fn total_busy_cycles(&self) -> u64 {
        self.links.iter().map(|l| l.busy_cycles).sum()
    }

    /// Number of packets currently queued across all links.
    pub fn queued_packets(&self) -> usize {
        self.links.iter().map(|l| l.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_round_trip() {
        for kind in FabricKind::ALL {
            assert_eq!(FabricKind::parse(&kind.label()), Some(kind));
        }
        let explicit = FabricKind::Hierarchical { cluster: Some(4) };
        assert_eq!(explicit.label(), "hier:4");
        assert_eq!(FabricKind::parse("hier:4"), Some(explicit));
        assert_eq!(
            FabricKind::parse("crossbar"),
            Some(FabricKind::FullyConnected)
        );
        assert_eq!(FabricKind::parse("nope"), None);
        assert_eq!(FabricKind::parse("hier:x"), None);
        assert_eq!(FabricKind::parse("hier:0"), None, "zero clusters rejected");
    }

    #[test]
    fn cluster_size_resolution() {
        assert_eq!(
            FabricKind::Hierarchical { cluster: None }.cluster_size(16),
            4
        );
        assert_eq!(
            FabricKind::Hierarchical { cluster: None }.cluster_size(8),
            4
        );
        assert_eq!(
            FabricKind::Hierarchical { cluster: Some(2) }.cluster_size(8),
            2
        );
        assert_eq!(FabricKind::Ring.cluster_size(8), 8);
    }

    /// An explicit cluster size that does not divide the node count
    /// falls back to the automatic factorization instead of panicking,
    /// so one `hier:C` choice survives a core-count sweep.
    #[test]
    fn hierarchical_cluster_falls_back_when_it_does_not_divide() {
        let kind = FabricKind::Hierarchical { cluster: Some(8) };
        assert_eq!(kind.cluster_size(16), 8, "divisor applies as given");
        assert_eq!(kind.cluster_size(4), 2, "fallback to the squarest factor");
        let spec = FabricSpec::build(&FabricConfig::new(kind, 4));
        assert_eq!(spec.num_nodes(), 4);
        // 4 nodes in two 2-node clusters: cross-cluster gateway hop.
        assert_eq!(spec.hop_distance(NodeId::new(1), NodeId::new(3)), 3);
    }

    #[test]
    fn crossbar_is_single_hop() {
        let spec = FabricSpec::build(&FabricConfig::new(FabricKind::FullyConnected, 9));
        for a in 0..9 {
            for b in 0..9 {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                assert_eq!(spec.hop_distance(a, b), u32::from(a != b));
                if a != b {
                    assert_eq!(spec.next_hop(a, b), Some(b));
                }
            }
        }
        // avg hops == 1 → calibrated to the full 15-cycle traversal.
        assert_eq!(spec.class_params()[0].latency, 15);
    }

    #[test]
    fn ring_routes_the_short_way() {
        let spec = FabricSpec::build(&FabricConfig::new(FabricKind::Ring, 8));
        assert_eq!(spec.hop_distance(NodeId::new(0), NodeId::new(4)), 4);
        // Ties (exactly half way) break toward the forward link (slot 0).
        assert_eq!(
            spec.next_hop(NodeId::new(0), NodeId::new(4)),
            Some(NodeId::new(1))
        );
        assert_eq!(
            spec.next_hop(NodeId::new(0), NodeId::new(6)),
            Some(NodeId::new(7))
        );
        assert_eq!(spec.degree(NodeId::new(3)), 2);
    }

    #[test]
    fn mesh_has_no_wraparound() {
        // 4x4 mesh: corner-to-corner is 6 hops (vs 2 on the torus).
        let spec = FabricSpec::build(&FabricConfig::new(FabricKind::Mesh2D, 16));
        assert_eq!(spec.hop_distance(NodeId::new(0), NodeId::new(15)), 6);
        assert_eq!(spec.degree(NodeId::new(0)), 2, "corner");
        assert_eq!(spec.degree(NodeId::new(1)), 3, "edge");
        assert_eq!(spec.degree(NodeId::new(5)), 4, "interior");
    }

    #[test]
    fn hierarchical_routes_through_gateways() {
        // 16 nodes, 4 clusters of 4; gateways are 0, 4, 8, 12.
        let spec = FabricSpec::build(&FabricConfig::new(
            FabricKind::Hierarchical { cluster: Some(4) },
            16,
        ));
        // Intra-cluster: one hop.
        assert_eq!(spec.hop_distance(NodeId::new(1), NodeId::new(3)), 1);
        // Cross-cluster from a non-gateway: to own gateway, across, then
        // into the target cluster: 1 + 1 + 1 = 3.
        assert_eq!(spec.hop_distance(NodeId::new(1), NodeId::new(5)), 3);
        assert_eq!(
            spec.next_hop(NodeId::new(1), NodeId::new(5)),
            Some(NodeId::new(0))
        );
        // Gateway ring links carry the Global class parameters.
        let g0 = NodeId::new(0);
        let slot = spec.next_slot(g0, NodeId::new(4)).unwrap();
        let link = spec.link_id(g0, slot);
        assert_eq!(spec.link_class(link), LinkClass::Global.index());
        let [local, global] = spec.class_params();
        assert_eq!(global.latency, 4 * local.latency);
        assert_eq!(
            global.bandwidth,
            LinkBandwidth::BytesPerCycle(8.0),
            "derived global bandwidth is half the 16 B/c default"
        );
    }

    #[test]
    fn global_link_override_applies() {
        let params = LinkParams {
            latency: 42,
            bandwidth: LinkBandwidth::BytesPerCycle(1.0),
        };
        let spec = FabricSpec::build(
            &FabricConfig::new(FabricKind::Hierarchical { cluster: Some(4) }, 16)
                .with_global_link(params),
        );
        assert_eq!(spec.class_params()[1], params);
    }

    #[test]
    #[should_panic(expected = "disconnected")]
    fn disconnected_adjacency_rejected() {
        let adj = Adjacency::new(2); // two nodes, no links
        let params = LinkParams {
            latency: 1,
            bandwidth: LinkBandwidth::Unbounded,
        };
        let _ = FabricSpec::from_adjacency(&adj, [params; 2]);
    }

    #[test]
    fn single_node_fabrics_build() {
        for kind in FabricKind::ALL {
            let spec = FabricSpec::build(&FabricConfig::new(kind, 1));
            assert_eq!(spec.num_nodes(), 1);
            assert_eq!(spec.next_slot(NodeId::new(0), NodeId::new(0)), None);
            assert_eq!(spec.average_hop_distance(), 0.0);
        }
    }

    /// Following next hops repeatedly reaches the destination in exactly
    /// `hop_distance` steps on every fabric (routing is minimal and
    /// loop-free).
    #[test]
    fn routing_is_minimal_on_every_fabric() {
        for kind in FabricKind::ALL {
            for n in [2u16, 6, 12, 16] {
                let spec = FabricSpec::build(&FabricConfig::new(kind, n));
                for from in 0..n {
                    for to in 0..n {
                        let (from, to) = (NodeId::new(from), NodeId::new(to));
                        let mut cur = from;
                        let mut steps = 0;
                        while let Some(next) = spec.next_hop(cur, to) {
                            cur = next;
                            steps += 1;
                            assert!(steps <= spec.hop_distance(from, to), "loop on {kind}");
                        }
                        assert_eq!(cur, to);
                        assert_eq!(steps, spec.hop_distance(from, to), "{kind} {from}->{to}");
                    }
                }
            }
        }
    }

    /// A probe payload whose `dup_safe` flag is chosen per message.
    #[derive(Clone, Debug)]
    struct Probe {
        dup_safe: bool,
    }

    impl NocPayload for Probe {
        fn size_bytes(&self) -> u64 {
            8
        }
        fn traffic_class(&self) -> TrafficClass {
            TrafficClass::IndirectRequest
        }
        fn dup_safe(&self) -> bool {
            self.dup_safe
        }
    }

    /// Sends one probe from node 0 to each of `dests` and drains the
    /// event list in timestamp order, returning every delivery as
    /// `(cycle, node)`.
    fn deliveries_to(mut net: Fabric<Probe>, dup_safe: bool, dests: &[u16]) -> Vec<(u64, NodeId)> {
        let n = net.spec().num_nodes();
        let mut pending: Vec<(Cycle, NocEvent<Probe>)> = Vec::new();
        for &d in dests {
            net.send(
                Cycle::ZERO,
                NodeId::new(0),
                DestSet::single(n, NodeId::new(d)),
                Priority::Normal,
                Probe { dup_safe },
                &mut |at, ev| pending.push((at, ev)),
            );
        }
        let mut out = Vec::new();
        while !pending.is_empty() {
            let i = pending
                .iter()
                .enumerate()
                .min_by_key(|(i, (at, _))| (*at, *i))
                .map(|(i, _)| i)
                .unwrap();
            let (at, ev) = pending.remove(i);
            let mut delivered = Vec::new();
            net.handle(
                at,
                ev,
                &mut |t, e| pending.push((t, e)),
                &mut |node, _msg| delivered.push((at.as_u64(), node)),
            );
            out.extend(delivered);
        }
        out
    }

    /// One probe from node 0 to node 1.
    fn deliveries(net: Fabric<Probe>, dup_safe: bool) -> Vec<(u64, NodeId)> {
        deliveries_to(net, dup_safe, &[1])
    }

    #[test]
    fn fault_free_config_installs_no_fault_state() {
        let cfg = FabricConfig::new(FabricKind::FullyConnected, 2)
            .with_faults(FaultSpec::none())
            .with_fault_seed(123);
        let net: Fabric<Probe> = Fabric::new(cfg);
        assert!(net.faults.is_none());
        // Timing identical to a config that never mentioned faults.
        let base = deliveries(
            Fabric::new(FabricConfig::new(FabricKind::FullyConnected, 2)),
            false,
        );
        assert_eq!(deliveries(Fabric::new(cfg), false), base);
    }

    #[test]
    fn degraded_links_stretch_arrival() {
        let base = FabricConfig::new(FabricKind::FullyConnected, 2);
        let healthy = deliveries(Fabric::new(base), false);
        let degraded = deliveries(
            Fabric::new(base.with_faults(FaultSpec::parse("slowlinks:1.0:2").unwrap())),
            false,
        );
        assert_eq!(healthy.len(), 1);
        assert_eq!(degraded.len(), 1);
        assert!(
            degraded[0].0 > healthy[0].0,
            "2x-degraded link must deliver later ({} vs {})",
            degraded[0].0,
            healthy[0].0
        );
    }

    #[test]
    fn dup_safe_packets_deliver_twice_others_once_but_late() {
        let cfg = FabricConfig::new(FabricKind::FullyConnected, 2)
            .with_faults(FaultSpec::parse("dup:1.0").unwrap());
        let dup = deliveries(Fabric::new(cfg), true);
        assert_eq!(dup.len(), 2, "dup-safe probe must arrive twice");
        assert!(dup.iter().all(|&(_, n)| n == NodeId::new(1)));

        let retrans = deliveries(Fabric::new(cfg), false);
        assert_eq!(retrans.len(), 1, "token carriers stay at-most-once");
        let healthy = deliveries(
            Fabric::new(FabricConfig::new(FabricKind::FullyConnected, 2)),
            false,
        );
        assert!(
            retrans[0].0 > healthy[0].0,
            "retransmission must delay the single delivery"
        );
    }

    #[test]
    fn fault_schedules_replay_from_spec_and_seed() {
        // One probe to every other ring node: 120 traversals, so two
        // seeds agreeing on every jitter draw is astronomically unlikely.
        let dests: Vec<u16> = (1..16).collect();
        let cfg = FabricConfig::new(FabricKind::Ring, 16)
            .with_faults(FaultSpec::parse("chaos").unwrap())
            .with_fault_seed(42);
        assert_eq!(
            deliveries_to(Fabric::new(cfg), false, &dests),
            deliveries_to(Fabric::new(cfg), false, &dests)
        );
        let other = cfg.with_fault_seed(43);
        assert_ne!(
            deliveries_to(Fabric::new(cfg), false, &dests),
            deliveries_to(Fabric::new(other), false, &dests)
        );
    }

    #[test]
    fn multicast_tree_covers_exactly_the_destinations() {
        let spec = FabricSpec::build(&FabricConfig::new(FabricKind::Mesh2D, 16));
        let dests = DestSet::all_except(16, NodeId::new(5));
        let tree = spec.multicast_tree(NodeId::new(5), &dests);
        let mut delivered: Vec<u16> = tree.deliveries.iter().map(|n| n.raw()).collect();
        delivered.sort_unstable();
        let want: Vec<u16> = (0..16).filter(|&n| n != 5).collect();
        assert_eq!(delivered, want);
        for &(a, b) in &tree.edges {
            assert!(spec.is_link(a, b), "tree edge {a}->{b} is not a link");
        }
    }
}
