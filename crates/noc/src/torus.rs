//! The paper's 2D-torus interconnect, as one instance of the generic
//! [`Fabric`] engine.
//!
//! Until the fabric subsystem landed, the torus *was* the interconnect:
//! it owned the next-hop table, link layout, and multicast fan-out. It is
//! now [`FabricKind::Torus`](crate::FabricKind::Torus) built through the
//! same generic BFS routing builder as every other topology — with
//! byte-identical behavior, pinned by the golden equivalence tests in
//! `tests/fabric_routing.rs`.

use crate::fabric::{Fabric, FabricConfig, FabricKind};
use crate::topology::Topology;
use crate::LinkBandwidth;

/// Configuration of the torus interconnect.
///
/// Defaults match the paper's baseline: 16 bytes/cycle links, a per-hop
/// latency calibrated so that an average traversal costs about 15 cycles,
/// and a 100-cycle staleness bound for best-effort messages.
///
/// This is the legacy torus-only configuration; it converts into a
/// [`FabricConfig`] (`FabricConfig::from(torus_config)`), which is what
/// [`Fabric::new`] accepts.
///
/// # Examples
///
/// ```
/// use patchsim_noc::{LinkBandwidth, TorusConfig};
///
/// let cfg = TorusConfig::new(64)
///     .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
///     .with_stale_drop_cycles(100);
/// assert_eq!(cfg.num_nodes(), 64);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TorusConfig {
    num_nodes: u16,
    bandwidth: LinkBandwidth,
    hop_latency: u64,
    local_latency: u64,
    stale_drop_cycles: u64,
}

impl TorusConfig {
    /// Default link bandwidth: the paper's bandwidth-rich 16 bytes/cycle.
    pub const DEFAULT_BANDWIDTH: LinkBandwidth = FabricConfig::DEFAULT_BANDWIDTH;
    /// Default best-effort staleness bound (paper: 100 cycles).
    pub const DEFAULT_STALE_DROP: u64 = FabricConfig::DEFAULT_STALE_DROP;

    /// Creates a configuration for `num_nodes` nodes with paper-default
    /// timing. The per-hop latency is chosen so that the average traversal
    /// (over the most nearly square torus of that size) totals roughly 15
    /// cycles of link latency.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: u16) -> Self {
        let topo = Topology::new(num_nodes);
        let avg_hops = topo.average_hop_distance().max(1.0);
        let hop_latency = ((15.0 / avg_hops).round() as u64).max(1);
        TorusConfig {
            num_nodes,
            bandwidth: Self::DEFAULT_BANDWIDTH,
            hop_latency,
            local_latency: 1,
            stale_drop_cycles: Self::DEFAULT_STALE_DROP,
        }
    }

    /// Sets the link bandwidth.
    pub fn with_bandwidth(mut self, bandwidth: LinkBandwidth) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the per-hop propagation latency in cycles.
    pub fn with_hop_latency(mut self, cycles: u64) -> Self {
        self.hop_latency = cycles;
        self
    }

    /// Sets the latency of a node sending a message to itself (e.g. to its
    /// own home-directory slice).
    pub fn with_local_latency(mut self, cycles: u64) -> Self {
        self.local_latency = cycles;
        self
    }

    /// Sets how long a best-effort message may wait at one link before
    /// being dropped.
    pub fn with_stale_drop_cycles(mut self, cycles: u64) -> Self {
        self.stale_drop_cycles = cycles;
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// Link bandwidth.
    pub fn bandwidth(&self) -> LinkBandwidth {
        self.bandwidth
    }

    /// Per-hop propagation latency in cycles.
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Self-send latency in cycles.
    pub fn local_latency(&self) -> u64 {
        self.local_latency
    }

    /// Best-effort staleness bound in cycles.
    pub fn stale_drop_cycles(&self) -> u64 {
        self.stale_drop_cycles
    }
}

impl From<TorusConfig> for FabricConfig {
    fn from(t: TorusConfig) -> FabricConfig {
        FabricConfig::new(FabricKind::Torus, t.num_nodes)
            .with_hop_latency(t.hop_latency)
            .with_bandwidth(t.bandwidth)
            .with_local_latency(t.local_latency)
            .with_stale_drop_cycles(t.stale_drop_cycles)
    }
}

/// The 2D-torus interconnect: the generic [`Fabric`] engine built on the
/// torus topology. `Torus::new(TorusConfig::new(n))` works unchanged.
pub type Torus<M> = Fabric<M>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DestSet, NocEvent, NocPayload, NodeId, Priority, TrafficClass};
    use patchsim_kernel::{Cycle, EventQueue};

    #[derive(Clone, Debug, PartialEq)]
    struct TestMsg {
        id: u32,
        size: u64,
        class: TrafficClass,
    }

    impl NocPayload for TestMsg {
        fn size_bytes(&self) -> u64 {
            self.size
        }
        fn traffic_class(&self) -> TrafficClass {
            self.class
        }
    }

    fn control(id: u32) -> TestMsg {
        TestMsg {
            id,
            size: 8,
            class: TrafficClass::IndirectRequest,
        }
    }

    fn data(id: u32) -> TestMsg {
        TestMsg {
            id,
            size: 72,
            class: TrafficClass::Data,
        }
    }

    /// Drives a torus to completion through a kernel event queue, returning
    /// `(arrival_cycle, node, msg)` tuples in delivery order.
    fn run(
        net: &mut Torus<TestMsg>,
        sends: Vec<(u64, NodeId, DestSet, Priority, TestMsg)>,
    ) -> Vec<(u64, NodeId, TestMsg)> {
        let mut q: EventQueue<NocEvent<TestMsg>> = EventQueue::new();
        let mut deliveries = Vec::new();
        for (at, src, dests, prio, msg) in sends {
            net.send(Cycle::new(at), src, dests, prio, msg, &mut |c, e| {
                q.push(c, e)
            });
        }
        while let Some((now, ev)) = q.pop() {
            let mut sched_buf = Vec::new();
            net.handle(now, ev, &mut |c, e| sched_buf.push((c, e)), &mut |n, m| {
                deliveries.push((now.as_u64(), n, m))
            });
            for (c, e) in sched_buf {
                q.push(c, e);
            }
        }
        deliveries
    }

    #[test]
    fn unicast_latency_is_hops_times_latency_plus_serialization() {
        let cfg = TorusConfig::new(16)
            .with_hop_latency(5)
            .with_local_latency(1)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(8.0));
        let mut net = Torus::new(cfg);
        // 4x4 torus: node 0 -> node 2 is 2 hops in x.
        let out = run(
            &mut net,
            vec![(
                0,
                NodeId::new(0),
                DestSet::single(16, NodeId::new(2)),
                Priority::Normal,
                control(1),
            )],
        );
        assert_eq!(out.len(), 1);
        // local injection (1) + 2 hops * (serialize 1 + latency 5) = 13
        assert_eq!(out[0].0, 13);
        assert_eq!(out[0].1, NodeId::new(2));
    }

    #[test]
    fn self_send_is_local() {
        let mut net = Torus::new(TorusConfig::new(4).with_local_latency(3));
        let out = run(
            &mut net,
            vec![(
                10,
                NodeId::new(1),
                DestSet::single(4, NodeId::new(1)),
                Priority::Normal,
                control(7),
            )],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 13);
        assert_eq!(
            net.stats().total_bytes(),
            0,
            "no link traffic for self-send"
        );
    }

    #[test]
    fn multicast_reaches_every_destination_once() {
        let mut net = Torus::new(TorusConfig::new(16));
        let dests = DestSet::all_except(16, NodeId::new(0));
        let out = run(
            &mut net,
            vec![(0, NodeId::new(0), dests, Priority::Normal, control(3))],
        );
        let mut nodes: Vec<u16> = out.iter().map(|(_, n, _)| n.raw()).collect();
        nodes.sort();
        assert_eq!(nodes, (1..16).collect::<Vec<u16>>());
    }

    #[test]
    fn multicast_fanout_charges_tree_links_not_destinations() {
        // On a 4x4 torus, a broadcast from node 0 reaches 15 nodes.
        // Fan-out multicast uses a spanning-tree-like set of links; the
        // traversal count must be well below a 15-unicast lower bound.
        let mut net = Torus::new(TorusConfig::new(16));
        let dests = DestSet::all_except(16, NodeId::new(0));
        run(
            &mut net,
            vec![(0, NodeId::new(0), dests, Priority::Normal, control(3))],
        );
        let traversals = net.stats().traversals(TrafficClass::IndirectRequest);
        // Dimension-order tree on 4x4: every node is reached over exactly
        // one incoming link, so the tree has exactly 15 links... but
        // unicasts would cost sum of hop distances = 1+1+2+... > 15.
        let unicast_cost: u64 = (1..16)
            .map(|i| net.spec().hop_distance(NodeId::new(0), NodeId::new(i)) as u64)
            .sum();
        assert!(traversals < unicast_cost);
        assert_eq!(traversals, 15, "one incoming link per covered node");
    }

    #[test]
    fn contention_serializes_packets() {
        // Two large packets from node 0 to node 1 share the same link; with
        // 1 B/cycle links the second must wait out the first's 72-cycle
        // serialization.
        let cfg = TorusConfig::new(4)
            .with_hop_latency(5)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(1.0));
        let mut net = Torus::new(cfg);
        let out = run(
            &mut net,
            vec![
                (
                    0,
                    NodeId::new(0),
                    DestSet::single(4, NodeId::new(1)),
                    Priority::Normal,
                    data(1),
                ),
                (
                    0,
                    NodeId::new(0),
                    DestSet::single(4, NodeId::new(1)),
                    Priority::Normal,
                    data(2),
                ),
            ],
        );
        assert_eq!(out.len(), 2);
        // First: inject 1 + serialize 72 + hop 5 = 78.
        assert_eq!(out[0].0, 78);
        assert_eq!(out[0].2.id, 1);
        // Second starts when the link frees at 73: 73 + 72 + 5 = 150.
        assert_eq!(out[1].0, 150);
    }

    #[test]
    fn unbounded_bandwidth_never_queues() {
        let cfg = TorusConfig::new(4)
            .with_hop_latency(5)
            .with_bandwidth(LinkBandwidth::Unbounded);
        let mut net = Torus::new(cfg);
        let sends = (0..10)
            .map(|i| {
                (
                    0u64,
                    NodeId::new(0),
                    DestSet::single(4, NodeId::new(1)),
                    Priority::Normal,
                    data(i),
                )
            })
            .collect();
        let out = run(&mut net, sends);
        assert_eq!(out.len(), 10);
        // All arrive at inject 1 + hop 5 = 6.
        assert!(out.iter().all(|(t, _, _)| *t == 6));
    }

    #[test]
    fn best_effort_yields_to_normal_and_gets_dropped_when_stale() {
        // Saturate the 0->1 link with normal data, then inject a
        // best-effort hint: it must be dropped once stale.
        let cfg = TorusConfig::new(4)
            .with_hop_latency(5)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(1.0))
            .with_stale_drop_cycles(100);
        let mut net = Torus::new(cfg);
        let mut sends = vec![];
        for i in 0..4 {
            sends.push((
                0u64,
                NodeId::new(0),
                DestSet::single(4, NodeId::new(1)),
                Priority::Normal,
                data(i),
            ));
        }
        sends.push((
            0,
            NodeId::new(0),
            DestSet::single(4, NodeId::new(1)),
            Priority::BestEffort,
            control(99),
        ));
        let out = run(&mut net, sends);
        // The best-effort hint never arrives: by the time the link frees
        // (4 * 72 = 288 cycles), it has been queued > 100 cycles.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|(_, _, m)| m.id != 99));
        assert_eq!(net.stats().dropped_packets(), 1);
        assert_eq!(net.stats().dropped_bytes(), 8);
    }

    #[test]
    fn best_effort_delivered_when_bandwidth_is_plentiful() {
        let cfg = TorusConfig::new(4).with_bandwidth(LinkBandwidth::BytesPerCycle(16.0));
        let mut net = Torus::new(cfg);
        let out = run(
            &mut net,
            vec![(
                0,
                NodeId::new(0),
                DestSet::single(4, NodeId::new(1)),
                Priority::BestEffort,
                control(1),
            )],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(net.stats().dropped_packets(), 0);
    }

    #[test]
    fn traffic_charged_per_traversal() {
        let cfg = TorusConfig::new(16).with_bandwidth(LinkBandwidth::BytesPerCycle(16.0));
        let mut net = Torus::new(cfg);
        // 0 -> 2 on 4x4 is two hops: 2 traversals * 72 bytes.
        run(
            &mut net,
            vec![(
                0,
                NodeId::new(0),
                DestSet::single(16, NodeId::new(2)),
                Priority::Normal,
                data(1),
            )],
        );
        assert_eq!(net.stats().bytes(TrafficClass::Data), 144);
        assert_eq!(net.stats().traversals(TrafficClass::Data), 2);
    }

    #[test]
    #[should_panic(expected = "no destinations")]
    fn empty_destination_set_panics() {
        let mut net = Torus::new(TorusConfig::new(4));
        net.send(
            Cycle::ZERO,
            NodeId::new(0),
            DestSet::empty(4),
            Priority::Normal,
            control(0),
            &mut |_, _| {},
        );
    }

    #[test]
    fn default_hop_latency_calibrated_to_15_cycle_traversals() {
        let cfg = TorusConfig::new(64);
        let avg = Topology::new(64).average_hop_distance();
        let total = cfg.hop_latency() as f64 * avg;
        assert!(
            (total - 15.0).abs() <= 5.0,
            "average traversal {total:.1} should be near 15 cycles"
        );
    }

    /// The legacy `TorusConfig` and the generic auto-calibrated
    /// `FabricConfig` resolve to identical link parameters.
    #[test]
    fn torus_config_converts_losslessly() {
        for n in [1u16, 4, 16, 64, 120] {
            let legacy = TorusConfig::new(n);
            let via_legacy = Torus::<TestMsg>::new(legacy);
            let generic = Torus::<TestMsg>::new(FabricConfig::new(crate::FabricKind::Torus, n));
            assert_eq!(
                via_legacy.spec().class_params()[0].latency,
                legacy.hop_latency()
            );
            assert_eq!(
                via_legacy.spec().class_params(),
                generic.spec().class_params(),
                "auto-calibration must match the legacy formula for {n} nodes"
            );
        }
    }
}
