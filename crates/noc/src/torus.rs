//! The torus interconnect: event-driven link and router model.

use patchsim_kernel::Cycle;

use crate::link::PriorityQueue;
use crate::topology::Direction;
use crate::{
    DestSet, LinkBandwidth, NocPayload, NodeId, Priority, RouteTable, Topology, TrafficClass,
    TrafficStats,
};

/// Configuration of the torus interconnect.
///
/// Defaults match the paper's baseline: 16 bytes/cycle links, a per-hop
/// latency calibrated so that an average traversal costs about 15 cycles,
/// and a 100-cycle staleness bound for best-effort messages.
///
/// # Examples
///
/// ```
/// use patchsim_noc::{LinkBandwidth, TorusConfig};
///
/// let cfg = TorusConfig::new(64)
///     .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
///     .with_stale_drop_cycles(100);
/// assert_eq!(cfg.num_nodes(), 64);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct TorusConfig {
    num_nodes: u16,
    bandwidth: LinkBandwidth,
    hop_latency: u64,
    local_latency: u64,
    stale_drop_cycles: u64,
}

impl TorusConfig {
    /// Default link bandwidth: the paper's bandwidth-rich 16 bytes/cycle.
    pub const DEFAULT_BANDWIDTH: LinkBandwidth = LinkBandwidth::BytesPerCycle(16.0);
    /// Default best-effort staleness bound (paper: 100 cycles).
    pub const DEFAULT_STALE_DROP: u64 = 100;

    /// Creates a configuration for `num_nodes` nodes with paper-default
    /// timing. The per-hop latency is chosen so that the average traversal
    /// (over the most nearly square torus of that size) totals roughly 15
    /// cycles of link latency.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    pub fn new(num_nodes: u16) -> Self {
        let topo = Topology::new(num_nodes);
        let avg_hops = topo.average_hop_distance().max(1.0);
        let hop_latency = ((15.0 / avg_hops).round() as u64).max(1);
        TorusConfig {
            num_nodes,
            bandwidth: Self::DEFAULT_BANDWIDTH,
            hop_latency,
            local_latency: 1,
            stale_drop_cycles: Self::DEFAULT_STALE_DROP,
        }
    }

    /// Sets the link bandwidth.
    pub fn with_bandwidth(mut self, bandwidth: LinkBandwidth) -> Self {
        self.bandwidth = bandwidth;
        self
    }

    /// Sets the per-hop propagation latency in cycles.
    pub fn with_hop_latency(mut self, cycles: u64) -> Self {
        self.hop_latency = cycles;
        self
    }

    /// Sets the latency of a node sending a message to itself (e.g. to its
    /// own home-directory slice).
    pub fn with_local_latency(mut self, cycles: u64) -> Self {
        self.local_latency = cycles;
        self
    }

    /// Sets how long a best-effort message may wait at one link before
    /// being dropped.
    pub fn with_stale_drop_cycles(mut self, cycles: u64) -> Self {
        self.stale_drop_cycles = cycles;
        self
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u16 {
        self.num_nodes
    }

    /// Link bandwidth.
    pub fn bandwidth(&self) -> LinkBandwidth {
        self.bandwidth
    }

    /// Per-hop propagation latency in cycles.
    pub fn hop_latency(&self) -> u64 {
        self.hop_latency
    }

    /// Best-effort staleness bound in cycles.
    pub fn stale_drop_cycles(&self) -> u64 {
        self.stale_drop_cycles
    }
}

/// A packet in flight: the payload plus routing and accounting state.
#[derive(Debug)]
struct Packet<M> {
    msg: M,
    dests: DestSet,
    priority: Priority,
    size: u64,
    class: TrafficClass,
}

impl<M: Clone> Packet<M> {
    /// Splits off a copy of this packet covering `dests`.
    fn branch(&self, dests: DestSet) -> Packet<M> {
        Packet {
            msg: self.msg.clone(),
            dests,
            priority: self.priority,
            size: self.size,
            class: self.class,
        }
    }
}

/// An internal interconnect event. Opaque to callers: obtain them from the
/// scheduling callback of [`Torus::send`] / [`Torus::handle`] and feed them
/// back to [`Torus::handle`] at their scheduled time.
#[derive(Debug)]
pub struct NocEvent<M>(Event<M>);

#[derive(Debug)]
enum Event<M> {
    /// A packet arrives at `node`'s router (possibly its final stop).
    ///
    /// Boxed so a `NocEvent` is pointer-sized: events sit in the kernel
    /// queue's wheel buckets, and moving ~16 bytes per push/pop instead
    /// of a 100+-byte packet keeps the hot loop in cache. The boxes come
    /// from (and return to) the torus's packet pool, so steady-state
    /// operation performs no allocation.
    Arrive {
        node: NodeId,
        packet: Box<Packet<M>>,
    },
    /// A link finished serializing its current packet.
    LinkFree { link: usize },
}

/// The 2D-torus interconnect.
///
/// See the [crate-level documentation](crate) for the modelling contract and
/// a usage example. `M` is the protocol message type; it must be `Clone`
/// because multicast fan-out duplicates packets at tree branches.
#[derive(Debug)]
pub struct Torus<M> {
    topo: Topology,
    /// Precomputed pairwise next hops; `route_onward` takes one byte load
    /// per destination per hop instead of recomputing torus geometry.
    routes: RouteTable,
    /// The router at the far end of each link, indexed like `links`.
    link_neighbor: Vec<NodeId>,
    /// Last computed serialization delay per size class (control / data):
    /// `(size_bytes, cycles)`. Real traffic uses two wire sizes, so this
    /// caches the float division out of the per-traversal path while
    /// computing unknown sizes exactly as before.
    ser_memo: [(u64, u64); 2],
    config: TorusConfig,
    /// `num_nodes × 4` links; link `n*4 + d` leaves node `n` in direction
    /// `Direction::ALL[d]`.
    links: Vec<LinkState<M>>,
    /// Free list of packet boxes: multicast branches and fresh sends
    /// reuse the allocations of delivered packets.
    pool: Vec<Box<Packet<M>>>,
    stats: TrafficStats,
}

#[derive(Debug)]
struct LinkState<M> {
    busy: bool,
    queue: PriorityQueue<Box<Packet<M>>>,
    busy_cycles: u64,
}

/// Upper bound on pooled packet boxes; beyond this, freed boxes simply
/// deallocate. Far above any sustained in-flight packet count.
const PACKET_POOL_CAP: usize = 4096;

impl<M: Clone + NocPayload> Torus<M> {
    /// Builds the interconnect for `config`.
    pub fn new(config: TorusConfig) -> Self {
        let topo = Topology::new(config.num_nodes);
        // Unbounded links never queue (packets start transmitting
        // immediately); finite links get a little headroom so early
        // contention does not reallocate.
        let queue_capacity = if config.bandwidth.is_unbounded() {
            0
        } else {
            16
        };
        let links = (0..topo.num_nodes() as usize * 4)
            .map(|_| LinkState {
                busy: false,
                queue: PriorityQueue::with_capacity(queue_capacity),
                busy_cycles: 0,
            })
            .collect();
        let link_neighbor = (0..topo.num_nodes() as usize * 4)
            .map(|link| topo.neighbor(NodeId::new((link / 4) as u16), Direction::ALL[link % 4]))
            .collect();
        Torus {
            topo,
            routes: RouteTable::new(topo),
            link_neighbor,
            ser_memo: [(u64::MAX, 0); 2],
            config,
            links,
            pool: Vec::with_capacity(64),
            stats: TrafficStats::new(),
        }
    }

    /// Boxes `packet`, reusing a pooled allocation when one is free.
    #[inline]
    fn alloc_packet(&mut self, packet: Packet<M>) -> Box<Packet<M>> {
        match self.pool.pop() {
            Some(mut boxed) => {
                *boxed = packet;
                boxed
            }
            None => Box::new(packet),
        }
    }

    /// Returns a delivered packet's box to the pool.
    #[inline]
    fn free_packet(&mut self, boxed: Box<Packet<M>>) {
        if self.pool.len() < PACKET_POOL_CAP {
            self.pool.push(boxed);
        }
    }

    /// Serialization delay for a packet of `size` bytes, memoized per
    /// size class. Identical to
    /// [`LinkBandwidth::serialization_cycles`], minus the float division
    /// on repeat sizes.
    #[inline]
    fn serialization_cycles(&mut self, size: u64) -> u64 {
        let slot = usize::from(size >= 64);
        let (cached_size, cached_cycles) = self.ser_memo[slot];
        if cached_size == size {
            return cached_cycles;
        }
        let cycles = self.config.bandwidth.serialization_cycles(size);
        self.ser_memo[slot] = (size, cycles);
        cycles
    }

    /// The torus shape.
    pub fn topology(&self) -> Topology {
        self.topo
    }

    /// The active configuration.
    pub fn config(&self) -> &TorusConfig {
        &self.config
    }

    /// Accumulated traffic statistics.
    pub fn stats(&self) -> &TrafficStats {
        &self.stats
    }

    /// Resets traffic statistics (e.g. after warmup).
    pub fn reset_stats(&mut self) {
        self.stats = TrafficStats::new();
    }

    /// Injects a message from `src` toward every node in `dests`.
    ///
    /// Multi-destination messages are routed as a single fan-out multicast:
    /// each link of the routing tree carries the message once. Follow-up
    /// events are emitted through `sched`; feed them back via
    /// [`Torus::handle`] at their timestamps. A destination equal to `src`
    /// is delivered locally after the configured local latency without
    /// touching any link.
    ///
    /// # Panics
    ///
    /// Panics if `dests` is empty or sized for a different system.
    pub fn send(
        &mut self,
        now: Cycle,
        src: NodeId,
        dests: DestSet,
        priority: Priority,
        msg: M,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
    ) {
        assert!(!dests.is_empty(), "message from {src} with no destinations");
        assert_eq!(
            dests.num_nodes(),
            self.topo.num_nodes(),
            "destination set sized for a different system"
        );
        let packet = self.alloc_packet(Packet {
            size: msg.size_bytes(),
            class: msg.traffic_class(),
            msg,
            dests,
            priority,
        });
        // Local destinations never touch the network fabric; they arrive at
        // this node's own router after the local latency. Remote
        // destinations start routing immediately. We express both by
        // scheduling the arrival at the source router: `Arrive` handles
        // local delivery and forwards the rest.
        sched(
            now + self.config.local_latency,
            NocEvent(Event::Arrive { node: src, packet }),
        );
    }

    /// Processes one previously scheduled interconnect event.
    ///
    /// `sched` receives follow-up events; `deliver` receives `(node,
    /// message)` pairs for every completed delivery.
    pub fn handle(
        &mut self,
        now: Cycle,
        event: NocEvent<M>,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
        deliver: &mut impl FnMut(NodeId, M),
    ) {
        match event.0 {
            Event::Arrive { node, mut packet } => {
                if packet.dests.remove(node) {
                    if packet.dests.is_empty() {
                        // Final stop: hand the message out (a flat copy —
                        // protocol messages own no heap data) and recycle
                        // the box.
                        deliver(node, packet.msg.clone());
                        self.free_packet(packet);
                        return;
                    }
                    deliver(node, packet.msg.clone());
                }
                self.route_onward(now, node, packet, sched);
            }
            Event::LinkFree { link } => {
                self.links[link].busy = false;
                self.try_start(now, link, sched);
            }
        }
    }

    /// Groups a packet's remaining destinations by output direction and
    /// enqueues one branch per direction (fan-out multicast). The packet
    /// itself — message payload included — moves into the last branch, so
    /// the common unicast case clones nothing.
    fn route_onward(
        &mut self,
        now: Cycle,
        node: NodeId,
        mut packet: Box<Packet<M>>,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
    ) {
        debug_assert!(!packet.dests.contains(node));
        // Unicast fast path: one destination means one branch — a single
        // table lookup, no grouping pass.
        if let Some(dest) = packet.dests.as_single() {
            let dir = self
                .routes
                .next_hop(node, dest)
                .expect("dest equal to current node was already removed");
            self.enqueue(now, node, dir.index(), packet, sched);
            return;
        }
        let mut groups: [Option<DestSet>; 4] = [None, None, None, None];
        for dest in packet.dests.iter() {
            let dir = self
                .routes
                .next_hop(node, dest)
                .expect("dest equal to current node was already removed");
            groups[dir.index()]
                .get_or_insert_with(|| DestSet::empty(self.topo.num_nodes()))
                .insert(dest);
        }
        let last = groups
            .iter()
            .rposition(|g| g.is_some())
            .expect("routed packet has at least one destination");
        for (d, group) in groups.iter_mut().enumerate().take(last) {
            let Some(group) = group.take() else { continue };
            let branch = packet.branch(group);
            let branch = self.alloc_packet(branch);
            self.enqueue(now, node, d, branch, sched);
        }
        packet.dests = groups[last].take().expect("rposition found a group");
        self.enqueue(now, node, last, packet, sched);
    }

    /// Queues `branch` on `node`'s link in direction index `d` and kicks
    /// the link if it is idle.
    fn enqueue(
        &mut self,
        now: Cycle,
        node: NodeId,
        d: usize,
        branch: Box<Packet<M>>,
        sched: &mut impl FnMut(Cycle, NocEvent<M>),
    ) {
        let link = node.index() * 4 + d;
        self.links[link].queue.push(now, branch.priority, branch);
        if !self.links[link].busy {
            self.try_start(now, link, sched);
        }
    }

    /// If `link` is idle and has a serviceable packet, begins transmitting
    /// it: charges traffic, occupies the link for the serialization delay,
    /// and schedules the arrival at the neighboring router.
    fn try_start(&mut self, now: Cycle, link: usize, sched: &mut impl FnMut(Cycle, NocEvent<M>)) {
        debug_assert!(!self.links[link].busy);
        let stale = self.config.stale_drop_cycles;
        let stats = &mut self.stats;
        let Some(packet) = self.links[link]
            .queue
            .pop(now, stale, |dropped: Box<Packet<M>>| {
                stats.record_drop(dropped.size)
            })
        else {
            return;
        };
        self.stats.record(packet.class, packet.size);
        let serialize = self.serialization_cycles(packet.size);
        let neighbor = self.link_neighbor[link];
        sched(
            now + serialize + self.config.hop_latency,
            NocEvent(Event::Arrive {
                node: neighbor,
                packet,
            }),
        );
        // With unbounded bandwidth the link never saturates; skip the
        // busy/free bookkeeping entirely so queues stay empty.
        if !self.config.bandwidth.is_unbounded() {
            self.links[link].busy = true;
            self.links[link].busy_cycles += serialize;
            sched(now + serialize.max(1), NocEvent(Event::LinkFree { link }));
        } else if !self.links[link].queue.is_empty() {
            self.try_start(now, link, sched);
        }
    }

    /// Total cycles all links spent transmitting; a utilization diagnostic.
    pub fn total_busy_cycles(&self) -> u64 {
        self.links.iter().map(|l| l.busy_cycles).sum()
    }

    /// Number of packets currently queued across all links.
    pub fn queued_packets(&self) -> usize {
        self.links.iter().map(|l| l.queue.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_kernel::EventQueue;

    #[derive(Clone, Debug, PartialEq)]
    struct TestMsg {
        id: u32,
        size: u64,
        class: TrafficClass,
    }

    impl NocPayload for TestMsg {
        fn size_bytes(&self) -> u64 {
            self.size
        }
        fn traffic_class(&self) -> TrafficClass {
            self.class
        }
    }

    fn control(id: u32) -> TestMsg {
        TestMsg {
            id,
            size: 8,
            class: TrafficClass::IndirectRequest,
        }
    }

    fn data(id: u32) -> TestMsg {
        TestMsg {
            id,
            size: 72,
            class: TrafficClass::Data,
        }
    }

    /// Drives a torus to completion through a kernel event queue, returning
    /// `(arrival_cycle, node, msg)` tuples in delivery order.
    fn run(
        net: &mut Torus<TestMsg>,
        sends: Vec<(u64, NodeId, DestSet, Priority, TestMsg)>,
    ) -> Vec<(u64, NodeId, TestMsg)> {
        let mut q: EventQueue<NocEvent<TestMsg>> = EventQueue::new();
        let mut deliveries = Vec::new();
        for (at, src, dests, prio, msg) in sends {
            net.send(Cycle::new(at), src, dests, prio, msg, &mut |c, e| {
                q.push(c, e)
            });
        }
        while let Some((now, ev)) = q.pop() {
            let mut sched_buf = Vec::new();
            net.handle(now, ev, &mut |c, e| sched_buf.push((c, e)), &mut |n, m| {
                deliveries.push((now.as_u64(), n, m))
            });
            for (c, e) in sched_buf {
                q.push(c, e);
            }
        }
        deliveries
    }

    #[test]
    fn unicast_latency_is_hops_times_latency_plus_serialization() {
        let cfg = TorusConfig::new(16)
            .with_hop_latency(5)
            .with_local_latency(1)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(8.0));
        let mut net = Torus::new(cfg);
        // 4x4 torus: node 0 -> node 2 is 2 hops in x.
        let out = run(
            &mut net,
            vec![(
                0,
                NodeId::new(0),
                DestSet::single(16, NodeId::new(2)),
                Priority::Normal,
                control(1),
            )],
        );
        assert_eq!(out.len(), 1);
        // local injection (1) + 2 hops * (serialize 1 + latency 5) = 13
        assert_eq!(out[0].0, 13);
        assert_eq!(out[0].1, NodeId::new(2));
    }

    #[test]
    fn self_send_is_local() {
        let mut net = Torus::new(TorusConfig::new(4).with_local_latency(3));
        let out = run(
            &mut net,
            vec![(
                10,
                NodeId::new(1),
                DestSet::single(4, NodeId::new(1)),
                Priority::Normal,
                control(7),
            )],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 13);
        assert_eq!(
            net.stats().total_bytes(),
            0,
            "no link traffic for self-send"
        );
    }

    #[test]
    fn multicast_reaches_every_destination_once() {
        let mut net = Torus::new(TorusConfig::new(16));
        let dests = DestSet::all_except(16, NodeId::new(0));
        let out = run(
            &mut net,
            vec![(0, NodeId::new(0), dests, Priority::Normal, control(3))],
        );
        let mut nodes: Vec<u16> = out.iter().map(|(_, n, _)| n.raw()).collect();
        nodes.sort();
        assert_eq!(nodes, (1..16).collect::<Vec<u16>>());
    }

    #[test]
    fn multicast_fanout_charges_tree_links_not_destinations() {
        // On a 4x4 torus, a broadcast from node 0 reaches 15 nodes.
        // Fan-out multicast uses a spanning-tree-like set of links; the
        // traversal count must be well below a 15-unicast lower bound.
        let mut net = Torus::new(TorusConfig::new(16));
        let dests = DestSet::all_except(16, NodeId::new(0));
        run(
            &mut net,
            vec![(0, NodeId::new(0), dests, Priority::Normal, control(3))],
        );
        let traversals = net.stats().traversals(TrafficClass::IndirectRequest);
        // Dimension-order tree on 4x4: every node is reached over exactly
        // one incoming link, so the tree has exactly 15 links... but
        // unicasts would cost sum of hop distances = 1+1+2+... > 15.
        let unicast_cost: u64 = (1..16)
            .map(|i| net.topology().hop_distance(NodeId::new(0), NodeId::new(i)) as u64)
            .sum();
        assert!(traversals < unicast_cost);
        assert_eq!(traversals, 15, "one incoming link per covered node");
    }

    #[test]
    fn contention_serializes_packets() {
        // Two large packets from node 0 to node 1 share the same link; with
        // 1 B/cycle links the second must wait out the first's 72-cycle
        // serialization.
        let cfg = TorusConfig::new(4)
            .with_hop_latency(5)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(1.0));
        let mut net = Torus::new(cfg);
        let out = run(
            &mut net,
            vec![
                (
                    0,
                    NodeId::new(0),
                    DestSet::single(4, NodeId::new(1)),
                    Priority::Normal,
                    data(1),
                ),
                (
                    0,
                    NodeId::new(0),
                    DestSet::single(4, NodeId::new(1)),
                    Priority::Normal,
                    data(2),
                ),
            ],
        );
        assert_eq!(out.len(), 2);
        // First: inject 1 + serialize 72 + hop 5 = 78.
        assert_eq!(out[0].0, 78);
        assert_eq!(out[0].2.id, 1);
        // Second starts when the link frees at 73: 73 + 72 + 5 = 150.
        assert_eq!(out[1].0, 150);
    }

    #[test]
    fn unbounded_bandwidth_never_queues() {
        let cfg = TorusConfig::new(4)
            .with_hop_latency(5)
            .with_bandwidth(LinkBandwidth::Unbounded);
        let mut net = Torus::new(cfg);
        let sends = (0..10)
            .map(|i| {
                (
                    0u64,
                    NodeId::new(0),
                    DestSet::single(4, NodeId::new(1)),
                    Priority::Normal,
                    data(i),
                )
            })
            .collect();
        let out = run(&mut net, sends);
        assert_eq!(out.len(), 10);
        // All arrive at inject 1 + hop 5 = 6.
        assert!(out.iter().all(|(t, _, _)| *t == 6));
    }

    #[test]
    fn best_effort_yields_to_normal_and_gets_dropped_when_stale() {
        // Saturate the 0->1 link with normal data, then inject a
        // best-effort hint: it must be dropped once stale.
        let cfg = TorusConfig::new(4)
            .with_hop_latency(5)
            .with_bandwidth(LinkBandwidth::BytesPerCycle(1.0))
            .with_stale_drop_cycles(100);
        let mut net = Torus::new(cfg);
        let mut sends = vec![];
        for i in 0..4 {
            sends.push((
                0u64,
                NodeId::new(0),
                DestSet::single(4, NodeId::new(1)),
                Priority::Normal,
                data(i),
            ));
        }
        sends.push((
            0,
            NodeId::new(0),
            DestSet::single(4, NodeId::new(1)),
            Priority::BestEffort,
            control(99),
        ));
        let out = run(&mut net, sends);
        // The best-effort hint never arrives: by the time the link frees
        // (4 * 72 = 288 cycles), it has been queued > 100 cycles.
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|(_, _, m)| m.id != 99));
        assert_eq!(net.stats().dropped_packets(), 1);
        assert_eq!(net.stats().dropped_bytes(), 8);
    }

    #[test]
    fn best_effort_delivered_when_bandwidth_is_plentiful() {
        let cfg = TorusConfig::new(4).with_bandwidth(LinkBandwidth::BytesPerCycle(16.0));
        let mut net = Torus::new(cfg);
        let out = run(
            &mut net,
            vec![(
                0,
                NodeId::new(0),
                DestSet::single(4, NodeId::new(1)),
                Priority::BestEffort,
                control(1),
            )],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(net.stats().dropped_packets(), 0);
    }

    #[test]
    fn traffic_charged_per_traversal() {
        let cfg = TorusConfig::new(16).with_bandwidth(LinkBandwidth::BytesPerCycle(16.0));
        let mut net = Torus::new(cfg);
        // 0 -> 2 on 4x4 is two hops: 2 traversals * 72 bytes.
        run(
            &mut net,
            vec![(
                0,
                NodeId::new(0),
                DestSet::single(16, NodeId::new(2)),
                Priority::Normal,
                data(1),
            )],
        );
        assert_eq!(net.stats().bytes(TrafficClass::Data), 144);
        assert_eq!(net.stats().traversals(TrafficClass::Data), 2);
    }

    #[test]
    #[should_panic(expected = "no destinations")]
    fn empty_destination_set_panics() {
        let mut net = Torus::new(TorusConfig::new(4));
        net.send(
            Cycle::ZERO,
            NodeId::new(0),
            DestSet::empty(4),
            Priority::Normal,
            control(0),
            &mut |_, _| {},
        );
    }

    #[test]
    fn default_hop_latency_calibrated_to_15_cycle_traversals() {
        let cfg = TorusConfig::new(64);
        let avg = Topology::new(64).average_hop_distance();
        let total = cfg.hop_latency() as f64 * avg;
        assert!(
            (total - 15.0).abs() <= 5.0,
            "average traversal {total:.1} should be near 15 cycles"
        );
    }
}
