//! Node identifiers.

use std::fmt;

/// Identifies one node (core + private cache + home-directory slice +
/// router) in the system.
///
/// # Examples
///
/// ```
/// use patchsim_noc::NodeId;
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "P3");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u16);

impl NodeId {
    /// Creates a node id from a raw index.
    #[inline]
    pub const fn new(index: u16) -> Self {
        NodeId(index)
    }

    /// Returns the raw index as a `usize`, for indexing per-node tables.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index.
    #[inline]
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl From<u16> for NodeId {
    fn from(v: u16) -> Self {
        NodeId(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        assert_eq!(NodeId::from(9u16), NodeId::new(9));
        assert_eq!(NodeId::new(9).raw(), 9);
        assert_eq!(NodeId::new(9).index(), 9usize);
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(NodeId::new(1) < NodeId::new(2));
    }
}
