//! Traffic classification and accounting.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Coherence-message categories used by the paper's traffic breakdowns
/// (Figures 5 and 10).
///
/// Every message is tagged with exactly one class; the interconnect charges
/// the message's size against that class once per link traversal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Data responses (carry the cache block).
    Data,
    /// Data-less acknowledgements, including token-carrying acks in PATCH
    /// and invalidation acks in DIRECTORY.
    Ack,
    /// Predictive direct requests (PATCH) or broadcast transient requests
    /// (TokenB) sent requester → peer caches.
    DirectRequest,
    /// Requests sent requester → home.
    IndirectRequest,
    /// Requests forwarded home → owner/sharers (includes invalidations).
    Forward,
    /// Reissued transient requests and persistent-request traffic (TokenB).
    Reissue,
    /// Activation/deactivation protocol overhead (PATCH, DIRECTORY
    /// unblock messages).
    Activation,
    /// Writebacks and token-return messages (evictions, tenure timeouts).
    Writeback,
}

impl TrafficClass {
    /// All classes, in display order.
    pub const ALL: [TrafficClass; 8] = [
        TrafficClass::Data,
        TrafficClass::Ack,
        TrafficClass::DirectRequest,
        TrafficClass::IndirectRequest,
        TrafficClass::Forward,
        TrafficClass::Reissue,
        TrafficClass::Activation,
        TrafficClass::Writeback,
    ];

    fn as_index(self) -> usize {
        match self {
            TrafficClass::Data => 0,
            TrafficClass::Ack => 1,
            TrafficClass::DirectRequest => 2,
            TrafficClass::IndirectRequest => 3,
            TrafficClass::Forward => 4,
            TrafficClass::Reissue => 5,
            TrafficClass::Activation => 6,
            TrafficClass::Writeback => 7,
        }
    }

    /// Short label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            TrafficClass::Data => "Data",
            TrafficClass::Ack => "Ack",
            TrafficClass::DirectRequest => "Dir.Req",
            TrafficClass::IndirectRequest => "Ind.Req",
            TrafficClass::Forward => "Forward",
            TrafficClass::Reissue => "Reissue",
            TrafficClass::Activation => "Activation",
            TrafficClass::Writeback => "Writeback",
        }
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Link bandwidth configuration.
///
/// The paper sweeps link bandwidth from 0.3 bytes/cycle (Figures 6–7, quoted
/// as 300 bytes per 1000 cycles) through 16 bytes/cycle (the bandwidth-rich
/// default), and also evaluates an idealized unbounded interconnect
/// (Figure 9's lower bars).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LinkBandwidth {
    /// Finite bandwidth in bytes per cycle; packets serialize for
    /// `ceil(size / bandwidth)` cycles and contend for the link.
    BytesPerCycle(f64),
    /// Infinite bandwidth: zero serialization delay, no contention. Only
    /// hop latency applies.
    Unbounded,
}

impl LinkBandwidth {
    /// Serialization delay in cycles for a packet of `bytes` bytes.
    pub fn serialization_cycles(self, bytes: u64) -> u64 {
        match self {
            LinkBandwidth::BytesPerCycle(bw) => {
                assert!(bw > 0.0, "link bandwidth must be positive");
                (bytes as f64 / bw).ceil() as u64
            }
            LinkBandwidth::Unbounded => 0,
        }
    }

    /// Whether this is the idealized unbounded configuration.
    pub fn is_unbounded(self) -> bool {
        matches!(self, LinkBandwidth::Unbounded)
    }
}

/// Per-class traffic totals, in bytes × link-traversals.
///
/// This is the unit of the paper's "bytes / miss" traffic figures: a 72-byte
/// data message that crosses four links contributes 288 bytes.
///
/// # Examples
///
/// ```
/// use patchsim_noc::{TrafficClass, TrafficStats};
/// let mut t = TrafficStats::new();
/// t.record(TrafficClass::Data, 72);
/// t.record(TrafficClass::Data, 72);
/// assert_eq!(t.bytes(TrafficClass::Data), 144);
/// assert_eq!(t.total_bytes(), 144);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TrafficStats {
    bytes: [u64; 8],
    traversals: [u64; 8],
    /// Number of best-effort packets dropped for staleness.
    dropped: u64,
    /// Bytes of best-effort traffic dropped (counted at drop time; dropped
    /// packets' earlier traversals remain charged).
    dropped_bytes: u64,
}

impl TrafficStats {
    /// Creates zeroed traffic statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges one link traversal of `bytes` bytes against `class`.
    #[inline]
    pub fn record(&mut self, class: TrafficClass, bytes: u64) {
        self.bytes[class.as_index()] += bytes;
        self.traversals[class.as_index()] += 1;
    }

    /// Records a best-effort packet dropped for staleness.
    pub fn record_drop(&mut self, bytes: u64) {
        self.dropped += 1;
        self.dropped_bytes += bytes;
    }

    /// Total bytes charged against `class`.
    pub fn bytes(&self, class: TrafficClass) -> u64 {
        self.bytes[class.as_index()]
    }

    /// Total link traversals charged against `class`.
    pub fn traversals(&self, class: TrafficClass) -> u64 {
        self.traversals[class.as_index()]
    }

    /// Total bytes across all classes.
    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Number of best-effort packets dropped for staleness.
    pub fn dropped_packets(&self) -> u64 {
        self.dropped
    }

    /// Bytes belonging to dropped best-effort packets.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }

    /// Reconstructs traffic statistics from per-class totals — the
    /// inverse of reading them back with [`TrafficStats::bytes`],
    /// [`TrafficStats::traversals`], and the drop getters, used by the
    /// on-disk result store to round-trip results. Both arrays are
    /// indexed in [`TrafficClass::ALL`] order.
    pub fn from_parts(
        bytes: [u64; 8],
        traversals: [u64; 8],
        dropped_packets: u64,
        dropped_bytes: u64,
    ) -> Self {
        TrafficStats {
            bytes,
            traversals,
            dropped: dropped_packets,
            dropped_bytes,
        }
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &TrafficStats) {
        for i in 0..8 {
            self.bytes[i] += other.bytes[i];
            self.traversals[i] += other.traversals[i];
        }
        self.dropped += other.dropped;
        self.dropped_bytes += other.dropped_bytes;
    }
}

impl Index<TrafficClass> for TrafficStats {
    type Output = u64;
    fn index(&self, class: TrafficClass) -> &u64 {
        &self.bytes[class.as_index()]
    }
}

impl IndexMut<TrafficClass> for TrafficStats {
    fn index_mut(&mut self, class: TrafficClass) -> &mut u64 {
        &mut self.bytes[class.as_index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_have_unique_indices() {
        let mut seen = [false; 8];
        for c in TrafficClass::ALL {
            assert!(!seen[c.as_index()], "duplicate index for {c}");
            seen[c.as_index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn record_and_totals() {
        let mut t = TrafficStats::new();
        t.record(TrafficClass::Ack, 8);
        t.record(TrafficClass::Ack, 8);
        t.record(TrafficClass::Data, 72);
        assert_eq!(t.bytes(TrafficClass::Ack), 16);
        assert_eq!(t.traversals(TrafficClass::Ack), 2);
        assert_eq!(t.total_bytes(), 88);
        assert_eq!(t[TrafficClass::Data], 72);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TrafficStats::new();
        a.record(TrafficClass::Forward, 8);
        a.record_drop(8);
        let mut b = TrafficStats::new();
        b.record(TrafficClass::Forward, 8);
        b.record_drop(16);
        a.merge(&b);
        assert_eq!(a.bytes(TrafficClass::Forward), 16);
        assert_eq!(a.dropped_packets(), 2);
        assert_eq!(a.dropped_bytes(), 24);
    }

    #[test]
    fn from_parts_round_trips() {
        let mut t = TrafficStats::new();
        t.record(TrafficClass::Data, 72);
        t.record(TrafficClass::Reissue, 8);
        t.record_drop(16);
        let mut bytes = [0u64; 8];
        let mut traversals = [0u64; 8];
        for (i, class) in TrafficClass::ALL.into_iter().enumerate() {
            bytes[i] = t.bytes(class);
            traversals[i] = t.traversals(class);
        }
        let rebuilt =
            TrafficStats::from_parts(bytes, traversals, t.dropped_packets(), t.dropped_bytes());
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn serialization_cycles() {
        let bw = LinkBandwidth::BytesPerCycle(16.0);
        assert_eq!(bw.serialization_cycles(8), 1);
        assert_eq!(bw.serialization_cycles(16), 1);
        assert_eq!(bw.serialization_cycles(17), 2);
        assert_eq!(bw.serialization_cycles(72), 5);
        // Fractional bandwidth, as in the Figure 6-7 sweeps.
        let slow = LinkBandwidth::BytesPerCycle(0.3);
        assert_eq!(slow.serialization_cycles(72), 240);
        assert_eq!(LinkBandwidth::Unbounded.serialization_cycles(1 << 20), 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_panics() {
        LinkBandwidth::BytesPerCycle(0.0).serialization_cycles(8);
    }

    #[test]
    fn labels_are_nonempty_and_unique() {
        let labels: Vec<_> = TrafficClass::ALL.iter().map(|c| c.label()).collect();
        for l in &labels {
            assert!(!l.is_empty());
        }
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
