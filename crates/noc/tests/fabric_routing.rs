//! Fabric-subsystem contract tests.
//!
//! 1. **Golden equivalence**: the generic BFS routing-table builder,
//!    instantiated on the torus adjacency, must reproduce the legacy
//!    dimension-order next-hop table *exactly* — every `(src, dst)` pair,
//!    several shapes (square, rectangular, odd widths with wrap ties, and
//!    the paper's 512-node sweep size). This pins the fabric refactor
//!    against the PR-3 perf-hash goldens: identical next hops mean
//!    identical event sequences.
//! 2. **Multicast-tree properties**: on every shipped fabric, the fan-out
//!    expansion of a random `DestSet` delivers to exactly the destination
//!    set (no duplicates, none missing) over edges that are real fabric
//!    links — for inline (≤ 64 node) and spill (> 64 node) set
//!    representations, seeded with `SimRng`.

use patchsim_kernel::{Cycle, EventQueue, SimRng};
use patchsim_noc::{
    DestSet, Fabric, FabricConfig, FabricKind, FabricSpec, NocEvent, NocPayload, NodeId, Priority,
    RouteTable, Topology, TrafficClass,
};

/// Torus shapes exercised by the golden test: tiny, square, rectangular,
/// odd sizes with exact half-way wrap ties, and the paper's largest
/// scalability point.
const GOLDEN_SHAPES: [u16; 8] = [1, 2, 4, 6, 15, 16, 64, 512];

#[test]
fn bfs_builder_reproduces_dimension_order_routing_on_the_torus() {
    for n in GOLDEN_SHAPES {
        let topo = Topology::new(n);
        let legacy = RouteTable::new(topo);
        let spec = FabricSpec::build(&FabricConfig::new(FabricKind::Torus, n));
        for from in 0..n {
            for to in 0..n {
                let (from, to) = (NodeId::new(from), NodeId::new(to));
                // The torus adjacency lists links in `Direction::ALL`
                // order, so the generic out-link slot *is* the legacy
                // direction index.
                assert_eq!(
                    spec.next_slot(from, to),
                    legacy.next_hop(from, to).map(|d| d.index()),
                    "{n}-node torus {from}->{to}: BFS builder diverged from dimension-order"
                );
                assert_eq!(
                    spec.next_slot(from, to),
                    topo.next_hop(from, to).map(|d| d.index()),
                    "{n}-node torus {from}->{to}: BFS builder diverged from on-the-fly routing"
                );
            }
        }
    }
}

#[test]
fn fabric_hop_distances_match_torus_geometry() {
    for n in [4u16, 6, 16, 64] {
        let topo = Topology::new(n);
        let spec = FabricSpec::build(&FabricConfig::new(FabricKind::Torus, n));
        for a in 0..n {
            for b in 0..n {
                let (a, b) = (NodeId::new(a), NodeId::new(b));
                assert_eq!(spec.hop_distance(a, b), topo.hop_distance(a, b));
            }
        }
        assert!((spec.average_hop_distance() - topo.average_hop_distance()).abs() < 1e-12);
    }
}

// ---------------------------------------------------------------------------
// Multicast-tree property tests.
// ---------------------------------------------------------------------------

/// Draws a non-empty destination set over `n` nodes: each node joins with
/// probability ~1/3, plus one guaranteed member.
fn random_dests(rng: &mut SimRng, n: u16) -> DestSet {
    let mut dests = DestSet::empty(n);
    for node in 0..n {
        if rng.below(3) == 0 {
            dests.insert(NodeId::new(node));
        }
    }
    dests.insert(NodeId::new(rng.below(n as u64) as u16));
    dests
}

/// System sizes covering both `DestSet` representations: 48 stays on the
/// inline `u64` word, 80 spills to the word vector. Both factor into
/// grids and clusters, so every fabric kind builds.
const PROPERTY_SIZES: [u16; 2] = [48, 80];

#[test]
fn multicast_tree_properties_hold_on_every_fabric() {
    let mut rng = SimRng::from_seed(0xFAB);
    for kind in FabricKind::ALL {
        for n in PROPERTY_SIZES {
            let spec = FabricSpec::build(&FabricConfig::new(kind, n));
            for _ in 0..24 {
                let src = NodeId::new(rng.below(n as u64) as u16);
                let dests = random_dests(&mut rng, n);
                let tree = spec.multicast_tree(src, &dests);

                // Union of deliveries equals the destination set, with no
                // duplicate deliveries.
                let mut delivered: Vec<u16> = tree.deliveries.iter().map(|d| d.raw()).collect();
                delivered.sort_unstable();
                let want: Vec<u16> = dests.iter().map(|d| d.raw()).collect();
                assert_eq!(
                    delivered, want,
                    "{kind}/{n}: deliveries diverge from the destination set"
                );

                // Every tree edge is a real fabric link.
                for &(a, b) in &tree.edges {
                    assert!(
                        spec.is_link(a, b),
                        "{kind}/{n}: tree edge {a}->{b} is not a fabric link"
                    );
                }

                // Fan-out efficiency sanity: the tree never uses more
                // traversals than per-destination unicasts would.
                let unicast_cost: u32 = dests.iter().map(|d| spec.hop_distance(src, d)).sum();
                assert!(
                    tree.edges.len() as u32 <= unicast_cost.max(1),
                    "{kind}/{n}: tree larger than unicast fan-out"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Engine-level delivery checks: the event-driven engine agrees with the
// static tree expansion on every fabric.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
struct Ping;

impl NocPayload for Ping {
    fn size_bytes(&self) -> u64 {
        8
    }
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Forward
    }
}

/// Runs one multicast through the event-driven engine, returning
/// `(cycle, node)` deliveries in pop order.
fn drive(net: &mut Fabric<Ping>, src: NodeId, dests: DestSet) -> Vec<(u64, u16)> {
    let mut q: EventQueue<NocEvent<Ping>> = EventQueue::new();
    net.send(
        Cycle::ZERO,
        src,
        dests,
        Priority::Normal,
        Ping,
        &mut |c, e| q.push(c, e),
    );
    let mut deliveries = Vec::new();
    while let Some((now, ev)) = q.pop() {
        let mut buf = Vec::new();
        net.handle(now, ev, &mut |c, e| buf.push((c, e)), &mut |node, _| {
            deliveries.push((now.as_u64(), node.raw()))
        });
        for (c, e) in buf {
            q.push(c, e);
        }
    }
    deliveries
}

#[test]
fn engine_delivers_each_destination_exactly_once_on_every_fabric() {
    let mut rng = SimRng::from_seed(0x5EED);
    for kind in FabricKind::ALL {
        for n in PROPERTY_SIZES {
            let mut net: Fabric<Ping> = Fabric::new(FabricConfig::new(kind, n));
            for _ in 0..8 {
                let src = NodeId::new(rng.below(n as u64) as u16);
                let dests = random_dests(&mut rng, n);
                let out = drive(&mut net, src, dests.clone());
                let mut nodes: Vec<u16> = out.iter().map(|&(_, node)| node).collect();
                nodes.sort_unstable();
                let want: Vec<u16> = dests.iter().map(|d| d.raw()).collect();
                assert_eq!(nodes, want, "{kind}/{n}: engine deliveries diverge");
                // Traffic accounting matches the static tree expansion:
                // one traversal per tree edge.
                let tree = net.spec().multicast_tree(src, &dests);
                let traversals = net.stats().traversals(TrafficClass::Forward);
                net.reset_stats();
                assert_eq!(
                    traversals as usize,
                    tree.edges.len(),
                    "{kind}/{n}: engine traversals diverge from the multicast tree"
                );
            }
        }
    }
}

#[test]
fn engine_multicast_is_deterministic() {
    for kind in FabricKind::ALL {
        let n = 48;
        let dests = DestSet::all_except(n, NodeId::new(7));
        let mut a: Fabric<Ping> = Fabric::new(FabricConfig::new(kind, n));
        let mut b: Fabric<Ping> = Fabric::new(FabricConfig::new(kind, n));
        assert_eq!(
            drive(&mut a, NodeId::new(7), dests.clone()),
            drive(&mut b, NodeId::new(7), dests),
            "{kind}: identical multicasts must replay identically"
        );
    }
}
