//! Golden event-order test for the timer-wheel [`EventQueue`].
//!
//! Whole-simulation reproducibility rests on the queue's (time, push-seq)
//! delivery order. This test drives a small scripted pseudo-simulation —
//! events that spawn follow-up events at NoC-like schedule distances —
//! through both the production wheel and a straightforward reference
//! binary heap, hashes the full `(cycle, event-discriminant)` pop
//! sequence of each, and requires them to match exactly. The hash is also
//! pinned to a constant so an ordering change cannot slip through as a
//! "both implementations changed together" accident.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::hash::Hasher;

use patchsim_kernel::collections::FxHasher;
use patchsim_kernel::{Cycle, EventQueue, SimRng};

/// A miniature simulation vocabulary: shaped like the real system's mix
/// (per-hop arrivals, link-free bookkeeping, protocol timers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Ev {
    /// A packet hop; respawns until its ttl runs out.
    Hop { ttl: u8 },
    /// Link bookkeeping; spawns nothing.
    Free,
    /// A far-future timer; spawns one near event.
    Timer,
}

impl Ev {
    fn discriminant(self) -> u64 {
        match self {
            Ev::Hop { .. } => 0,
            Ev::Free => 1,
            Ev::Timer => 2,
        }
    }
}

/// The minimal queue interface the script needs, so the identical script
/// drives both implementations.
trait Queue {
    fn push(&mut self, at: Cycle, ev: Ev);
    fn pop(&mut self) -> Option<(Cycle, Ev)>;
}

impl Queue for EventQueue<Ev> {
    fn push(&mut self, at: Cycle, ev: Ev) {
        EventQueue::push(self, at, ev);
    }
    fn pop(&mut self) -> Option<(Cycle, Ev)> {
        EventQueue::pop(self)
    }
}

/// Reference implementation: an explicit (time, seq)-ordered binary heap,
/// the behaviourally-obvious specification the wheel must reproduce.
struct RefEntry {
    at: Cycle,
    seq: u64,
    ev: Ev,
}

impl PartialEq for RefEntry {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for RefEntry {}
impl PartialOrd for RefEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for RefEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

#[derive(Default)]
struct ReferenceHeap {
    heap: BinaryHeap<RefEntry>,
    next_seq: u64,
}

impl Queue for ReferenceHeap {
    fn push(&mut self, at: Cycle, ev: Ev) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(RefEntry { at, seq, ev });
    }
    fn pop(&mut self) -> Option<(Cycle, Ev)> {
        self.heap.pop().map(|e| (e.at, e.ev))
    }
}

/// Runs the scripted pseudo-simulation to completion and returns
/// `(pop_count, fx_hash_of_pop_sequence)`. Deterministic: both the seed
/// and every schedule decision are pure functions of popped state.
fn run_script(queue: &mut impl Queue) -> (u64, u64) {
    let mut rng = SimRng::from_seed(0x0E5C_E11A);
    // Initial burst: a spread of hops, frees, and far timers.
    for i in 0..64u64 {
        queue.push(Cycle::new(rng.below(40)), Ev::Hop { ttl: 6 });
        if i % 3 == 0 {
            queue.push(Cycle::new(rng.below(40) + 1), Ev::Free);
        }
        if i % 7 == 0 {
            // Beyond the wheel horizon: exercises the overflow heap.
            queue.push(Cycle::new(2_000 + rng.below(5_000)), Ev::Timer);
        }
    }
    let mut hasher = FxHasher::default();
    let mut pops = 0u64;
    while let Some((now, ev)) = queue.pop() {
        pops += 1;
        hasher.write_u64(now.as_u64());
        hasher.write_u64(ev.discriminant());
        match ev {
            Ev::Hop { ttl } if ttl > 0 => {
                // A hop spawns its next hop (near) and link bookkeeping,
                // like Arrive + LinkFree; occasionally a same-cycle event,
                // exercising the FIFO tie-break.
                let hop_latency = 1 + rng.below(12);
                queue.push(now + hop_latency, Ev::Hop { ttl: ttl - 1 });
                queue.push(now + rng.below(3), Ev::Free);
            }
            Ev::Hop { .. } | Ev::Free => {}
            Ev::Timer => {
                queue.push(now + rng.below(8), Ev::Hop { ttl: 2 });
            }
        }
    }
    (pops, hasher.finish())
}

/// The pinned golden hash of the pop sequence. If this changes, the
/// queue's delivery order changed — which silently breaks bit-exact
/// reproducibility of every recorded simulation result. Do not update
/// this constant without understanding why the order moved.
const GOLDEN_POPS: u64 = 914;
const GOLDEN_HASH: u64 = 0x7add_d6a4_3648_5c3b;

#[test]
fn wheel_reproduces_reference_heap_pop_sequence() {
    let (wheel_pops, wheel_hash) = run_script(&mut EventQueue::new());
    let (ref_pops, ref_hash) = run_script(&mut ReferenceHeap::default());
    assert_eq!(wheel_pops, ref_pops, "pop counts diverged");
    assert_eq!(
        wheel_hash, ref_hash,
        "wheel pop order diverged from the (time, seq) reference heap"
    );
}

#[test]
fn pop_sequence_matches_pinned_golden() {
    let (pops, hash) = run_script(&mut EventQueue::new());
    assert_eq!(pops, GOLDEN_POPS, "event count changed");
    assert_eq!(
        hash, GOLDEN_HASH,
        "golden (cycle, discriminant) pop-sequence hash changed: \
         delivery order is no longer what recorded results were built on \
         (got {hash:#018x})"
    );
}

#[test]
fn with_capacity_queue_produces_identical_sequence() {
    let (pops, hash) = run_script(&mut EventQueue::with_capacity(10_000));
    assert_eq!((pops, hash), (GOLDEN_POPS, GOLDEN_HASH));
}
