//! The registry of named RNG stream labels.
//!
//! Every component that consumes randomness forks its own stream from the
//! run seed via [`stream_seed`](crate::stream_seed) (or
//! [`SimRng::fork`](crate::SimRng::fork)) under a label listed here, so
//! that adding a new consumer never perturbs the draws seen by existing
//! ones. Labels are the component's four-letter ASCII tag packed into a
//! `u64`; keeping them in one table makes accidental collisions visible
//! at a glance.

/// Workload generators (`"work"`). The per-run root of every core's
/// access stream; each core forks a per-node child from it.
pub const WORKLOAD: u64 = 0x77_6f_72_6b;

/// The interconnect fault schedule (`"faul"`). Dedicated so that turning
/// faults on or off never shifts a workload's random draws.
pub const FAULT: u64 = 0x66_61_75_6c;

/// Service-traffic generators (`"serv"`). Forked *below* each core's
/// [`WORKLOAD`]-derived stream, so the service generators added after the
/// synthetic ones draw from a stream no existing workload ever touched —
/// recorded goldens cannot shift.
pub const SERVICE: u64 = 0x73_65_72_76;

/// Open-loop arrival generators (`"arvl"`). Forked *below* each core's
/// [`WORKLOAD`]-derived stream like [`SERVICE`], so the interarrival and
/// key draws of the open-loop subsystem live on a stream no closed-loop
/// workload ever touched — all existing goldens stay byte-identical.
pub const ARRIVAL: u64 = 0x61_72_76_6c;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_the_ascii_tags() {
        assert_eq!(WORKLOAD.to_be_bytes()[4..], *b"work");
        assert_eq!(FAULT.to_be_bytes()[4..], *b"faul");
        assert_eq!(SERVICE.to_be_bytes()[4..], *b"serv");
        assert_eq!(ARRIVAL.to_be_bytes()[4..], *b"arvl");
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [WORKLOAD, FAULT, SERVICE, ARRIVAL];
        for (i, a) in labels.iter().enumerate() {
            for b in &labels[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
