//! Statistics primitives: counters, running means, histograms, and
//! confidence intervals.
//!
//! The experiment harness reports means with 95% confidence intervals over
//! multiple perturbed runs, mirroring the methodology of the paper (which
//! follows Alameldeen et al., *"Simulating a $2M Commercial Server on a $2K
//! PC"*).

use std::fmt;

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::stats::Counter;
/// let mut c = Counter::new();
/// c.add(3);
/// c.incr();
/// assert_eq!(c.get(), 4);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Adds one to the counter.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Returns the current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// An online mean/variance accumulator (Welford's algorithm).
///
/// Used for, e.g., the dynamic average round-trip latency that PATCH's
/// adaptive tenure timeout is derived from.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::stats::RunningStats;
/// let mut s = RunningStats::new();
/// for x in [2.0, 4.0, 6.0] { s.record(x); }
/// assert_eq!(s.mean(), 4.0);
/// assert_eq!(s.count(), 3);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded samples; zero if no samples have been recorded.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Sample variance (n − 1 denominator); zero with fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// An exponentially weighted moving average, used for adaptive protocol
/// timeouts (PATCH sets its tenure timeout from the *dynamic* average
/// round-trip latency).
///
/// # Examples
///
/// ```
/// use patchsim_kernel::stats::Ewma;
/// let mut e = Ewma::new(0.5, 100.0);
/// e.record(200.0);
/// assert_eq!(e.value(), 150.0);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Ewma {
    alpha: f64,
    value: f64,
}

impl Ewma {
    /// Creates an EWMA with smoothing factor `alpha` in `(0, 1]` and an
    /// initial value.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is not in `(0, 1]`.
    pub fn new(alpha: f64, initial: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha must be in (0, 1]");
        Ewma {
            alpha,
            value: initial,
        }
    }

    /// Folds one observation into the average.
    pub fn record(&mut self, x: f64) {
        self.value += self.alpha * (x - self.value);
    }

    /// Current smoothed value.
    pub fn value(&self) -> f64 {
        self.value
    }
}

/// A power-of-two bucketed histogram for latency-style distributions.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`, except bucket 0 which also
/// holds zero. 32 buckets cover every plausible cycle count.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::stats::Histogram;
/// let mut h = Histogram::new();
/// h.record(5);
/// h.record(6);
/// assert_eq!(h.count(), 2);
/// assert!(h.mean() > 5.0 && h.mean() < 6.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    buckets: [u64; 32],
    count: u64,
    sum: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        let bucket = if value <= 1 {
            0
        } else {
            (63 - value.leading_zeros()).min(31) as usize
        };
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += value;
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample, or zero if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples; zero if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The `p`-th percentile of the recorded samples, for `p` in `[0, 1]`.
    ///
    /// Returns the lower bound of the power-of-two bucket containing the
    /// percentile rank (so the value is exact to within one octave), or
    /// zero for an empty histogram. `percentile(1.0)` is clamped to the
    /// exact recorded maximum.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        if p >= 1.0 {
            return self.max;
        }
        // Rank of the percentile sample, 1-based (ceil(p * n), at least 1).
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                let lower = if i == 0 { 0 } else { 1u64 << i };
                return lower.min(self.max);
            }
        }
        self.max
    }

    /// Reconstructs a histogram from its sparse [`Histogram::buckets`]
    /// representation plus the exact sample `sum` and `max` — the inverse
    /// of serializing those three pieces, used by the on-disk result
    /// store to round-trip latency distributions.
    ///
    /// Returns `None` if any `lower` bound is not a value
    /// [`Histogram::buckets`] can produce (zero or a power of two below
    /// 2³²) or if a bucket repeats, so a decoder can treat a malformed
    /// input as corrupt instead of panicking.
    pub fn from_parts(pairs: &[(u64, u64)], sum: u64, max: u64) -> Option<Self> {
        let mut h = Histogram {
            buckets: [0; 32],
            count: 0,
            sum,
            max,
        };
        for &(lower, count) in pairs {
            let index = match lower {
                0 => 0,
                l if l.is_power_of_two() => l.trailing_zeros() as usize,
                _ => return None,
            };
            // Index 0 is spelled `lower == 0`; `lower == 1` never occurs.
            if lower == 1 || index >= h.buckets.len() || h.buckets[index] != 0 {
                return None;
            }
            h.buckets[index] = count;
            h.count = h.count.checked_add(count)?;
        }
        Some(h)
    }

    /// Returns `(lower_bound, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (if i == 0 { 0 } else { 1u64 << i }, c))
    }
}

/// A sample mean with a symmetric 95% confidence half-width, produced from
/// repeated simulation runs with perturbed seeds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConfidenceInterval {
    /// Sample mean.
    pub mean: f64,
    /// Half-width of the 95% confidence interval (`mean ± half_width`).
    pub half_width: f64,
    /// Number of samples.
    pub n: usize,
}

impl ConfidenceInterval {
    /// Computes the 95% confidence interval of the mean of `samples`.
    ///
    /// Uses Student's t critical values for small n (the common case: the
    /// paper used a handful of perturbed runs per data point).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "confidence interval of no samples");
        let n = samples.len();
        let mut stats = RunningStats::new();
        for &s in samples {
            stats.record(s);
        }
        let half_width = if n < 2 {
            0.0
        } else {
            t_critical_95(n - 1) * stats.std_dev() / (n as f64).sqrt()
        };
        ConfidenceInterval {
            mean: stats.mean(),
            half_width,
            n,
        }
    }

    /// Lower edge of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper edge of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether this interval overlaps `other` — used to decide if two
    /// protocol configurations are statistically distinguishable.
    pub fn overlaps(&self, other: &ConfidenceInterval) -> bool {
        self.low() <= other.high() && other.low() <= self.high()
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4}", self.mean, self.half_width)
    }
}

/// Two-sided 95% Student's t critical value for `df` degrees of freedom.
fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df == 0 {
        f64::INFINITY
    } else if df <= TABLE.len() {
        TABLE[df - 1]
    } else {
        1.96
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.incr();
        c.add(9);
        assert_eq!(c.get(), 10);
        assert_eq!(c.to_string(), "10");
    }

    #[test]
    fn running_stats_mean_and_variance() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.571428571428571).abs() < 1e-9);
        assert_eq!(s.count(), 8);
    }

    #[test]
    fn running_stats_empty_is_zero() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn ewma_converges() {
        let mut e = Ewma::new(0.25, 0.0);
        for _ in 0..200 {
            e.record(100.0);
        }
        assert!((e.value() - 100.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn ewma_rejects_bad_alpha() {
        let _ = Ewma::new(0.0, 1.0);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (2, 2), (1024, 1)]);
        assert_eq!(h.max(), 1024);
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
    }

    #[test]
    fn histogram_merge_sums_everything() {
        let mut a = Histogram::new();
        a.record(3);
        a.record(100);
        let mut b = Histogram::new();
        b.record(3);
        b.record(5000);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.sum(), 3 + 100 + 3 + 5000);
        assert_eq!(a.max(), 5000);
        let buckets: Vec<_> = a.buckets().collect();
        assert_eq!(buckets, vec![(2, 2), (64, 1), (4096, 1)]);
    }

    #[test]
    fn histogram_percentiles_land_in_the_right_bucket() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 8, 16, 32, 64, 128, 1000] {
            h.record(v);
        }
        // 10 samples: p50 is the 5th (value 8, bucket lower bound 8).
        assert_eq!(h.percentile(0.5), 8);
        // p90 is the 9th sample (128).
        assert_eq!(h.percentile(0.9), 128);
        // p100 clamps to the exact max.
        assert_eq!(h.percentile(1.0), 1000);
        // p -> 0 picks the first non-empty bucket.
        assert_eq!(h.percentile(0.0), 0);
    }

    #[test]
    fn histogram_percentile_empty_is_zero() {
        assert_eq!(Histogram::new().percentile(0.99), 0);
        // The whole percentile range is defined on an empty histogram.
        assert_eq!(Histogram::new().percentile(0.0), 0);
        assert_eq!(Histogram::new().percentile(1.0), 0);
        assert_eq!(Histogram::new().max(), 0);
        assert_eq!(Histogram::new().mean(), 0.0);
    }

    #[test]
    fn histogram_single_bucket_percentiles_are_flat() {
        // All samples in one power-of-two bucket: every percentile must
        // return that bucket's lower bound, and p100 the exact max.
        let mut h = Histogram::new();
        for v in [70u64, 64, 100, 127] {
            h.record(v);
        }
        assert_eq!(h.buckets().count(), 1);
        for p in [0.0, 0.25, 0.5, 0.75, 0.99] {
            assert_eq!(h.percentile(p), 64, "p{p} in a single-bucket histogram");
        }
        assert_eq!(h.percentile(1.0), 127);
        // A single sample degenerates the same way.
        let mut one = Histogram::new();
        one.record(5);
        assert_eq!(one.percentile(0.5), 4);
        assert_eq!(one.percentile(1.0), 5);
    }

    #[test]
    fn histogram_merge_with_empty_is_identity_both_ways() {
        let mut a = Histogram::new();
        for v in [3u64, 9, 4096] {
            a.record(v);
        }
        let before: Vec<_> = a.buckets().collect();

        // Non-empty ← empty: nothing changes.
        a.merge(&Histogram::new());
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 3 + 9 + 4096);
        assert_eq!(a.max(), 4096);
        assert_eq!(a.buckets().collect::<Vec<_>>(), before);

        // Empty ← non-empty: adopts the other side wholesale.
        let mut b = Histogram::new();
        b.merge(&a);
        assert_eq!(b.count(), a.count());
        assert_eq!(b.sum(), a.sum());
        assert_eq!(b.max(), a.max());
        assert_eq!(b.buckets().collect::<Vec<_>>(), before);
        assert_eq!(b.percentile(0.5), a.percentile(0.5));

        // Empty ← empty stays empty.
        let mut e = Histogram::new();
        e.merge(&Histogram::new());
        assert_eq!(e.count(), 0);
        assert_eq!(e.percentile(0.5), 0);
    }

    #[test]
    fn histogram_from_parts_round_trips() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 3, 9, 100, 4096, u64::MAX / 2] {
            h.record(v);
        }
        let pairs: Vec<_> = h.buckets().collect();
        let rebuilt = Histogram::from_parts(&pairs, h.sum(), h.max()).unwrap();
        assert_eq!(rebuilt.count(), h.count());
        assert_eq!(rebuilt.sum(), h.sum());
        assert_eq!(rebuilt.max(), h.max());
        assert_eq!(rebuilt.buckets().collect::<Vec<_>>(), pairs);
        for p in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(rebuilt.percentile(p), h.percentile(p));
        }
        // An empty histogram round-trips too.
        let empty = Histogram::from_parts(&[], 0, 0).unwrap();
        assert_eq!(empty.count(), 0);
    }

    #[test]
    fn histogram_from_parts_rejects_malformed_input() {
        // Not a power of two.
        assert!(Histogram::from_parts(&[(3, 1)], 3, 3).is_none());
        // Bucket 0 is spelled with lower bound 0, never 1.
        assert!(Histogram::from_parts(&[(1, 1)], 1, 1).is_none());
        // Duplicate bucket.
        assert!(Histogram::from_parts(&[(4, 1), (4, 2)], 12, 5).is_none());
        // Past the last bucket.
        assert!(Histogram::from_parts(&[(1u64 << 40, 1)], 0, 0).is_none());
        // Counts that overflow the total.
        assert!(Histogram::from_parts(&[(0, u64::MAX), (4, 1)], 0, 4).is_none());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn histogram_percentile_rejects_out_of_range() {
        let _ = Histogram::new().percentile(1.5);
    }

    #[test]
    fn confidence_interval_single_sample() {
        let ci = ConfidenceInterval::from_samples(&[5.0]);
        assert_eq!(ci.mean, 5.0);
        assert_eq!(ci.half_width, 0.0);
    }

    #[test]
    fn confidence_interval_known_value() {
        // n=4, sd=1 => hw = 3.182 * 1/2
        let ci = ConfidenceInterval::from_samples(&[4.0, 5.0, 5.0, 6.0]);
        assert!((ci.mean - 5.0).abs() < 1e-12);
        let expected = 3.182 * (2.0f64 / 3.0).sqrt() / 2.0;
        assert!((ci.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn interval_overlap_detection() {
        let a = ConfidenceInterval {
            mean: 1.0,
            half_width: 0.2,
            n: 5,
        };
        let b = ConfidenceInterval {
            mean: 1.3,
            half_width: 0.2,
            n: 5,
        };
        let c = ConfidenceInterval {
            mean: 2.0,
            half_width: 0.1,
            n: 5,
        };
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn t_table_sane() {
        assert!(t_critical_95(1) > t_critical_95(2));
        assert_eq!(t_critical_95(1000), 1.96);
    }
}
