//! Seedable random-number generation with independent per-component streams.

/// A deterministic random-number generator for simulation use.
///
/// `SimRng` is a self-contained xoshiro256++ generator (Blackman & Vigna)
/// with [`SimRng::fork`], which derives an independent child stream from a
/// parent seed and a stream label. Components (per-node workload
/// generators, the interconnect's jitter model, ...) each fork their own
/// stream so that adding a new consumer of randomness never perturbs the
/// draws seen by existing ones — a requirement for the perturbation-based
/// confidence-interval methodology the paper borrows from Alameldeen et al.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::SimRng;
///
/// let mut a = SimRng::from_seed(1).fork(7);
/// let mut b = SimRng::from_seed(1).fork(7);
/// assert_eq!(a.below(1000), b.below(1000)); // same seed + stream => same draws
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    seed: u64,
    state: [u64; 4],
}

/// SplitMix64 step, used to mix seeds and stream ids into well-distributed
/// 64-bit values before seeding the underlying generator.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the root seed for perturbed replication `replication` of an
/// experiment whose base seed is `base`.
///
/// Replication 0 always returns `base` unchanged, so a single run of a
/// configuration is identical to the first run of a replicated batch.
/// Later replications mix `base` and `replication` through SplitMix64, so
/// adjacent base seeds never share replication streams (naive `base + i`
/// derivation makes seed 1/replication 1 collide with seed 2/replication
/// 0, silently correlating "independent" experiments).
///
/// # Examples
///
/// ```
/// use patchsim_kernel::replicate_seed;
///
/// assert_eq!(replicate_seed(7, 0), 7);
/// // Adjacent base seeds do not share streams.
/// assert_ne!(replicate_seed(1, 1), replicate_seed(2, 0));
/// assert_ne!(replicate_seed(1, 1), 2);
/// ```
pub fn replicate_seed(base: u64, replication: u64) -> u64 {
    if replication == 0 {
        base
    } else {
        stream_seed(base, replication)
    }
}

/// Derives the seed of an independent component stream from a base seed
/// and a stream label — the derivation behind [`SimRng::fork`], exposed
/// so layers that pass plain `u64` seeds (e.g. a fabric configuration)
/// can derive substreams without constructing a generator.
///
/// The result is a pure function of `(base, stream)`: deriving streams in
/// a different order, or adding a new stream label, never perturbs the
/// seeds of existing streams. Distinct labels yield uncorrelated seeds
/// even for adjacent bases.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::{stream_seed, SimRng};
///
/// const FAULTS: u64 = 0x66_61_75_6c; // "faul"
/// let a = stream_seed(42, FAULTS);
/// // Identical to forking a generator with the same label.
/// assert_eq!(SimRng::from_seed(a).seed(), SimRng::from_seed(42).fork(FAULTS).seed());
/// assert_ne!(a, stream_seed(43, FAULTS));
/// ```
pub fn stream_seed(base: u64, stream: u64) -> u64 {
    splitmix64(base ^ splitmix64(stream.wrapping_mul(0xA076_1D64_78BD_642F)))
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn from_seed(seed: u64) -> Self {
        // Expand the seed into four non-zero state words with SplitMix64,
        // the initialisation recommended by the xoshiro authors.
        let mut s = splitmix64(seed);
        let mut state = [0u64; 4];
        for w in &mut state {
            s = splitmix64(s);
            *w = s;
        }
        SimRng { seed, state }
    }

    /// Derives an independent child generator identified by `stream`.
    ///
    /// Forking is a pure function of `(seed, stream)`: it does not consume
    /// state from `self`, so the order in which components fork their
    /// streams does not matter.
    pub fn fork(&self, stream: u64) -> SimRng {
        SimRng::from_seed(stream_seed(self.seed, stream))
    }

    /// Returns the seed this generator was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Returns the next raw 64-bit output (xoshiro256++ step).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut n = [s0, s1, s2, s3];
        n[2] ^= n[0];
        n[3] ^= n[1];
        n[1] ^= n[2];
        n[0] ^= n[3];
        n[2] ^= t;
        n[3] = n[3].rotate_left(45);
        self.state = n;
        result
    }

    /// Returns the next raw 32-bit output (upper half of [`Self::next_u64`]).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is meaningless");
        // Debiased multiply-shift rejection sampling (Lemire's method).
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replicate_seed_zero_is_identity() {
        for base in [0u64, 1, 42, u64::MAX] {
            assert_eq!(replicate_seed(base, 0), base);
        }
    }

    #[test]
    fn replicate_seed_streams_never_collide_across_adjacent_bases() {
        // The old `base + i` derivation made (base, i) and (base + 1, i - 1)
        // identical. Check a grid of nearby bases and replications for any
        // collision at all.
        let mut seen = std::collections::HashSet::new();
        for base in 0..16u64 {
            for rep in 0..16u64 {
                assert!(
                    seen.insert(replicate_seed(base, rep)),
                    "collision at base={base} rep={rep}"
                );
            }
        }
    }

    #[test]
    fn replicate_seed_is_not_additive() {
        assert_ne!(replicate_seed(1, 1), 2);
        assert_ne!(replicate_seed(10, 5), 15);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::from_seed(99);
        let mut b = SimRng::from_seed(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::from_seed(1);
        let mut b = SimRng::from_seed(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams from different seeds should not track");
    }

    #[test]
    fn forked_streams_are_independent_of_fork_order() {
        let root = SimRng::from_seed(5);
        let mut a_then_b = (root.fork(1), root.fork(2));
        let root2 = SimRng::from_seed(5);
        let mut b_then_a = (root2.fork(2), root2.fork(1));
        assert_eq!(a_then_b.0.next_u64(), b_then_a.1.next_u64());
        assert_eq!(a_then_b.1.next_u64(), b_then_a.0.next_u64());
    }

    #[test]
    fn forked_streams_differ_from_each_other() {
        let root = SimRng::from_seed(5);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::from_seed(3);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
        // bound of 1 always yields 0
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn below_covers_range() {
        let mut r = SimRng::from_seed(17);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut r = SimRng::from_seed(23);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::from_seed(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_roughly_calibrated() {
        let mut r = SimRng::from_seed(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits} hits for p=0.3");
    }
}
