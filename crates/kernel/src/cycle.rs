//! The simulation clock type.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, measured in clock cycles since the start of
/// the simulation.
///
/// `Cycle` is a newtype over `u64` so that timestamps cannot be confused
/// with other integer quantities (token counts, byte counts, node ids).
/// Durations are plain `u64`s: `Cycle + u64 -> Cycle` and
/// `Cycle - Cycle -> u64`.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::Cycle;
///
/// let start = Cycle::ZERO;
/// let later = start + 15;
/// assert_eq!(later - start, 15);
/// assert!(later > start);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cycle(u64);

impl Cycle {
    /// The start of simulated time.
    pub const ZERO: Cycle = Cycle(0);

    /// The largest representable timestamp; useful as an "infinitely far in
    /// the future" sentinel for deadlines that are currently disabled.
    pub const MAX: Cycle = Cycle(u64::MAX);

    /// Creates a timestamp `cycles` cycles after the start of simulation.
    #[inline]
    pub const fn new(cycles: u64) -> Self {
        Cycle(cycles)
    }

    /// Returns the raw cycle count.
    #[inline]
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the number of cycles from `earlier` to `self`, or zero if
    /// `earlier` is in the future (saturating).
    ///
    /// # Examples
    ///
    /// ```
    /// use patchsim_kernel::Cycle;
    /// assert_eq!(Cycle::new(10).saturating_since(Cycle::new(4)), 6);
    /// assert_eq!(Cycle::new(4).saturating_since(Cycle::new(10)), 0);
    /// ```
    #[inline]
    pub fn saturating_since(self, earlier: Cycle) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Returns the later of two timestamps.
    #[inline]
    pub fn max(self, other: Cycle) -> Cycle {
        Cycle(self.0.max(other.0))
    }

    /// Returns the earlier of two timestamps.
    #[inline]
    pub fn min(self, other: Cycle) -> Cycle {
        Cycle(self.0.min(other.0))
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {}", self.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign<u64> for Cycle {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<u64> for Cycle {
    type Output = Cycle;
    #[inline]
    fn sub(self, rhs: u64) -> Cycle {
        Cycle(self.0 - rhs)
    }
}

impl SubAssign<u64> for Cycle {
    #[inline]
    fn sub_assign(&mut self, rhs: u64) {
        self.0 -= rhs;
    }
}

impl Sub<Cycle> for Cycle {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Cycle) -> u64 {
        self.0 - rhs.0
    }
}

impl From<u64> for Cycle {
    #[inline]
    fn from(cycles: u64) -> Self {
        Cycle(cycles)
    }
}

impl From<Cycle> for u64 {
    #[inline]
    fn from(c: Cycle) -> Self {
        c.0
    }
}

impl Sum<u64> for Cycle {
    fn sum<I: Iterator<Item = u64>>(iter: I) -> Self {
        Cycle(iter.sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_round_trips() {
        let c = Cycle::new(100);
        assert_eq!((c + 15) - c, 15);
        assert_eq!(c + 0, c);
        assert_eq!(u64::from(c), 100);
        assert_eq!(Cycle::from(100u64), c);
    }

    #[test]
    fn ordering_follows_time() {
        assert!(Cycle::new(1) < Cycle::new(2));
        assert_eq!(Cycle::new(7).max(Cycle::new(3)), Cycle::new(7));
        assert_eq!(Cycle::new(7).min(Cycle::new(3)), Cycle::new(3));
        assert!(Cycle::MAX > Cycle::new(u64::MAX - 1));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        assert_eq!(Cycle::new(3).saturating_since(Cycle::new(9)), 0);
        assert_eq!(Cycle::new(9).saturating_since(Cycle::new(3)), 6);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle::new(42).to_string(), "cycle 42");
    }

    #[test]
    fn add_assign_and_sub_assign() {
        let mut c = Cycle::new(10);
        c += 5;
        assert_eq!(c, Cycle::new(15));
        c -= 3;
        assert_eq!(c, Cycle::new(12));
    }
}
