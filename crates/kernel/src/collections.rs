//! Deterministic fast-hash collections for simulator hot paths.
//!
//! The standard library's `HashMap` defaults to SipHash-1-3 behind a
//! per-instance random seed. That buys HashDoS resistance the simulator
//! does not need (all keys are internally generated block addresses), at a
//! real cost on every protocol-table lookup in the inner event loop. This
//! module provides the classic Fx multiply-xor hasher — the one rustc
//! itself uses for its interned-symbol tables — reimplemented in-tree so
//! the workspace stays free of crates.io dependencies.
//!
//! Two properties matter here:
//!
//! * **Speed**: hashing a `u64` key is one rotate, one xor, and one
//!   multiply — a handful of cycles against SipHash's several dozen.
//! * **Determinism**: the hasher has no random state, so a map's iteration
//!   order is a pure function of its insertion history. Simulation results
//!   must never depend on map iteration order regardless (the determinism
//!   suite runs twice per process, under *different* `RandomState`s, to
//!   enforce exactly that), but a fixed hasher additionally makes memory
//!   layout and therefore performance reproducible run-to-run.
//!
//! # Examples
//!
//! ```
//! use patchsim_kernel::collections::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(42, "block");
//! assert_eq!(m.get(&42), Some(&"block"));
//! ```

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// A `HashMap` keyed with the deterministic [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed with the deterministic [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Creates an [`FxHashMap`] pre-sized for at least `capacity` entries.
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, BuildHasherDefault::default())
}

/// The multiplicative constant of the Fx hash: a 64-bit approximation of
/// 2^64 / φ, which spreads consecutive integers across the hash space.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, deterministic, non-cryptographic hasher (multiply-xor).
///
/// Each word folded into the state costs one rotate, one xor, and one
/// wrapping multiply. Not HashDoS-resistant — only use for keys the
/// simulator generates itself (block addresses, node ids, serials).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(value: &T) -> u64 {
        BuildHasherDefault::<FxHasher>::default().hash_one(value)
    }

    #[test]
    fn deterministic_across_instances() {
        assert_eq!(hash_of(&0xDEAD_BEEFu64), hash_of(&0xDEAD_BEEFu64));
        assert_eq!(hash_of(&"torus"), hash_of(&"torus"));
    }

    /// The exact hash values are pinned: a silent change to the mixing
    /// function would shift every map's layout (and perf profile).
    #[test]
    fn golden_values() {
        let mut h = FxHasher::default();
        h.write_u64(42);
        assert_eq!(h.finish(), 42u64.wrapping_mul(SEED));
        let mut h2 = FxHasher::default();
        h2.write_u64(42);
        h2.write_u64(43);
        assert_eq!(
            h2.finish(),
            (42u64.wrapping_mul(SEED).rotate_left(5) ^ 43).wrapping_mul(SEED)
        );
    }

    #[test]
    fn byte_slices_fold_in_word_chunks() {
        // 8 aligned bytes hash like the u64 they spell.
        let mut a = FxHasher::default();
        a.write(&7u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.add_to_hash(7);
        assert_eq!(a.finish(), b.finish());
        // A trailing partial chunk still changes the state.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(c.finish(), FxHasher::default().finish());
    }

    #[test]
    fn map_roundtrip_and_presize() {
        let mut m = fx_map_with_capacity::<u64, u64>(1000);
        assert!(m.capacity() >= 1000);
        for i in 0..1000u64 {
            m.insert(i, i * 2);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&i), Some(&(i * 2)));
        }
    }

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for i in (0..256u64).rev() {
                m.insert(i.wrapping_mul(0x9E37_79B9_7F4A_7C15), i);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn consecutive_keys_spread() {
        // The whole point of the multiply: adjacent block addresses must
        // not collide into adjacent buckets systematically. Check the low
        // bits (the ones HashMap uses) differ across a run of keys.
        let low_bits: FxHashSet<u64> = (0..64u64).map(|i| hash_of(&i) >> 57).collect();
        assert!(low_bits.len() > 32, "top bits too clustered");
    }
}
