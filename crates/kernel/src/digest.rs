//! A stable, typed content digest over the in-tree Fx hasher.
//!
//! The result store (`patchsim::exp::store`) keys each simulation cell by
//! a digest of its fully-resolved configuration. That digest must be
//! *framed*: hashing the raw concatenation of fields would let two
//! different configurations collide by shifting bytes between adjacent
//! fields (`("ab", "c")` vs `("a", "bc")`). [`Digest`] therefore
//! length-prefixes every variable-length write and widens every scalar to
//! a full word before folding it into an [`FxHasher`], so a digest is a
//! pure function of the typed value sequence — stable across platforms,
//! process runs, and pointer layouts.
//!
//! This is a content fingerprint for cache keying, not a cryptographic
//! hash: collisions are astronomically unlikely for the handful of
//! configurations a sweep generates, but nothing here resists an
//! adversary constructing one.
//!
//! # Examples
//!
//! ```
//! use patchsim_kernel::digest::Digest;
//!
//! let mut a = Digest::new();
//! a.str("oltp").u64(64);
//! let mut b = Digest::new();
//! b.str("oltp").u64(64);
//! assert_eq!(a.finish(), b.finish());
//!
//! let mut c = Digest::new();
//! c.str("oltp6").u64(4); // shifted framing must not collide
//! assert_ne!(a.finish(), c.finish());
//! ```

use std::hash::Hasher;

use crate::collections::FxHasher;

/// An accumulator of typed values producing a stable 64-bit digest.
///
/// Every write method returns `&mut Self` so calls chain; the digest is
/// order-sensitive (writing the same values in a different order yields a
/// different digest).
#[derive(Clone, Debug)]
pub struct Digest {
    hasher: FxHasher,
}

/// Nonzero initialization word folded in by [`Digest::new`]. FxHasher's
/// fold maps a zero word in the zero state back to zero, so an unseeded
/// digest could not see leading zero writes (e.g. a leading empty
/// string's length prefix); starting from a nonzero state removes that
/// fixed point.
const INIT: u64 = 0x9e37_79b9_7f4a_7c15;

impl Digest {
    /// Creates an empty digest.
    pub fn new() -> Self {
        let mut hasher = FxHasher::default();
        hasher.write_u64(INIT);
        Digest { hasher }
    }

    /// Folds in one unsigned word.
    pub fn u64(&mut self, value: u64) -> &mut Self {
        self.hasher.write_u64(value);
        self
    }

    /// Folds in a float by its exact bit pattern (so `-0.0` and `0.0`
    /// digest differently, and NaNs digest by payload).
    pub fn f64(&mut self, value: f64) -> &mut Self {
        self.hasher.write_u64(value.to_bits());
        self
    }

    /// Folds in a boolean.
    pub fn bool(&mut self, value: bool) -> &mut Self {
        self.hasher.write_u64(u64::from(value));
        self
    }

    /// Folds in a string, length-prefixed so adjacent strings cannot
    /// collide by shifting bytes across their boundary.
    pub fn str(&mut self, value: &str) -> &mut Self {
        self.hasher.write_u64(value.len() as u64);
        self.hasher.write(value.as_bytes());
        self
    }

    /// Folds in an optional word, distinguishing `None` from any
    /// `Some(value)` (including `Some(0)`).
    pub fn opt_u64(&mut self, value: Option<u64>) -> &mut Self {
        match value {
            None => self.u64(0),
            Some(v) => self.u64(1).u64(v),
        }
    }

    /// The digest of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.hasher.finish()
    }
}

impl Default for Digest {
    fn default() -> Self {
        Digest::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let digest = |f: &dyn Fn(&mut Digest)| {
            let mut d = Digest::new();
            f(&mut d);
            d.finish()
        };
        let a = digest(&|d| {
            d.str("torus").u64(64).f64(0.3).bool(true);
        });
        let b = digest(&|d| {
            d.str("torus").u64(64).f64(0.3).bool(true);
        });
        assert_eq!(a, b);
    }

    #[test]
    fn order_sensitive() {
        let mut a = Digest::new();
        a.u64(1).u64(2);
        let mut b = Digest::new();
        b.u64(2).u64(1);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn string_framing_prevents_boundary_shifts() {
        let mut a = Digest::new();
        a.str("ab").str("c");
        let mut b = Digest::new();
        b.str("a").str("bc");
        assert_ne!(a.finish(), b.finish());
        // The length prefix also separates "" from the absence of a write.
        let mut c = Digest::new();
        c.str("").str("abc");
        let mut d = Digest::new();
        d.str("abc");
        assert_ne!(c.finish(), d.finish());
    }

    #[test]
    fn option_distinguishes_none_from_zero() {
        let mut a = Digest::new();
        a.opt_u64(None);
        let mut b = Digest::new();
        b.opt_u64(Some(0));
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn float_bits_are_exact() {
        let mut a = Digest::new();
        a.f64(0.0);
        let mut b = Digest::new();
        b.f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    /// The digest of a fixed sequence is pinned to the underlying
    /// FxHasher: a silent change to the framing would invalidate every
    /// persisted store entry without bumping the format version.
    #[test]
    fn golden_value_matches_raw_hasher() {
        let mut d = Digest::new();
        d.u64(7).str("hi");
        let mut h = FxHasher::default();
        h.write_u64(super::INIT);
        h.write_u64(7);
        h.write_u64(2);
        h.write(b"hi");
        assert_eq!(d.finish(), h.finish());
    }

    #[test]
    fn leading_zero_writes_are_visible() {
        // The seeded initial state means a zero word is never a no-op.
        let mut a = Digest::new();
        a.u64(0).u64(5);
        let mut b = Digest::new();
        b.u64(5);
        assert_ne!(a.finish(), b.finish());
    }
}
