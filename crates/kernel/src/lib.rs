//! Discrete-event simulation kernel for the `patchsim` workspace.
//!
//! This crate provides the substrate every other `patchsim` crate builds on:
//!
//! * [`Cycle`] — a strongly-typed simulation timestamp.
//! * [`EventQueue`] — a deterministic time-ordered event queue. Events that
//!   are scheduled for the same cycle are delivered in FIFO insertion order,
//!   which makes whole-system runs bit-reproducible for a given seed.
//! * [`SimRng`] — a small, fast, seedable random-number generator with
//!   support for deriving independent per-component streams.
//! * [`stats`] — counters, histograms, and confidence-interval helpers used
//!   by the experiment harness.
//!
//! # Examples
//!
//! ```
//! use patchsim_kernel::{Cycle, EventQueue};
//!
//! let mut q = EventQueue::new();
//! q.push(Cycle::new(10), "late");
//! q.push(Cycle::new(5), "early");
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!((t, ev), (Cycle::new(5), "early"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collections;
mod cycle;
pub mod digest;
mod event;
mod rng;
pub mod stats;
pub mod streams;

pub use cycle::Cycle;
pub use event::{DrainCurrentCycle, EventQueue};
pub use rng::{replicate_seed, stream_seed, SimRng};
