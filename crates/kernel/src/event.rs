//! Deterministic time-ordered event queue backed by a timer wheel.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

use crate::Cycle;

/// Number of wheel slots. Power of two so the slot of a timestamp is a
/// mask. Sized to cover the overwhelming majority of schedule distances in
/// a NoC simulation — hop latencies, serialization delays, think times,
/// DRAM accesses, and most protocol timeouts are all well under 1024
/// cycles — so the overflow heap sees only rare far timers.
const WHEEL_SLOTS: usize = 1024;
const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;
/// Occupancy-bitmap words (64 slots per word).
const BITMAP_WORDS: usize = WHEEL_SLOTS / 64;

/// An entry in the overflow heap: ordered by time, then by insertion
/// sequence so that same-cycle events pop in FIFO order. `BinaryHeap` is a
/// max-heap, so the comparison is reversed.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the smallest (time, seq) is the "greatest" heap element.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are delivered in non-decreasing timestamp order; events scheduled
/// for the *same* cycle are delivered in the order they were pushed. This
/// FIFO tie-break is what makes whole-simulation runs reproducible: the
/// simulator never depends on an unspecified heap ordering.
///
/// # Implementation
///
/// The queue is a hierarchical timer wheel: a ring of 1024 FIFO buckets
/// covers the near future (`now .. now + 1024` cycles), with
/// an occupancy bitmap for constant-ish-time scans, backed by a spill
/// [`BinaryHeap`] for the rare timer scheduled further out. Since almost
/// every NoC event lands within a few dozen cycles of `now`, pushes and
/// pops are O(1) on the hot path instead of the heap's O(log n) — and
/// same-cycle events sit contiguously in one bucket, so draining a cycle
/// touches no comparison logic at all.
///
/// Overflow entries migrate into the wheel as simulated time advances
/// (whenever `now` moves, at the end of each pop). An overflow entry for
/// cycle `t` always migrates before any *later-pushed* event for `t` can
/// enter the wheel — a direct push for `t` requires `t - now <
/// WHEEL_SLOTS`, and the pop that first advanced `now` past `t -
/// WHEEL_SLOTS` migrated the overflow entry on its way out — so bucket
/// order remains exactly (time, push-sequence) order.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "a");
/// q.push(Cycle::new(5), "b");
/// q.push(Cycle::new(1), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["c", "a", "b"]);
/// ```
pub struct EventQueue<E> {
    /// Near-future buckets; slot `t & SLOT_MASK` holds the events for
    /// cycle `t` while `t - now < WHEEL_SLOTS`. Every resident event is
    /// within that window, so a slot never mixes cycles.
    wheel: Box<[VecDeque<(Cycle, E)>]>,
    /// One bit per wheel slot: set iff the bucket is non-empty.
    occupied: [u64; BITMAP_WORDS],
    /// Events scheduled at or beyond `now + WHEEL_SLOTS`.
    overflow: BinaryHeap<Entry<E>>,
    /// Number of events currently resident in the wheel.
    wheel_len: usize,
    next_seq: u64,
    /// Timestamp of the most recently popped event, used to reject
    /// scheduling into the past.
    now: Cycle,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`Cycle::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            wheel: (0..WHEEL_SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; BITMAP_WORDS],
            overflow: BinaryHeap::new(),
            wheel_len: 0,
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Creates an empty queue pre-sized for roughly `events` concurrently
    /// pending events, so steady-state operation performs no bucket
    /// reallocation.
    pub fn with_capacity(events: usize) -> Self {
        let per_bucket = events.div_ceil(WHEEL_SLOTS).clamp(1, 32);
        EventQueue {
            wheel: (0..WHEEL_SLOTS)
                .map(|_| VecDeque::with_capacity(per_bucket))
                .collect(),
            occupied: [0; BITMAP_WORDS],
            overflow: BinaryHeap::with_capacity(events.min(1024)),
            wheel_len: 0,
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` to be delivered at cycle `at`.
    ///
    /// Scheduling earlier than the most recently popped timestamp is
    /// always a simulator bug; debug builds panic on it.
    pub fn push(&mut self, at: Cycle, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduled event at {at} but simulation time has reached {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        // `at >= now` is an invariant (debug-asserted above); saturating
        // keeps release builds from corrupting the wheel if it is broken.
        if at.as_u64().saturating_sub(self.now.as_u64()) < WHEEL_SLOTS as u64 {
            self.wheel_insert(at, event);
        } else {
            self.overflow.push(Entry { at, seq, event });
        }
    }

    #[inline]
    fn wheel_insert(&mut self, at: Cycle, event: E) {
        let slot = (at.as_u64() & SLOT_MASK) as usize;
        let bucket = &mut self.wheel[slot];
        debug_assert!(
            bucket.back().is_none_or(|(t, _)| *t == at),
            "wheel slot mixes cycles"
        );
        bucket.push_back((at, event));
        self.occupied[slot / 64] |= 1 << (slot % 64);
        self.wheel_len += 1;
    }

    /// Moves every overflow entry that now falls inside the wheel horizon
    /// into its bucket. Entries leave the heap in (time, seq) order, and
    /// any future direct push to the same cycle necessarily happens after
    /// this migration, so bucket FIFO order equals global (time, seq)
    /// order.
    fn migrate_overflow(&mut self) {
        while let Some(head) = self.overflow.peek() {
            if head.at.as_u64().saturating_sub(self.now.as_u64()) >= WHEEL_SLOTS as u64 {
                break;
            }
            let entry = self.overflow.pop().expect("peeked entry exists");
            self.wheel_insert(entry.at, entry.event);
        }
    }

    /// Index of the first occupied wheel slot at or cyclically after
    /// `start`, or `None` if the wheel is empty.
    fn next_occupied_slot(&self, start: usize) -> Option<usize> {
        let first_word = start / 64;
        // Mask off bits below `start` in its word.
        let masked = self.occupied[first_word] & (!0u64 << (start % 64));
        if masked != 0 {
            return Some(first_word * 64 + masked.trailing_zeros() as usize);
        }
        // Remaining words, wrapping; the starting word is revisited last
        // with its full contents (covering bits below `start`).
        for i in 1..=BITMAP_WORDS {
            let w = (first_word + i) % BITMAP_WORDS;
            if self.occupied[w] != 0 {
                return Some(w * 64 + self.occupied[w].trailing_zeros() as usize);
            }
        }
        None
    }

    /// Removes and returns the earliest event together with its timestamp,
    /// advancing the queue's notion of "now" to that timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let (at, event) = if self.wheel_len > 0 {
            // Every wheel event is earlier than every overflow event
            // (wheel < now + WHEEL_SLOTS <= overflow), and the first
            // occupied slot scanning from now's slot is the earliest
            // cycle in the wheel.
            let cursor = (self.now.as_u64() & SLOT_MASK) as usize;
            let slot = self
                .next_occupied_slot(cursor)
                .expect("wheel_len > 0 implies an occupied slot");
            let bucket = &mut self.wheel[slot];
            let (at, event) = bucket.pop_front().expect("occupied slot is non-empty");
            if bucket.is_empty() {
                self.occupied[slot / 64] &= !(1 << (slot % 64));
            }
            self.wheel_len -= 1;
            (at, event)
        } else {
            let entry = self.overflow.pop()?;
            (entry.at, entry.event)
        };
        debug_assert!(at >= self.now);
        self.now = at;
        // `now` advanced: pull newly in-horizon overflow entries into the
        // wheel *before* returning, so they precede any later push for
        // the same cycle.
        self.migrate_overflow();
        Some((at, event))
    }

    /// Drains every event already queued for the earliest pending cycle,
    /// without rescanning the wheel between events.
    ///
    /// Events pushed for that same cycle *while* iterating are not seen by
    /// the iterator (it borrows the queue exclusively); they pop next, in
    /// FIFO position, exactly as [`EventQueue::pop`] would deliver them.
    ///
    /// # Examples
    ///
    /// ```
    /// use patchsim_kernel::{Cycle, EventQueue};
    ///
    /// let mut q = EventQueue::new();
    /// q.push(Cycle::new(3), "a");
    /// q.push(Cycle::new(3), "b");
    /// q.push(Cycle::new(9), "later");
    /// let batch: Vec<_> = q.drain_current_cycle().collect();
    /// assert_eq!(batch, [(Cycle::new(3), "a"), (Cycle::new(3), "b")]);
    /// assert_eq!(q.len(), 1);
    /// ```
    pub fn drain_current_cycle(&mut self) -> DrainCurrentCycle<'_, E> {
        let at = self.peek_time();
        DrainCurrentCycle { queue: self, at }
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<Cycle> {
        if self.wheel_len > 0 {
            let cursor = (self.now.as_u64() & SLOT_MASK) as usize;
            let slot = self
                .next_occupied_slot(cursor)
                .expect("wheel_len > 0 implies an occupied slot");
            return self.wheel[slot].front().map(|(at, _)| *at);
        }
        self.overflow.peek().map(|e| e.at)
    }

    /// Returns the timestamp of the most recently popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.wheel_len + self.overflow.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the total number of events ever pushed; a cheap progress
    /// metric for long runs.
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.len())
            .field("wheel_len", &self.wheel_len)
            .field("overflow_len", &self.overflow.len())
            .field("now", &self.now)
            .field("total_pushed", &self.next_seq)
            .finish()
    }
}

/// Draining iterator over the events of the earliest pending cycle. See
/// [`EventQueue::drain_current_cycle`].
#[derive(Debug)]
pub struct DrainCurrentCycle<'a, E> {
    queue: &'a mut EventQueue<E>,
    at: Option<Cycle>,
}

impl<E> Iterator for DrainCurrentCycle<'_, E> {
    type Item = (Cycle, E);

    fn next(&mut self) -> Option<(Cycle, E)> {
        let at = self.at?;
        // Fast path: every remaining event for `at` sits in `at`'s bucket
        // (a slot never mixes cycles), so pop its front directly — no
        // bitmap scan per event. The first event can instead still be in
        // the overflow heap when the wheel is empty; the slow path below
        // pops it, and migration then fills the bucket for the rest.
        let q = &mut *self.queue;
        let slot = (at.as_u64() & SLOT_MASK) as usize;
        let bucket = &mut q.wheel[slot];
        if let Some(&(t, _)) = bucket.front() {
            debug_assert_eq!(t, at, "current-cycle bucket holds a different cycle");
            let (t, event) = bucket.pop_front().expect("front exists");
            if bucket.is_empty() {
                q.occupied[slot / 64] &= !(1 << (slot % 64));
            }
            q.wheel_len -= 1;
            q.now = t;
            q.migrate_overflow();
            return Some((t, event));
        }
        if q.peek_time() == Some(at) {
            return q.pop();
        }
        self.at = None;
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SimRng;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(7), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "a");
        q.push(Cycle::new(6), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Cycle::new(5), "c"); // same cycle as "now" is allowed
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduled event at cycle 1")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), ());
        q.pop();
        q.push(Cycle::new(1), ());
    }

    #[test]
    fn peek_and_len_reflect_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(9), ());
        q.push(Cycle::new(4), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.push(Cycle::new(42), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(42));
    }

    #[test]
    fn far_events_spill_to_overflow_and_return() {
        let mut q = EventQueue::new();
        // Far beyond the wheel horizon, interleaved with near events.
        q.push(Cycle::new(1_000_000), "far");
        q.push(Cycle::new(5), "near");
        q.push(Cycle::new(2_000_000), "farther");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop().unwrap().1, "near");
        assert_eq!(q.pop(), Some((Cycle::new(1_000_000), "far")));
        assert_eq!(q.pop(), Some((Cycle::new(2_000_000), "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn overflow_migration_preserves_fifo_with_later_direct_pushes() {
        let mut q = EventQueue::new();
        // "early" is pushed while cycle 2000 is beyond the horizon, so it
        // spills; after popping the cycle-1500 event the horizon covers
        // 2000 and "late" goes into the wheel directly. FIFO demands
        // "early" still pops first.
        q.push(Cycle::new(2_000), "early");
        q.push(Cycle::new(1_500), "advance");
        assert_eq!(q.pop().unwrap().1, "advance");
        q.push(Cycle::new(2_000), "late");
        assert_eq!(q.pop(), Some((Cycle::new(2_000), "early")));
        assert_eq!(q.pop(), Some((Cycle::new(2_000), "late")));
    }

    #[test]
    fn wheel_wraparound_cycles_map_to_distinct_slots() {
        let mut q = EventQueue::new();
        // Advance now to a non-zero wheel position, then schedule across
        // the wrap boundary.
        q.push(Cycle::new(1_000), 0);
        q.pop();
        q.push(Cycle::new(1_030), 30); // slot 6 after wrap
        q.push(Cycle::new(1_001), 1);
        q.push(Cycle::new(1_023), 23); // last slot before wrap
        q.push(Cycle::new(1_024), 24); // slot 0
        assert_eq!(q.pop(), Some((Cycle::new(1_001), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(1_023), 23)));
        assert_eq!(q.pop(), Some((Cycle::new(1_024), 24)));
        assert_eq!(q.pop(), Some((Cycle::new(1_030), 30)));
    }

    #[test]
    fn drain_current_cycle_takes_exactly_one_cycle() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(4), 1);
        q.push(Cycle::new(4), 2);
        q.push(Cycle::new(4), 3);
        q.push(Cycle::new(5), 4);
        let batch: Vec<_> = q.drain_current_cycle().map(|(_, e)| e).collect();
        assert_eq!(batch, [1, 2, 3]);
        assert_eq!(q.len(), 1);
        assert_eq!(q.now(), Cycle::new(4));
        // Draining an empty queue yields nothing.
        q.pop();
        assert_eq!(q.drain_current_cycle().count(), 0);
    }

    #[test]
    fn drain_current_cycle_partial_leaves_rest() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(4), 1);
        q.push(Cycle::new(4), 2);
        assert_eq!(q.drain_current_cycle().next(), Some((Cycle::new(4), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(4), 2)));
    }

    #[test]
    fn with_capacity_behaves_identically() {
        let mut q = EventQueue::with_capacity(10_000);
        for i in 0..2_048u64 {
            q.push(Cycle::new(i / 3), i);
        }
        let mut last = (Cycle::ZERO, 0);
        for _ in 0..2_048 {
            let got = q.pop().unwrap();
            assert!(got.0 > last.0 || (got.0 == last.0 && got.1 >= last.1));
            last = got;
        }
        assert!(q.is_empty());
    }

    /// A straightforward (time, seq) reference implementation: the wheel
    /// must reproduce its pop sequence exactly.
    struct ReferenceHeap<E> {
        heap: BinaryHeap<Entry<E>>,
        next_seq: u64,
    }

    impl<E> ReferenceHeap<E> {
        fn new() -> Self {
            ReferenceHeap {
                heap: BinaryHeap::new(),
                next_seq: 0,
            }
        }
        fn push(&mut self, at: Cycle, event: E) {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.heap.push(Entry { at, seq, event });
        }
        fn pop(&mut self) -> Option<(Cycle, E)> {
            self.heap.pop().map(|e| (e.at, e.event))
        }
    }

    /// Property test: random (time, payload) mixes with interleaved pops
    /// produce exactly the reference heap's (time, seq) order. Schedule
    /// distances mix the wheel hot path, the wrap boundary, and the
    /// overflow heap. Randomised over 64 seeded episodes.
    #[test]
    fn wheel_matches_reference_heap_order() {
        let mut rng = SimRng::from_seed(0x37EE1);
        for _ in 0..64 {
            let mut wheel = EventQueue::new();
            let mut reference = ReferenceHeap::new();
            let mut now = 0u64;
            for step in 0..800u64 {
                if rng.below(3) < 2 || wheel.is_empty() {
                    // Push at a distance that exercises all three regimes.
                    let dist = match rng.below(10) {
                        0..=5 => rng.below(16),                  // hot bucket
                        6 | 7 => rng.below(WHEEL_SLOTS as u64),  // whole wheel
                        8 => WHEEL_SLOTS as u64 + rng.below(64), // horizon edge
                        _ => rng.below(100_000),                 // deep overflow
                    };
                    wheel.push(Cycle::new(now + dist), step);
                    reference.push(Cycle::new(now + dist), step);
                } else {
                    let got = wheel.pop();
                    let want = reference.pop();
                    assert_eq!(got, want, "pop sequences diverged");
                    if let Some((at, _)) = got {
                        now = at.as_u64();
                    }
                }
            }
            loop {
                let got = wheel.pop();
                let want = reference.pop();
                assert_eq!(got, want, "drain sequences diverged");
                if got.is_none() {
                    break;
                }
            }
        }
    }
}
