//! Deterministic time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::Cycle;

/// An entry in the queue: ordered by time, then by insertion sequence so
/// that same-cycle events pop in FIFO order. `BinaryHeap` is a max-heap, so
/// the comparison is reversed.
struct Entry<E> {
    at: Cycle,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the smallest (time, seq) is the "greatest" heap element.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// Events are delivered in non-decreasing timestamp order; events scheduled
/// for the *same* cycle are delivered in the order they were pushed. This
/// FIFO tie-break is what makes whole-simulation runs reproducible: the
/// simulator never depends on an unspecified heap ordering.
///
/// # Examples
///
/// ```
/// use patchsim_kernel::{Cycle, EventQueue};
///
/// let mut q = EventQueue::new();
/// q.push(Cycle::new(5), "a");
/// q.push(Cycle::new(5), "b");
/// q.push(Cycle::new(1), "c");
/// let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
/// assert_eq!(order, ["c", "a", "b"]);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Timestamp of the most recently popped event, used to reject
    /// scheduling into the past.
    now: Cycle,
}

impl<E> EventQueue<E> {
    /// Creates an empty queue positioned at [`Cycle::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: Cycle::ZERO,
        }
    }

    /// Schedules `event` to be delivered at cycle `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the timestamp of the most recently
    /// popped event — scheduling into the past is always a simulator bug.
    pub fn push(&mut self, at: Cycle, event: E) {
        assert!(
            at >= self.now,
            "scheduled event at {at} but simulation time has reached {}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Removes and returns the earliest event together with its timestamp,
    /// advancing the queue's notion of "now" to that timestamp.
    pub fn pop(&mut self) -> Option<(Cycle, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now);
        self.now = entry.at;
        Some((entry.at, entry.event))
    }

    /// Returns the timestamp of the earliest pending event without removing
    /// it.
    pub fn peek_time(&self) -> Option<Cycle> {
        self.heap.peek().map(|e| e.at)
    }

    /// Returns the timestamp of the most recently popped event.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Returns the number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Returns the total number of events ever pushed; a cheap progress
    /// metric for long runs.
    pub fn total_pushed(&self) -> u64 {
        self.next_seq
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> std::fmt::Debug for EventQueue<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventQueue")
            .field("len", &self.heap.len())
            .field("now", &self.now)
            .field("total_pushed", &self.next_seq)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(30), 3);
        q.push(Cycle::new(10), 1);
        q.push(Cycle::new(20), 2);
        assert_eq!(q.pop(), Some((Cycle::new(10), 1)));
        assert_eq!(q.pop(), Some((Cycle::new(20), 2)));
        assert_eq!(q.pop(), Some((Cycle::new(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_cycle_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Cycle::new(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((Cycle::new(7), i)));
        }
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(5), "a");
        q.push(Cycle::new(6), "b");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(Cycle::new(5), "c"); // same cycle as "now" is allowed
        assert_eq!(q.pop().unwrap().1, "c");
        assert_eq!(q.pop().unwrap().1, "b");
    }

    #[test]
    #[should_panic(expected = "scheduled event at cycle 1")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.push(Cycle::new(10), ());
        q.pop();
        q.push(Cycle::new(1), ());
    }

    #[test]
    fn peek_and_len_reflect_contents() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Cycle::new(9), ());
        q.push(Cycle::new(4), ());
        assert_eq!(q.peek_time(), Some(Cycle::new(4)));
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
    }

    #[test]
    fn now_tracks_last_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), Cycle::ZERO);
        q.push(Cycle::new(42), ());
        q.pop();
        assert_eq!(q.now(), Cycle::new(42));
    }
}
