//! Per-block token state: the token counting rules of Token Coherence.
//!
//! The paper's Table 1 gives five token counting rules; this module
//! implements the state they govern. At system initialization each block
//! has `T` tokens, one of which is the **owner token**, marked clean or
//! dirty. Safety follows from conservation: a writer must hold all `T`
//! tokens, a reader at least one.

use std::fmt;

/// Clean/dirty status of the owner token (Table 1, Rule 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OwnerStatus {
    /// Memory holds an up-to-date copy of the block.
    Clean,
    /// The block has been written since memory last saw it; whoever holds
    /// the dirty owner token is responsible for the data (Rule 4: a
    /// message carrying a dirty owner token must carry data).
    Dirty,
}

/// The classic MOESI states plus F (forward/clean-owner), as produced by
/// the token-count mapping of the paper's Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MoesiState {
    /// All tokens, dirty owner.
    M,
    /// Some tokens, dirty owner.
    O,
    /// All tokens, clean owner.
    E,
    /// Some tokens, clean owner (the F state of Hum & Goodman).
    F,
    /// Some tokens, no owner token.
    S,
    /// No tokens.
    I,
}

impl MoesiState {
    /// Whether this state permits reads (Read Rule: at least one token).
    pub fn readable(self) -> bool {
        !matches!(self, MoesiState::I)
    }

    /// Whether this state permits writes (Write Rule: all tokens).
    pub fn writable(self) -> bool {
        matches!(self, MoesiState::M | MoesiState::E)
    }

    /// Whether this state holds the owner token (and therefore must supply
    /// data in response to requests).
    pub fn owns(self) -> bool {
        matches!(
            self,
            MoesiState::M | MoesiState::O | MoesiState::E | MoesiState::F
        )
    }
}

impl fmt::Display for MoesiState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MoesiState::M => "M",
            MoesiState::O => "O",
            MoesiState::E => "E",
            MoesiState::F => "F",
            MoesiState::S => "S",
            MoesiState::I => "I",
        };
        f.write_str(s)
    }
}

/// A multiset of tokens for one block: a total count plus, possibly, the
/// owner token and its clean/dirty status.
///
/// `TokenSet` appears in cache lines, directory entries (the home's own
/// token holdings), and coherence messages. The owner token, when present,
/// is included in [`TokenSet::count`].
///
/// # Examples
///
/// ```
/// use patchsim_mem::{MoesiState, OwnerStatus, TokenSet};
///
/// let mut home = TokenSet::full(64, OwnerStatus::Clean);
/// let response = home.split_plain(1);       // one plain token for a reader
/// assert_eq!(response.count(), 1);
/// assert_eq!(home.count(), 63);
/// assert_eq!(response.moesi(64), MoesiState::S);
/// assert_eq!(home.moesi(64), MoesiState::F); // some tokens + clean owner
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TokenSet {
    count: u32,
    owner: Option<OwnerStatus>,
}

impl TokenSet {
    /// The empty token set.
    pub const fn empty() -> Self {
        TokenSet {
            count: 0,
            owner: None,
        }
    }

    /// All `total` tokens for a block, including the owner token.
    ///
    /// # Panics
    ///
    /// Panics if `total` is zero (every block has at least the owner token).
    pub fn full(total: u32, status: OwnerStatus) -> Self {
        assert!(total >= 1, "a block has at least one token");
        TokenSet {
            count: total,
            owner: Some(status),
        }
    }

    /// A set of `count` plain (non-owner) tokens.
    pub const fn plain(count: u32) -> Self {
        TokenSet { count, owner: None }
    }

    /// Total tokens held, including the owner token if present.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Whether the owner token is in this set.
    pub fn has_owner(&self) -> bool {
        self.owner.is_some()
    }

    /// The owner token's status, if present.
    pub fn owner_status(&self) -> Option<OwnerStatus> {
        self.owner
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether a message carrying exactly these tokens must also carry
    /// data (Rule 4: dirty owner token ⇒ data).
    pub fn requires_data(&self) -> bool {
        self.owner == Some(OwnerStatus::Dirty)
    }

    /// Marks the owner token dirty (done by a writer after writing, Rule 2).
    ///
    /// # Panics
    ///
    /// Panics if the owner token is not held.
    pub fn set_owner_dirty(&mut self) {
        assert!(self.owner.is_some(), "cannot dirty an absent owner token");
        self.owner = Some(OwnerStatus::Dirty);
    }

    /// Marks the owner token clean. Memory does this whenever it receives
    /// the owner token (Rule 1).
    ///
    /// # Panics
    ///
    /// Panics if the owner token is not held.
    pub fn set_owner_clean(&mut self) {
        assert!(self.owner.is_some(), "cannot clean an absent owner token");
        self.owner = Some(OwnerStatus::Clean);
    }

    /// Merges `incoming` tokens into this set (message arrival).
    ///
    /// # Panics
    ///
    /// Panics if both sets claim the owner token — conservation (Rule 1)
    /// makes that impossible in a correct protocol, so it is a simulator
    /// bug.
    pub fn merge(&mut self, incoming: TokenSet) {
        if incoming.owner.is_some() {
            assert!(
                self.owner.is_none(),
                "two owner tokens for one block violates token conservation"
            );
            self.owner = incoming.owner;
        }
        self.count += incoming.count;
    }

    /// Removes and returns every token in the set.
    pub fn take_all(&mut self) -> TokenSet {
        std::mem::take(self)
    }

    /// Splits off `n` plain tokens.
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` plain (non-owner) tokens are held.
    pub fn split_plain(&mut self, n: u32) -> TokenSet {
        let plain = self.count - u32::from(self.owner.is_some());
        assert!(
            plain >= n,
            "asked for {n} plain tokens but only {plain} are held"
        );
        self.count -= n;
        TokenSet::plain(n)
    }

    /// Splits off the owner token together with `extra_plain` plain tokens.
    ///
    /// # Panics
    ///
    /// Panics if the owner token or the requested plain tokens are not
    /// held.
    pub fn split_owner(&mut self, extra_plain: u32) -> TokenSet {
        let status = self.owner.take().expect("owner token not held");
        let plain = self.count - 1;
        assert!(
            plain >= extra_plain,
            "asked for {extra_plain} plain tokens but only {plain} are held"
        );
        self.count -= 1 + extra_plain;
        TokenSet {
            count: 1 + extra_plain,
            owner: Some(status),
        }
    }

    /// The MOESI+F state these holdings imply for a block with `total`
    /// tokens (the paper's Table 2).
    ///
    /// # Panics
    ///
    /// Panics if the set holds more than `total` tokens.
    pub fn moesi(&self, total: u32) -> MoesiState {
        assert!(
            self.count <= total,
            "holding {} tokens of a {total}-token block",
            self.count
        );
        match (self.count, self.owner) {
            (0, None) => MoesiState::I,
            (0, Some(_)) => unreachable!("owner token implies count >= 1"),
            (c, Some(OwnerStatus::Dirty)) if c == total => MoesiState::M,
            (_, Some(OwnerStatus::Dirty)) => MoesiState::O,
            (c, Some(OwnerStatus::Clean)) if c == total => MoesiState::E,
            (_, Some(OwnerStatus::Clean)) => MoesiState::F,
            (_, None) => MoesiState::S,
        }
    }

    /// Whether these holdings permit a write (Write Rule: all `total`
    /// tokens).
    pub fn can_write(&self, total: u32) -> bool {
        self.count == total
    }

    /// Whether these holdings permit a read (Read Rule: at least one
    /// token).
    pub fn can_read(&self) -> bool {
        self.count >= 1
    }
}

impl Default for TokenSet {
    fn default() -> Self {
        TokenSet::empty()
    }
}

impl fmt::Display for TokenSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.owner {
            Some(OwnerStatus::Dirty) => write!(f, "t={}(+Od)", self.count),
            Some(OwnerStatus::Clean) => write!(f, "t={}(+Oc)", self.count),
            None => write!(f, "t={}", self.count),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: u32 = 16;

    /// The paper's Table 2, row by row.
    #[test]
    fn table2_moesi_mapping() {
        // M: all tokens, dirty owner.
        assert_eq!(
            TokenSet::full(T, OwnerStatus::Dirty).moesi(T),
            MoesiState::M
        );
        // O: some tokens, dirty owner.
        let mut o = TokenSet::full(T, OwnerStatus::Dirty);
        o.split_plain(5);
        assert_eq!(o.moesi(T), MoesiState::O);
        // E: all tokens, clean owner.
        assert_eq!(
            TokenSet::full(T, OwnerStatus::Clean).moesi(T),
            MoesiState::E
        );
        // F: some tokens, clean owner.
        let mut f = TokenSet::full(T, OwnerStatus::Clean);
        f.split_plain(1);
        assert_eq!(f.moesi(T), MoesiState::F);
        // S: some tokens, no owner.
        assert_eq!(TokenSet::plain(3).moesi(T), MoesiState::S);
        // I: no tokens.
        assert_eq!(TokenSet::empty().moesi(T), MoesiState::I);
    }

    #[test]
    fn read_write_rules() {
        assert!(TokenSet::full(T, OwnerStatus::Clean).can_write(T));
        assert!(!TokenSet::plain(T - 1).can_write(T));
        assert!(TokenSet::plain(1).can_read());
        assert!(!TokenSet::empty().can_read());
    }

    #[test]
    fn moesi_state_predicates() {
        assert!(MoesiState::M.writable() && MoesiState::E.writable());
        assert!(!MoesiState::O.writable() && !MoesiState::S.writable());
        assert!(MoesiState::S.readable() && !MoesiState::I.readable());
        assert!(MoesiState::F.owns() && MoesiState::O.owns());
        assert!(!MoesiState::S.owns() && !MoesiState::I.owns());
    }

    #[test]
    fn merge_accumulates() {
        let mut s = TokenSet::plain(2);
        s.merge(TokenSet::plain(3));
        assert_eq!(s.count(), 5);
        assert!(!s.has_owner());
        s.merge(TokenSet::full(1, OwnerStatus::Dirty));
        assert_eq!(s.count(), 6);
        assert!(s.requires_data());
    }

    #[test]
    #[should_panic(expected = "conservation")]
    fn merging_two_owners_panics() {
        let mut s = TokenSet::full(1, OwnerStatus::Clean);
        s.merge(TokenSet::full(1, OwnerStatus::Clean));
    }

    #[test]
    fn split_owner_keeps_remainder() {
        let mut s = TokenSet::full(T, OwnerStatus::Dirty);
        let sent = s.split_owner(0);
        assert_eq!(sent.count(), 1);
        assert!(sent.requires_data());
        assert_eq!(s.count(), T - 1);
        assert!(!s.has_owner());
        assert_eq!(s.moesi(T), MoesiState::S);
    }

    #[test]
    fn split_owner_with_extras() {
        let mut s = TokenSet::full(T, OwnerStatus::Clean);
        let sent = s.split_owner(T - 1);
        assert_eq!(sent.count(), T);
        assert!(s.is_empty());
        assert_eq!(sent.moesi(T), MoesiState::E);
    }

    #[test]
    #[should_panic(expected = "plain tokens")]
    fn split_plain_cannot_take_owner() {
        let mut s = TokenSet::full(1, OwnerStatus::Clean);
        s.split_plain(1); // the only token is the owner token
    }

    #[test]
    fn take_all_empties() {
        let mut s = TokenSet::full(4, OwnerStatus::Dirty);
        let t = s.take_all();
        assert_eq!(t.count(), 4);
        assert!(s.is_empty());
        assert_eq!(s.moesi(4), MoesiState::I);
    }

    #[test]
    fn memory_cleans_owner_on_arrival() {
        let mut s = TokenSet::full(2, OwnerStatus::Dirty);
        s.set_owner_clean();
        assert_eq!(s.owner_status(), Some(OwnerStatus::Clean));
        assert!(!s.requires_data());
    }

    #[test]
    fn display_formats() {
        assert_eq!(TokenSet::plain(3).to_string(), "t=3");
        assert_eq!(
            TokenSet::full(3, OwnerStatus::Dirty).to_string(),
            "t=3(+Od)"
        );
        assert_eq!(
            TokenSet::full(3, OwnerStatus::Clean).to_string(),
            "t=3(+Oc)"
        );
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn full_of_zero_panics() {
        TokenSet::full(0, OwnerStatus::Clean);
    }
}
