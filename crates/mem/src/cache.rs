//! Set-associative cache arrays with LRU replacement.

use std::fmt;

use crate::BlockAddr;

/// The shape of a cache: number of sets × associativity.
///
/// # Examples
///
/// ```
/// use patchsim_mem::CacheGeometry;
///
/// // The paper's 1MB 4-way private cache with 64-byte blocks:
/// let g = CacheGeometry::from_capacity(1 << 20, 64, 4);
/// assert_eq!(g.sets(), 4096);
/// assert_eq!(g.ways(), 4);
/// assert_eq!(g.blocks(), 16384);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheGeometry {
    sets: u32,
    ways: u32,
}

impl CacheGeometry {
    /// Creates a geometry with `sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(sets: u32, ways: u32) -> Self {
        assert!(sets > 0 && ways > 0, "cache dimensions must be positive");
        CacheGeometry { sets, ways }
    }

    /// Derives the geometry from a capacity in bytes.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of
    /// `block_bytes × ways`.
    pub fn from_capacity(capacity_bytes: u64, block_bytes: u64, ways: u32) -> Self {
        assert!(block_bytes > 0 && ways > 0);
        let blocks = capacity_bytes / block_bytes;
        assert_eq!(
            blocks * block_bytes,
            capacity_bytes,
            "capacity must be a whole number of blocks"
        );
        let sets = blocks / ways as u64;
        assert_eq!(
            sets * ways as u64,
            blocks,
            "capacity must be a whole number of sets"
        );
        CacheGeometry::new(sets as u32, ways)
    }

    /// Number of sets.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> u32 {
        self.ways
    }

    /// Total block capacity.
    pub fn blocks(&self) -> u32 {
        self.sets * self.ways
    }

    fn set_of(&self, addr: BlockAddr) -> usize {
        (addr.raw() % self.sets as u64) as usize
    }
}

#[derive(Debug)]
struct Line<L> {
    addr: BlockAddr,
    last_use: u64,
    payload: L,
}

/// A victim displaced by [`CacheArray::insert`].
#[derive(Debug, PartialEq, Eq)]
pub struct Evicted<L> {
    /// The displaced block's address.
    pub addr: BlockAddr,
    /// The displaced block's coherence payload (tokens, dirty state, ...).
    pub payload: L,
}

/// A set-associative cache array with true-LRU replacement, generic over
/// the per-line coherence payload `L`.
///
/// The array tracks *which* blocks are resident and their payloads; it
/// stores no data bytes (patchsim is a timing simulator — block contents
/// are modelled as version numbers at the protocol layer).
///
/// # Examples
///
/// ```
/// use patchsim_mem::{BlockAddr, CacheArray, CacheGeometry};
///
/// let mut cache: CacheArray<u32> = CacheArray::new(CacheGeometry::new(2, 1));
/// assert!(cache.insert(BlockAddr::new(0), 10).is_none());
/// // Same set (addresses 0 and 2 both map to set 0 of 2): LRU evicts.
/// let victim = cache.insert(BlockAddr::new(2), 30).unwrap();
/// assert_eq!(victim.addr, BlockAddr::new(0));
/// assert_eq!(victim.payload, 10);
/// ```
#[derive(Debug)]
pub struct CacheArray<L> {
    geometry: CacheGeometry,
    lines: Vec<Option<Line<L>>>,
    lru_clock: u64,
}

impl<L> CacheArray<L> {
    /// Creates an empty array with the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        let mut lines = Vec::new();
        lines.resize_with(geometry.blocks() as usize, || None);
        CacheArray {
            geometry,
            lines,
            lru_clock: 0,
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    fn set_range(&self, addr: BlockAddr) -> std::ops::Range<usize> {
        let set = self.geometry.set_of(addr);
        let ways = self.geometry.ways as usize;
        set * ways..(set + 1) * ways
    }

    /// Looks up `addr` without updating recency.
    pub fn peek(&self, addr: BlockAddr) -> Option<&L> {
        self.lines[self.set_range(addr)]
            .iter()
            .flatten()
            .find(|l| l.addr == addr)
            .map(|l| &l.payload)
    }

    /// Looks up `addr`, marking the line most-recently-used.
    pub fn get_mut(&mut self, addr: BlockAddr) -> Option<&mut L> {
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(addr);
        self.lines[range]
            .iter_mut()
            .flatten()
            .find(|l| l.addr == addr)
            .map(|l| {
                l.last_use = clock;
                &mut l.payload
            })
    }

    /// Whether `addr` is resident.
    pub fn contains(&self, addr: BlockAddr) -> bool {
        self.peek(addr).is_some()
    }

    /// Inserts `addr`, evicting the set's LRU line if the set is full.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is already resident — coherence controllers must
    /// update lines in place, never double-allocate.
    pub fn insert(&mut self, addr: BlockAddr, payload: L) -> Option<Evicted<L>> {
        assert!(
            !self.contains(addr),
            "block {addr} inserted while already resident"
        );
        self.lru_clock += 1;
        let clock = self.lru_clock;
        let range = self.set_range(addr);
        let set = &mut self.lines[range];
        let new_line = Line {
            addr,
            last_use: clock,
            payload,
        };
        // Fill an empty way if available.
        if let Some(slot) = set.iter_mut().find(|s| s.is_none()) {
            *slot = Some(new_line);
            return None;
        }
        // Evict the LRU way.
        let victim_idx = set
            .iter()
            .enumerate()
            .min_by_key(|(_, s)| s.as_ref().map(|l| l.last_use))
            .map(|(i, _)| i)
            .expect("ways > 0");
        let old = set[victim_idx].replace(new_line).expect("set was full");
        Some(Evicted {
            addr: old.addr,
            payload: old.payload,
        })
    }

    /// The address that [`CacheArray::insert`] would evict to make room
    /// for `addr`, if the set is full.
    pub fn victim_for(&self, addr: BlockAddr) -> Option<BlockAddr> {
        if self.contains(addr) {
            return None;
        }
        let set = &self.lines[self.set_range(addr)];
        if set.iter().any(|s| s.is_none()) {
            return None;
        }
        set.iter()
            .flatten()
            .min_by_key(|l| l.last_use)
            .map(|l| l.addr)
    }

    /// Removes `addr`, returning its payload.
    pub fn remove(&mut self, addr: BlockAddr) -> Option<L> {
        let range = self.set_range(addr);
        let set = &mut self.lines[range];
        for slot in set.iter_mut() {
            if slot.as_ref().is_some_and(|l| l.addr == addr) {
                return slot.take().map(|l| l.payload);
            }
        }
        None
    }

    /// Number of resident blocks.
    pub fn len(&self) -> usize {
        self.lines.iter().flatten().count()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lines.iter().all(|l| l.is_none())
    }

    /// Iterates over `(address, payload)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (BlockAddr, &L)> {
        self.lines.iter().flatten().map(|l| (l.addr, &l.payload))
    }

    /// Iterates mutably over `(address, payload)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (BlockAddr, &mut L)> {
        self.lines
            .iter_mut()
            .flatten()
            .map(|l| (l.addr, &mut l.payload))
    }
}

impl<L> fmt::Display for CacheArray<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cache {}x{} ({} resident)",
            self.geometry.sets,
            self.geometry.ways,
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_kernel::SimRng;

    fn a(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn from_capacity_computes_paper_geometries() {
        // 64KB L1, 64B blocks, 4-way -> 256 sets.
        let l1 = CacheGeometry::from_capacity(64 << 10, 64, 4);
        assert_eq!((l1.sets(), l1.ways()), (256, 4));
    }

    #[test]
    #[should_panic(expected = "whole number")]
    fn from_capacity_rejects_ragged_sizes() {
        CacheGeometry::from_capacity(100, 64, 4);
    }

    #[test]
    fn hit_and_miss() {
        let mut c = CacheArray::new(CacheGeometry::new(4, 2));
        assert!(c.insert(a(1), "one").is_none());
        assert_eq!(c.peek(a(1)), Some(&"one"));
        assert_eq!(c.peek(a(2)), None);
        assert!(c.contains(a(1)));
        *c.get_mut(a(1)).unwrap() = "uno";
        assert_eq!(c.peek(a(1)), Some(&"uno"));
    }

    #[test]
    fn lru_eviction_order() {
        // One set, two ways; addresses 0, 4, 8 all map to set 0 of 4.
        let mut c = CacheArray::new(CacheGeometry::new(4, 2));
        c.insert(a(0), 0);
        c.insert(a(4), 4);
        // Touch 0 so 4 becomes LRU.
        c.get_mut(a(0));
        let v = c.insert(a(8), 8).unwrap();
        assert_eq!(v.addr, a(4));
        assert!(c.contains(a(0)) && c.contains(a(8)));
    }

    #[test]
    fn victim_for_predicts_eviction() {
        let mut c = CacheArray::new(CacheGeometry::new(1, 2));
        assert_eq!(c.victim_for(a(0)), None, "empty set needs no victim");
        c.insert(a(0), ());
        c.insert(a(1), ());
        assert_eq!(c.victim_for(a(0)), None, "resident block needs no victim");
        let predicted = c.victim_for(a(2)).unwrap();
        let actual = c.insert(a(2), ()).unwrap().addr;
        assert_eq!(predicted, actual);
    }

    #[test]
    fn remove_frees_the_way() {
        let mut c = CacheArray::new(CacheGeometry::new(1, 1));
        c.insert(a(3), ());
        assert_eq!(c.remove(a(3)), Some(()));
        assert_eq!(c.remove(a(3)), None);
        assert!(
            c.insert(a(5), ()).is_none(),
            "freed way accepts a new block"
        );
    }

    #[test]
    #[should_panic(expected = "already resident")]
    fn double_insert_panics() {
        let mut c = CacheArray::new(CacheGeometry::new(1, 2));
        c.insert(a(3), ());
        c.insert(a(3), ());
    }

    #[test]
    fn len_and_iter() {
        let mut c = CacheArray::new(CacheGeometry::new(4, 2));
        assert!(c.is_empty());
        c.insert(a(0), 0);
        c.insert(a(1), 1);
        c.insert(a(2), 2);
        assert_eq!(c.len(), 3);
        let mut got: Vec<u64> = c.iter().map(|(addr, _)| addr.raw()).collect();
        got.sort();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn iter_mut_updates_payloads() {
        let mut c = CacheArray::new(CacheGeometry::new(2, 1));
        c.insert(a(0), 1);
        c.insert(a(1), 2);
        for (_, p) in c.iter_mut() {
            *p *= 10;
        }
        assert_eq!(c.peek(a(0)), Some(&10));
        assert_eq!(c.peek(a(1)), Some(&20));
    }

    /// The cache never holds more blocks than its capacity, never holds
    /// duplicates, and every resident block was inserted and not yet
    /// evicted/removed. Randomised over 256 seeded op sequences.
    #[test]
    fn capacity_and_uniqueness() {
        let mut rng = SimRng::from_seed(0xCACE);
        for _ in 0..256 {
            let len = 1 + rng.below(199) as usize;
            let mut c = CacheArray::new(CacheGeometry::new(4, 2));
            let mut resident = std::collections::BTreeSet::new();
            for _ in 0..len {
                let addr = a(rng.below(64));
                let is_insert = rng.chance(0.5);
                if is_insert && !c.contains(addr) {
                    if let Some(ev) = c.insert(addr, ()) {
                        assert!(resident.remove(&ev.addr.raw()));
                    }
                    resident.insert(addr.raw());
                } else if !is_insert {
                    let was = c.remove(addr).is_some();
                    assert_eq!(was, resident.remove(&addr.raw()));
                }
                assert!(c.len() <= 8);
                assert_eq!(c.len(), resident.len());
                for r in &resident {
                    assert!(c.contains(a(*r)));
                }
            }
        }
    }
}
