//! Directory sharer encodings: exact full-map and inexact alternatives.
//!
//! A full-map bit vector (one bit per core) becomes too much directory
//! state as core counts grow, so large systems use *inexact* encodings —
//! conservative over-approximations of the sharer set. The paper's
//! Figures 9 and 10 sweep a coarse bit vector that maps one bit to `K`
//! cores (`K = 1` is a full map; `K = N` is a single bit meaning
//! "somebody may share this"). The owner is always recorded precisely,
//! which keeps read requests exact. As an extension, the classic
//! limited-pointer scheme (Dir<sub>i</sub>B) is also provided: `i` exact
//! pointers that degrade to broadcast on overflow.
//!
//! Inexactness has two sources, both modelled here:
//!
//! 1. **Rounding/overflow**: a coarse bit implicates its whole `K`-core
//!    group; an overflowed pointer set implicates everyone.
//! 2. **Staleness**: individual departures (evictions) cannot always be
//!    removed, so stale sharers accumulate until a write resets the set.

use std::fmt;

use patchsim_noc::{DestSet, NodeId};

/// Which sharer-set representation the directory uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SharerEncoding {
    /// One bit per core: exact.
    FullMap,
    /// One bit per `cores_per_bit` consecutive cores: a conservative
    /// over-approximation for `cores_per_bit > 1`.
    Coarse {
        /// Number of cores each bit stands for (`K` in the paper's
        /// Figure 9; must be ≥ 1).
        cores_per_bit: u16,
    },
    /// Up to `pointers` exact sharer pointers; inserting more overflows
    /// the entry to "everyone may share" (Dir<sub>i</sub>B). An extension
    /// beyond the paper's sweep.
    LimitedPointer {
        /// Number of exact pointers per entry (must be ≥ 1).
        pointers: u16,
    },
}

impl SharerEncoding {
    /// The coarse group size `K` (1 for exact encodings).
    pub fn cores_per_bit(self) -> u16 {
        match self {
            SharerEncoding::FullMap => 1,
            SharerEncoding::Coarse { cores_per_bit } => cores_per_bit,
            SharerEncoding::LimitedPointer { .. } => 1,
        }
    }

    /// Whether the encoding always represents sharer sets exactly.
    pub fn is_exact(self) -> bool {
        match self {
            SharerEncoding::FullMap => true,
            SharerEncoding::Coarse { cores_per_bit } => cores_per_bit == 1,
            SharerEncoding::LimitedPointer { .. } => false,
        }
    }
}

impl fmt::Display for SharerEncoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SharerEncoding::LimitedPointer { pointers } => write!(f, "ptr({pointers})"),
            _ => match self.cores_per_bit() {
                1 => f.write_str("full-map"),
                k => write!(f, "coarse(K={k})"),
            },
        }
    }
}

#[derive(Clone, PartialEq, Eq)]
enum Repr {
    /// Bit vector with `cores_per_bit` cores per bit (1 = full map).
    Bits { cores_per_bit: u16, bits: Vec<u64> },
    /// Exact pointers up to a limit, then broadcast.
    Pointers {
        max: u16,
        list: Vec<NodeId>,
        overflowed: bool,
    },
}

/// A directory entry's sharer set, stored under a chosen encoding.
///
/// # Examples
///
/// ```
/// use patchsim_mem::{SharerEncoding, SharerSet};
/// use patchsim_noc::NodeId;
///
/// let mut s = SharerSet::new(64, SharerEncoding::Coarse { cores_per_bit: 4 });
/// s.insert(NodeId::new(5));
/// // Node 5's whole group {4,5,6,7} is implicated:
/// assert_eq!(s.members().len(), 4);
/// assert!(s.may_contain(NodeId::new(6)));
///
/// let mut p = SharerSet::new(64, SharerEncoding::LimitedPointer { pointers: 2 });
/// p.insert(NodeId::new(1));
/// p.insert(NodeId::new(2));
/// assert_eq!(p.members().len(), 2);      // exact while within the limit
/// p.insert(NodeId::new(3));
/// assert_eq!(p.members().len(), 64);     // overflow: broadcast
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct SharerSet {
    num_nodes: u16,
    repr: Repr,
}

impl SharerSet {
    /// Creates an empty sharer set for `num_nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero or the encoding's parameter is zero.
    pub fn new(num_nodes: u16, encoding: SharerEncoding) -> Self {
        assert!(num_nodes > 0, "a system needs at least one node");
        let repr = match encoding {
            SharerEncoding::LimitedPointer { pointers } => {
                assert!(pointers > 0, "at least one pointer required");
                Repr::Pointers {
                    max: pointers,
                    list: Vec::with_capacity(pointers as usize),
                    overflowed: false,
                }
            }
            _ => {
                let k = encoding.cores_per_bit();
                assert!(k > 0, "group size must be at least 1");
                let groups = (num_nodes as usize).div_ceil(k as usize);
                Repr::Bits {
                    cores_per_bit: k,
                    bits: vec![0; groups.div_ceil(64)],
                }
            }
        };
        SharerSet { num_nodes, repr }
    }

    /// Records `node` as a sharer (implicating its whole group under a
    /// coarse encoding, or overflowing to broadcast under a full
    /// limited-pointer entry).
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn insert(&mut self, node: NodeId) {
        assert!(node.raw() < self.num_nodes, "{node} out of range");
        match &mut self.repr {
            Repr::Bits {
                cores_per_bit,
                bits,
            } => {
                let g = node.index() / *cores_per_bit as usize;
                bits[g / 64] |= 1 << (g % 64);
            }
            Repr::Pointers {
                max,
                list,
                overflowed,
            } => {
                if *overflowed || list.contains(&node) {
                    return;
                }
                if list.len() < *max as usize {
                    list.push(node);
                } else {
                    *overflowed = true;
                    list.clear();
                }
            }
        }
    }

    /// Attempts to remove `node`. Exact representations (full map, or a
    /// non-overflowed pointer list) can remove individuals; coarse groups
    /// and overflowed entries cannot. Returns `true` if the set changed.
    pub fn remove_if_exact(&mut self, node: NodeId) -> bool {
        if node.raw() >= self.num_nodes {
            return false;
        }
        match &mut self.repr {
            Repr::Bits {
                cores_per_bit,
                bits,
            } => {
                if *cores_per_bit != 1 {
                    return false;
                }
                let g = node.index();
                let was = bits[g / 64] & (1 << (g % 64)) != 0;
                bits[g / 64] &= !(1 << (g % 64));
                was
            }
            Repr::Pointers {
                list, overflowed, ..
            } => {
                if *overflowed {
                    return false;
                }
                if let Some(pos) = list.iter().position(|&n| n == node) {
                    list.swap_remove(pos);
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Empties the set (a write miss resets sharers exactly).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Bits { bits, .. } => bits.iter_mut().for_each(|w| *w = 0),
            Repr::Pointers {
                list, overflowed, ..
            } => {
                list.clear();
                *overflowed = false;
            }
        }
    }

    /// Whether `node` *may* be a sharer. `false` is definitive; `true` may
    /// be an over-approximation.
    pub fn may_contain(&self, node: NodeId) -> bool {
        if node.raw() >= self.num_nodes {
            return false;
        }
        match &self.repr {
            Repr::Bits {
                cores_per_bit,
                bits,
            } => {
                let g = node.index() / *cores_per_bit as usize;
                bits[g / 64] & (1 << (g % 64)) != 0
            }
            Repr::Pointers {
                list, overflowed, ..
            } => *overflowed || list.contains(&node),
        }
    }

    /// Whether no sharer is recorded.
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            Repr::Bits { bits, .. } => bits.iter().all(|&w| w == 0),
            Repr::Pointers {
                list, overflowed, ..
            } => !*overflowed && list.is_empty(),
        }
    }

    /// Decodes the (super)set of sharers as concrete nodes — the set a
    /// directory would forward invalidations to.
    pub fn members(&self) -> DestSet {
        match &self.repr {
            Repr::Bits {
                cores_per_bit,
                bits,
            } => {
                let mut out = DestSet::empty(self.num_nodes);
                let k = *cores_per_bit as usize;
                let groups = (self.num_nodes as usize).div_ceil(k);
                for g in 0..groups {
                    if bits[g / 64] & (1 << (g % 64)) != 0 {
                        let start = g * k;
                        let end = (start + k).min(self.num_nodes as usize);
                        for n in start..end {
                            out.insert(NodeId::new(n as u16));
                        }
                    }
                }
                out
            }
            Repr::Pointers {
                list, overflowed, ..
            } => {
                if *overflowed {
                    DestSet::all(self.num_nodes)
                } else {
                    DestSet::from_nodes(self.num_nodes, list.iter().copied())
                }
            }
        }
    }

    /// The encoding in use.
    pub fn encoding(&self) -> SharerEncoding {
        match &self.repr {
            Repr::Bits { cores_per_bit, .. } => {
                if *cores_per_bit == 1 {
                    SharerEncoding::FullMap
                } else {
                    SharerEncoding::Coarse {
                        cores_per_bit: *cores_per_bit,
                    }
                }
            }
            Repr::Pointers { max, .. } => SharerEncoding::LimitedPointer { pointers: *max },
        }
    }

    /// Directory state cost of this encoding in bits per entry (excluding
    /// the exact owner pointer).
    pub fn bits_per_entry(&self) -> u32 {
        match &self.repr {
            Repr::Bits { cores_per_bit, .. } => {
                (self.num_nodes as u32).div_ceil(*cores_per_bit as u32)
            }
            Repr::Pointers { max, .. } => {
                let ptr_bits = (self.num_nodes as u32).next_power_of_two().trailing_zeros();
                *max as u32 * ptr_bits.max(1) + 1 // +1 overflow bit
            }
        }
    }
}

impl fmt::Debug for SharerSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharerSet[{}]{:?}", self.encoding(), self.members())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use patchsim_kernel::SimRng;

    /// Draws a random sharer set of up to 19 distinct nodes in `0..100`.
    fn random_nodes(rng: &mut SimRng) -> std::collections::BTreeSet<u16> {
        let count = rng.below(20);
        let mut nodes = std::collections::BTreeSet::new();
        for _ in 0..count {
            nodes.insert(rng.below(100) as u16);
        }
        nodes
    }

    #[test]
    fn full_map_is_exact() {
        let mut s = SharerSet::new(64, SharerEncoding::FullMap);
        s.insert(NodeId::new(3));
        s.insert(NodeId::new(60));
        assert_eq!(s.members().len(), 2);
        assert!(s.remove_if_exact(NodeId::new(3)));
        assert_eq!(s.members().len(), 1);
        assert!(!s.may_contain(NodeId::new(3)));
    }

    #[test]
    fn coarse_implicates_whole_group() {
        let mut s = SharerSet::new(64, SharerEncoding::Coarse { cores_per_bit: 16 });
        s.insert(NodeId::new(17));
        let members = s.members();
        assert_eq!(members.len(), 16);
        for n in 16..32 {
            assert!(members.contains(NodeId::new(n)));
        }
        assert!(!members.contains(NodeId::new(15)));
    }

    #[test]
    fn coarse_cannot_remove_individuals() {
        let mut s = SharerSet::new(64, SharerEncoding::Coarse { cores_per_bit: 4 });
        s.insert(NodeId::new(5));
        assert!(!s.remove_if_exact(NodeId::new(5)));
        assert!(s.may_contain(NodeId::new(5)), "stale sharer persists");
    }

    #[test]
    fn clear_resets() {
        let mut s = SharerSet::new(64, SharerEncoding::Coarse { cores_per_bit: 64 });
        s.insert(NodeId::new(0));
        assert_eq!(s.members().len(), 64, "single bit implicates everyone");
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.members().len(), 0);
    }

    #[test]
    fn ragged_last_group_is_clamped() {
        // 10 nodes, K=4: groups {0-3},{4-7},{8-9}.
        let mut s = SharerSet::new(10, SharerEncoding::Coarse { cores_per_bit: 4 });
        s.insert(NodeId::new(9));
        assert_eq!(s.members().len(), 2);
        assert!(s.may_contain(NodeId::new(8)));
        assert!(!s.may_contain(NodeId::new(7)));
    }

    #[test]
    fn limited_pointer_exact_until_overflow() {
        let mut s = SharerSet::new(64, SharerEncoding::LimitedPointer { pointers: 2 });
        s.insert(NodeId::new(7));
        s.insert(NodeId::new(7)); // duplicate is free
        s.insert(NodeId::new(9));
        assert_eq!(s.members().len(), 2);
        assert!(s.remove_if_exact(NodeId::new(7)), "exact removal works");
        s.insert(NodeId::new(11));
        assert_eq!(s.members().len(), 2);
        // Third distinct sharer overflows to broadcast.
        s.insert(NodeId::new(13));
        assert_eq!(s.members().len(), 64);
        assert!(s.may_contain(NodeId::new(0)));
        assert!(!s.remove_if_exact(NodeId::new(9)), "overflowed: no removal");
        assert!(!s.is_empty());
        // A write reset restores exactness.
        s.clear();
        assert!(s.is_empty());
        s.insert(NodeId::new(1));
        assert_eq!(s.members().len(), 1);
    }

    #[test]
    fn bits_per_entry_scales() {
        assert_eq!(
            SharerSet::new(256, SharerEncoding::FullMap).bits_per_entry(),
            256
        );
        assert_eq!(
            SharerSet::new(256, SharerEncoding::Coarse { cores_per_bit: 64 }).bits_per_entry(),
            4
        );
        assert_eq!(
            SharerSet::new(256, SharerEncoding::Coarse { cores_per_bit: 256 }).bits_per_entry(),
            1
        );
        // 4 pointers x 8 bits + overflow bit.
        assert_eq!(
            SharerSet::new(256, SharerEncoding::LimitedPointer { pointers: 4 }).bits_per_entry(),
            33
        );
    }

    #[test]
    fn encoding_round_trips() {
        let s = SharerSet::new(8, SharerEncoding::Coarse { cores_per_bit: 2 });
        assert_eq!(s.encoding(), SharerEncoding::Coarse { cores_per_bit: 2 });
        let s = SharerSet::new(8, SharerEncoding::Coarse { cores_per_bit: 1 });
        assert_eq!(s.encoding(), SharerEncoding::FullMap);
        let s = SharerSet::new(8, SharerEncoding::LimitedPointer { pointers: 3 });
        assert_eq!(s.encoding(), SharerEncoding::LimitedPointer { pointers: 3 });
        assert_eq!(SharerEncoding::FullMap.to_string(), "full-map");
        assert_eq!(
            SharerEncoding::Coarse { cores_per_bit: 4 }.to_string(),
            "coarse(K=4)"
        );
        assert_eq!(
            SharerEncoding::LimitedPointer { pointers: 4 }.to_string(),
            "ptr(4)"
        );
    }

    /// Every encoding yields a superset of the true sharer set.
    /// Randomised over 256 seeded (sharer-set, K) draws.
    #[test]
    fn members_is_superset() {
        let mut rng = SimRng::from_seed(0x5A4E);
        for _ in 0..256 {
            let nodes = random_nodes(&mut rng);
            let k = 1 + rng.below(99) as u16;
            let mut s = SharerSet::new(100, SharerEncoding::Coarse { cores_per_bit: k });
            for &n in &nodes {
                s.insert(NodeId::new(n));
            }
            let members = s.members();
            for &n in &nodes {
                assert!(members.contains(NodeId::new(n)));
            }
            // And the overapproximation is bounded by rounding: at most
            // one extra group per true sharer.
            assert!(members.len() <= nodes.len() * k as usize);
        }
    }

    /// A full map is always exact. Randomised over 256 seeded draws.
    #[test]
    fn full_map_members_exact() {
        let mut rng = SimRng::from_seed(0xF011);
        for _ in 0..256 {
            let nodes = random_nodes(&mut rng);
            let mut s = SharerSet::new(100, SharerEncoding::FullMap);
            for &n in &nodes {
                s.insert(NodeId::new(n));
            }
            let got: Vec<u16> = s.members().iter().map(|n| n.raw()).collect();
            let want: Vec<u16> = nodes.into_iter().collect();
            assert_eq!(got, want);
        }
    }

    /// Limited pointers are a superset too, and exact within the limit.
    /// Randomised over 256 seeded (sharer-set, pointer-limit) draws.
    #[test]
    fn limited_pointer_superset() {
        let mut rng = SimRng::from_seed(0x11D0);
        for _ in 0..256 {
            let nodes = random_nodes(&mut rng);
            let max = 1 + rng.below(7) as u16;
            let mut s = SharerSet::new(100, SharerEncoding::LimitedPointer { pointers: max });
            for &n in &nodes {
                s.insert(NodeId::new(n));
            }
            let members = s.members();
            for &n in &nodes {
                assert!(members.contains(NodeId::new(n)));
            }
            if nodes.len() <= max as usize {
                assert_eq!(members.len(), nodes.len(), "exact within the limit");
            } else {
                assert_eq!(members.len(), 100, "overflow broadcasts");
            }
        }
    }
}
