//! Memory access kinds.

use std::fmt;

/// The two kinds of coherence-visible memory access.
///
/// Reads require at least one token (GetS requests); writes require all
/// tokens (GetM requests).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load: needs a readable copy (GetS).
    Read,
    /// A store: needs exclusive permission (GetM).
    Write,
}

impl AccessKind {
    /// Whether this access needs exclusive permission.
    pub fn is_write(self) -> bool {
        matches!(self, AccessKind::Write)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Read => f.write_str("read"),
            AccessKind::Write => f.write_str("write"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_write() {
        assert!(AccessKind::Write.is_write());
        assert!(!AccessKind::Read.is_write());
    }

    #[test]
    fn display() {
        assert_eq!(AccessKind::Read.to_string(), "read");
        assert_eq!(AccessKind::Write.to_string(), "write");
    }
}
