//! Cache-block addresses.

use std::fmt;

use patchsim_noc::NodeId;

/// The address of one cache block (i.e. the physical address divided by
/// the block size; `patchsim` never deals in sub-block offsets).
///
/// # Examples
///
/// ```
/// use patchsim_mem::BlockAddr;
/// use patchsim_noc::NodeId;
///
/// let a = BlockAddr::new(67);
/// assert_eq!(a.home(64), NodeId::new(3)); // homes interleave by block
/// assert_eq!(a.macroblock(16), 4);        // 67 / 16
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a raw block number.
    #[inline]
    pub const fn new(block_number: u64) -> Self {
        BlockAddr(block_number)
    }

    /// The raw block number.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The home node of this block in an `num_nodes`-node system. Homes
    /// interleave across nodes at block granularity, as in GEMS.
    ///
    /// # Panics
    ///
    /// Panics if `num_nodes` is zero.
    #[inline]
    pub fn home(self, num_nodes: u16) -> NodeId {
        assert!(num_nodes > 0, "a system needs at least one node");
        NodeId::new((self.0 % num_nodes as u64) as u16)
    }

    /// The macroblock index for predictor tables that aggregate
    /// `blocks_per_macroblock` consecutive blocks (the paper's predictors
    /// use 1024-byte macroblocks = 16 blocks of 64 bytes).
    ///
    /// # Panics
    ///
    /// Panics if `blocks_per_macroblock` is zero.
    #[inline]
    pub fn macroblock(self, blocks_per_macroblock: u64) -> u64 {
        assert!(
            blocks_per_macroblock > 0,
            "macroblock size must be positive"
        );
        self.0 / blocks_per_macroblock
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl From<u64> for BlockAddr {
    fn from(v: u64) -> Self {
        BlockAddr(v)
    }
}

impl From<BlockAddr> for u64 {
    fn from(a: BlockAddr) -> u64 {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_interleaves() {
        for i in 0..256u64 {
            assert_eq!(BlockAddr::new(i).home(64), NodeId::new((i % 64) as u16));
        }
    }

    #[test]
    fn single_node_system_homes_everything_at_zero() {
        assert_eq!(BlockAddr::new(12345).home(1), NodeId::new(0));
    }

    #[test]
    fn macroblock_grouping() {
        assert_eq!(BlockAddr::new(0).macroblock(16), 0);
        assert_eq!(BlockAddr::new(15).macroblock(16), 0);
        assert_eq!(BlockAddr::new(16).macroblock(16), 1);
    }

    #[test]
    fn display_is_hex() {
        assert_eq!(BlockAddr::new(255).to_string(), "0xff");
    }

    #[test]
    fn conversions_round_trip() {
        assert_eq!(u64::from(BlockAddr::from(7u64)), 7);
    }
}
