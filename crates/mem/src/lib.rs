//! Memory-system substrate for the `patchsim` cache-coherence simulator.
//!
//! The paper's protocols sit on a conventional CMP memory system: private
//! set-associative caches, a distributed directory at per-node home memory
//! controllers, and (for PATCH and TokenB) per-block token state. This
//! crate provides those structures, protocol-agnostically:
//!
//! * [`BlockAddr`] — cache-block addresses and their home-node mapping.
//! * [`TokenSet`] — per-block token state implementing the token counting
//!   rules of Token Coherence (the paper's Table 1) and the MOESI+F mapping
//!   of Table 2.
//! * [`CacheArray`] — a set-associative array with LRU replacement, generic
//!   over the per-line coherence payload.
//! * [`SharerSet`] / [`SharerEncoding`] — exact (full-map) and inexact
//!   (coarse-vector) directory sharer encodings. The coarse encodings drive
//!   the paper's scalability results (Figures 9–10): with `K` cores per
//!   bit the directory over-approximates the sharer set, and DIRECTORY pays
//!   for the over-approximation in acknowledgement traffic while PATCH does
//!   not.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access;
mod addr;
mod cache;
mod sharers;
mod token;

pub use access::AccessKind;
pub use addr::BlockAddr;
pub use cache::{CacheArray, CacheGeometry, Evicted};
pub use sharers::{SharerEncoding, SharerSet};
pub use token::{MoesiState, OwnerStatus, TokenSet};
