//! Criterion microbenchmarks of the simulator's core data structures:
//! the substrate costs that bound how large a system `patchsim` can
//! simulate in reasonable wall-clock time.

use patchsim::{Cycle, NodeId};
use patchsim_bench::harness::{BatchSize, Criterion};
use patchsim_bench::{criterion_group, criterion_main};
use patchsim_kernel::EventQueue;
use patchsim_mem::{BlockAddr, CacheArray, CacheGeometry, SharerEncoding, SharerSet};
use patchsim_noc::{DestSet, NocEvent, NocPayload, Priority, Torus, TorusConfig, TrafficClass};

#[derive(Clone)]
struct Payload;
impl NocPayload for Payload {
    fn size_bytes(&self) -> u64 {
        72
    }
    fn traffic_class(&self) -> TrafficClass {
        TrafficClass::Data
    }
}

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("kernel/event_queue_push_pop_1k", |b| {
        b.iter_batched(
            EventQueue::<u32>::new,
            |mut q| {
                for i in 0..1000u32 {
                    q.push(Cycle::new((i as u64 * 37) % 512), i);
                }
                let mut sum = 0u64;
                while let Some((_, v)) = q.pop() {
                    sum += v as u64;
                }
                sum
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_event_queue_drain(c: &mut Criterion) {
    // The drain_current_cycle fast path versus pop-per-event on a
    // same-cycle-heavy mix (the shape of a saturated interconnect tick).
    c.bench_function("kernel/event_queue_drain_cycles_1k", |b| {
        b.iter_batched(
            || {
                let mut q = EventQueue::<u32>::with_capacity(1024);
                for i in 0..1000u32 {
                    q.push(Cycle::new(i as u64 / 50), i);
                }
                q
            },
            |mut q| {
                let mut sum = 0u64;
                while !q.is_empty() {
                    for (_, v) in q.drain_current_cycle() {
                        sum += v as u64;
                    }
                }
                sum
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_torus(c: &mut Criterion) {
    c.bench_function("noc/unicast_64node_torus", |b| {
        b.iter_batched(
            || Torus::<Payload>::new(TorusConfig::new(64)),
            |mut net| {
                let mut q: EventQueue<NocEvent<Payload>> = EventQueue::new();
                for i in 0..64u16 {
                    net.send(
                        Cycle::ZERO,
                        NodeId::new(i),
                        DestSet::single(64, NodeId::new((i + 13) % 64)),
                        Priority::Normal,
                        Payload,
                        &mut |at, ev| q.push(at, ev),
                    );
                }
                let mut delivered = 0u32;
                while let Some((now, ev)) = q.pop() {
                    let mut buf = Vec::new();
                    net.handle(now, ev, &mut |at, e| buf.push((at, e)), &mut |_, _| {
                        delivered += 1
                    });
                    for (at, e) in buf {
                        q.push(at, e);
                    }
                }
                delivered
            },
            BatchSize::SmallInput,
        )
    });

    c.bench_function("noc/broadcast_64node_torus", |b| {
        b.iter_batched(
            || Torus::<Payload>::new(TorusConfig::new(64)),
            |mut net| {
                let mut q: EventQueue<NocEvent<Payload>> = EventQueue::new();
                net.send(
                    Cycle::ZERO,
                    NodeId::new(0),
                    DestSet::all_except(64, NodeId::new(0)),
                    Priority::Normal,
                    Payload,
                    &mut |at, ev| q.push(at, ev),
                );
                let mut delivered = 0u32;
                while let Some((now, ev)) = q.pop() {
                    let mut buf = Vec::new();
                    net.handle(now, ev, &mut |at, e| buf.push((at, e)), &mut |_, _| {
                        delivered += 1
                    });
                    for (at, e) in buf {
                        q.push(at, e);
                    }
                }
                delivered
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("mem/cache_fill_and_probe_4k_blocks", |b| {
        b.iter_batched(
            || CacheArray::<u64>::new(CacheGeometry::new(1024, 4)),
            |mut cache| {
                for i in 0..4096u64 {
                    cache.insert(BlockAddr::new(i * 7), i);
                }
                let mut hits = 0u32;
                for i in 0..4096u64 {
                    if cache.get_mut(BlockAddr::new(i * 7)).is_some() {
                        hits += 1;
                    }
                }
                hits
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sharers(c: &mut Criterion) {
    c.bench_function("mem/sharer_set_coarse_decode_256", |b| {
        let mut set = SharerSet::new(256, SharerEncoding::Coarse { cores_per_bit: 16 });
        for i in (0..256).step_by(5) {
            set.insert(NodeId::new(i));
        }
        b.iter(|| set.members().len())
    });
}

fn bench_dest_set(c: &mut Criterion) {
    c.bench_function("noc/dest_set_iterate_512", |b| {
        let set = DestSet::all_except(512, NodeId::new(0));
        b.iter(|| set.iter().map(|n| n.index()).sum::<usize>())
    });
}

criterion_group!(
    simulator,
    bench_event_queue,
    bench_event_queue_drain,
    bench_torus,
    bench_cache,
    bench_sharers,
    bench_dest_set
);
criterion_main!(simulator);
