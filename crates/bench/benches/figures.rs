//! Criterion benches covering every figure's code path at reduced scale.
//!
//! These measure simulator wall-clock for one representative configuration
//! per paper figure, so `cargo bench` exercises each experiment's full
//! machinery (the figure *data* itself comes from the `fig*` binaries).

use patchsim::{presets, run, LinkBandwidth, ProtocolKind};
use patchsim_bench::harness::Criterion;
use patchsim_bench::{
    bandwidth_sweep_configs, criterion_group, criterion_main, figure4_configs, inexact_config,
    scalability_configs, Scale,
};

fn tiny() -> Scale {
    Scale {
        cores: 8,
        ops: 120,
        warmup: 20,
        seeds: 1,
    }
}

fn bench_fig4(c: &mut Criterion) {
    let scale = tiny();
    let mut group = c.benchmark_group("fig4_runtime");
    group.sample_size(10);
    for (name, config) in figure4_configs(scale, &presets::oltp()) {
        group.bench_function(name, |b| b.iter(|| run(&config)));
    }
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    // Figure 5 uses the same runs as Figure 4 but reads the traffic
    // breakdown; bench the accounting-heavy config.
    let scale = tiny();
    let mut group = c.benchmark_group("fig5_traffic");
    group.sample_size(10);
    let (_, config) = figure4_configs(scale, &presets::apache()).swap_remove(4); // PATCH-All
    group.bench_function("patch_all_traffic_breakdown", |b| {
        b.iter(|| {
            let r = run(&config);
            patchsim::TrafficClass::ALL
                .iter()
                .map(|&cls| r.class_bytes_per_miss(cls))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let scale = tiny();
    let mut group = c.benchmark_group("fig6_fig7_bandwidth");
    group.sample_size(10);
    for (workload, label) in [(presets::ocean(), "ocean"), (presets::jbb(), "jbb")] {
        // The most contended sweep point: 600 bytes / 1000 cycles.
        for (name, config) in bandwidth_sweep_configs(scale, &workload, 600.0) {
            group.bench_function(format!("{label}/{name}"), |b| b.iter(|| run(&config)));
        }
    }
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_scalability");
    group.sample_size(10);
    for (name, config) in scalability_configs(16, 100) {
        group.bench_function(format!("16cores/{name}"), |b| b.iter(|| run(&config)));
    }
    group.finish();
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10_inexact");
    group.sample_size(10);
    for kind in [ProtocolKind::Directory, ProtocolKind::Patch] {
        for k in [1u16, 16] {
            let config = inexact_config(kind, 16, k, LinkBandwidth::BytesPerCycle(2.0), 100);
            group.bench_function(format!("{}/K{}", kind.label(), k), |b| {
                b.iter(|| run(&config))
            });
        }
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_fig4,
    bench_fig5,
    bench_fig6_fig7,
    bench_fig8,
    bench_fig9_fig10
);
criterion_main!(figures);
