//! Criterion benches covering every figure's code path at reduced scale.
//!
//! These measure simulator wall-clock for one representative configuration
//! per paper figure, built through the same experiment-plan constructors
//! the `fig*` binaries use (the figure *data* itself comes from those
//! binaries). Cells are benchmarked individually, so each bench exercises
//! the plan's full config-assembly machinery plus one simulation.

use patchsim::exp::Sweep;
use patchsim::{presets, run, LinkBandwidth, ProtocolKind, SimConfig, WorkloadSpec};
use patchsim_bench::harness::Criterion;
use patchsim_bench::{
    adaptivity_protocol_axis, bandwidth_plan, coarseness_value, criterion_group, criterion_main,
    figure4_plan, inexact_protocol_axis, Scale,
};

fn tiny() -> Scale {
    Scale {
        cores: 8,
        ops: 120,
        warmup: 20,
        ..Scale::quick()
    }
}

fn bench_fig4(c: &mut Criterion) {
    let plan = figure4_plan(tiny());
    let mut group = c.benchmark_group("fig4_runtime");
    group.sample_size(10);
    for cell in plan.cells().iter().filter(|c| c.labels[0] == "oltp") {
        group.bench_function(&cell.labels[1], |b| b.iter(|| run(&cell.config)));
    }
    group.finish();
}

fn bench_fig5(c: &mut Criterion) {
    // Figure 5 uses the same runs as Figure 4 but reads the traffic
    // breakdown; bench the accounting-heavy config.
    let plan = figure4_plan(tiny());
    let mut group = c.benchmark_group("fig5_traffic");
    group.sample_size(10);
    let cell = plan
        .cells()
        .iter()
        .find(|c| c.labels == ["apache", "PATCH-All"])
        .expect("grid contains apache/PATCH-All");
    group.bench_function("patch_all_traffic_breakdown", |b| {
        b.iter(|| {
            let r = run(&cell.config);
            patchsim::TrafficClass::ALL
                .iter()
                .map(|&cls| r.class_bytes_per_miss(cls))
                .sum::<f64>()
        })
    });
    group.finish();
}

fn bench_fig6_fig7(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6_fig7_bandwidth");
    group.sample_size(10);
    for (workload, label) in [(presets::ocean(), "ocean"), (presets::jbb(), "jbb")] {
        // The most contended sweep point: 600 bytes / 1000 cycles.
        let plan = bandwidth_plan(tiny(), workload);
        for cell in plan.cells().iter().filter(|c| c.labels[0] == "600") {
            group.bench_function(format!("{label}/{}", cell.labels[1]), |b| {
                b.iter(|| run(&cell.config))
            });
        }
    }
    group.finish();
}

fn bench_fig8(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_scalability");
    group.sample_size(10);
    // A reduced-operation 16-core slice of the Figure 8 axis.
    let base = SimConfig::new(ProtocolKind::Directory, 16)
        .with_workload(WorkloadSpec::microbenchmark())
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
        .with_ops_per_core(100)
        .with_warmup(20);
    let plan = Sweep::new("fig8-bench", base)
        .axis("config", adaptivity_protocol_axis())
        .build();
    for cell in plan.cells() {
        group.bench_function(format!("16cores/{}", cell.name()), |b| {
            b.iter(|| run(&cell.config))
        });
    }
    group.finish();
}

fn bench_fig9_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_fig10_inexact");
    group.sample_size(10);
    let base = SimConfig::new(ProtocolKind::Directory, 16)
        .with_workload(WorkloadSpec::microbenchmark())
        .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
        .with_ops_per_core(100)
        .with_warmup(20);
    let plan = Sweep::new("fig9-bench", base)
        .axis("config", inexact_protocol_axis())
        .axis("K", [1u16, 16].into_iter().map(coarseness_value).collect())
        .build();
    for cell in plan.cells() {
        group.bench_function(format!("{}/K{}", cell.labels[0], cell.labels[1]), |b| {
            b.iter(|| run(&cell.config))
        });
    }
    group.finish();
}

criterion_group!(
    figures,
    bench_fig4,
    bench_fig5,
    bench_fig6_fig7,
    bench_fig8,
    bench_fig9_fig10
);
criterion_main!(figures);
