//! Benchmark and figure-regeneration harness for `patchsim`.
//!
//! Every table and figure of the paper's evaluation (§8) has a dedicated
//! regeneration target:
//!
//! | Paper result | Target |
//! |---|---|
//! | Figure 4 (runtime, 5 workloads × 6 configs) | `cargo run --release -p patchsim-bench --bin fig4_runtime` |
//! | Figure 5 (traffic breakdown) | `fig5_traffic` |
//! | Figure 6 (bandwidth sweep, ocean) | `fig6_bandwidth_ocean` |
//! | Figure 7 (bandwidth sweep, jbb) | `fig7_bandwidth_jbb` |
//! | Figure 8 (4–512 core scalability) | `fig8_scalability` |
//! | Figure 9 (inexact-encoding runtime) | `fig9_inexact_runtime` |
//! | Figure 10 (inexact-encoding traffic) | `fig10_inexact_traffic` |
//! | DESIGN.md ablations | `ablation_tenure_timeout`, `ablation_deact_window`, `ablation_stale_drop`, `ablation_ack_elision` |
//!
//! All binaries accept `--quick` (shrink cores/ops for a fast smoke run)
//! and `--seeds N` (perturbed replications for confidence intervals).
//! `cargo bench` additionally runs scaled-down criterion versions of every
//! figure plus microbenchmarks of the simulator's core data structures.

pub mod harness;

use patchsim::{
    presets, LinkBandwidth, PredictorChoice, ProtocolKind, SharerEncoding, SimConfig, WorkloadSpec,
};
use patchsim_protocol::ProtocolConfig;

/// Experiment scale knobs shared by all figure targets.
#[derive(Clone, Copy, Debug)]
pub struct Scale {
    /// Cores for the workload figures (the paper uses 64).
    pub cores: u16,
    /// Measured operations per core.
    pub ops: u64,
    /// Warmup operations per core.
    pub warmup: u64,
    /// Perturbed replications per data point.
    pub seeds: u64,
}

impl Scale {
    /// Paper-comparable scale (64 cores).
    pub fn full() -> Self {
        Scale {
            cores: 64,
            ops: 800,
            warmup: 1500,
            seeds: 1,
        }
    }

    /// A fast smoke-run scale.
    pub fn quick() -> Self {
        Scale {
            cores: 16,
            ops: 300,
            warmup: 1200,
            seeds: 1,
        }
    }

    /// Parses `--quick` and `--seeds N` from the process arguments.
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = if args.iter().any(|a| a == "--quick") {
            Scale::quick()
        } else {
            Scale::full()
        };
        if let Some(pos) = args.iter().position(|a| a == "--seeds") {
            if let Some(n) = args.get(pos + 1).and_then(|v| v.parse().ok()) {
                scale.seeds = n;
            }
        }
        scale
    }
}

/// The six configurations of Figures 4 and 5, in the paper's bar order.
pub fn figure4_configs(scale: Scale, workload: &WorkloadSpec) -> Vec<(String, SimConfig)> {
    let base = |kind: ProtocolKind| {
        SimConfig::new(kind, scale.cores)
            .with_workload(workload.clone())
            .with_ops_per_core(scale.ops)
            .with_warmup(scale.warmup)
    };
    vec![
        ("Directory".into(), base(ProtocolKind::Directory)),
        (
            "PATCH-None".into(),
            base(ProtocolKind::Patch).with_predictor(PredictorChoice::None),
        ),
        (
            "PATCH-Owner".into(),
            base(ProtocolKind::Patch).with_predictor(PredictorChoice::Owner),
        ),
        (
            "PATCH-BcastIfShared".into(),
            base(ProtocolKind::Patch).with_predictor(PredictorChoice::BroadcastIfShared),
        ),
        (
            "PATCH-All".into(),
            base(ProtocolKind::Patch).with_predictor(PredictorChoice::All),
        ),
        ("TokenB".into(), base(ProtocolKind::TokenB)),
    ]
}

/// The five workloads of Figures 4 and 5, in the paper's group order.
pub fn figure4_workloads() -> Vec<WorkloadSpec> {
    presets::all()
}

/// One point of the Figure 6/7 bandwidth sweeps: the three competing
/// configurations at a given link bandwidth, in bytes per 1000 cycles as
/// the paper quotes it.
pub fn bandwidth_sweep_configs(
    scale: Scale,
    workload: &WorkloadSpec,
    bytes_per_kcycle: f64,
) -> Vec<(String, SimConfig)> {
    let bw = LinkBandwidth::BytesPerCycle(bytes_per_kcycle / 1000.0);
    let base = |kind: ProtocolKind| {
        SimConfig::new(kind, scale.cores)
            .with_workload(workload.clone())
            .with_bandwidth(bw)
            .with_ops_per_core(scale.ops)
            .with_warmup(scale.warmup)
    };
    vec![
        ("Directory".into(), base(ProtocolKind::Directory)),
        (
            "PATCH-All-NA".into(),
            base(ProtocolKind::Patch).with_protocol(
                ProtocolConfig::new(ProtocolKind::Patch, scale.cores)
                    .with_predictor(PredictorChoice::All)
                    .non_adaptive(),
            ),
        ),
        (
            "PATCH-All".into(),
            base(ProtocolKind::Patch).with_predictor(PredictorChoice::All),
        ),
    ]
}

/// The paper's bandwidth sweep points (bytes per 1000 cycles, Figures 6–7).
pub const BANDWIDTH_SWEEP: [f64; 6] = [300.0, 600.0, 900.0, 2000.0, 4000.0, 8000.0];

/// Warmup/measurement schedule for the microbenchmark experiments
/// (Figures 8–10): the paper measures warmed, steady-state caches, so
/// the per-core operation budget is derived from the table size — the
/// *total* access count stays at several multiples of the 16k-block
/// table no matter how many cores split the work.
pub fn microbench_schedule(cores: u16) -> (u64, u64) {
    let table: u64 = 16 * 1024;
    let warmup = (2 * table / cores as u64).max(32);
    let ops = (3 * table / cores as u64).max(64);
    (warmup, ops)
}

/// The Figure 8 configurations: three protocols on the microbenchmark
/// with 2-byte/cycle links at a given core count.
pub fn scalability_configs(cores: u16, ops: u64) -> Vec<(String, SimConfig)> {
    let (warmup, default_ops) = microbench_schedule(cores);
    let ops = if ops == 0 { default_ops } else { ops };
    let base = |kind: ProtocolKind| {
        SimConfig::new(kind, cores)
            .with_workload(WorkloadSpec::microbenchmark())
            .with_bandwidth(LinkBandwidth::BytesPerCycle(2.0))
            .with_ops_per_core(ops)
            .with_warmup(warmup)
    };
    vec![
        ("Directory".into(), base(ProtocolKind::Directory)),
        (
            "PATCH-All-NA".into(),
            base(ProtocolKind::Patch).with_protocol(
                ProtocolConfig::new(ProtocolKind::Patch, cores)
                    .with_predictor(PredictorChoice::All)
                    .non_adaptive(),
            ),
        ),
        (
            "PATCH-All".into(),
            base(ProtocolKind::Patch).with_predictor(PredictorChoice::All),
        ),
    ]
}

/// One Figure 9/10 configuration: `kind` at `cores` with a coarse sharer
/// encoding of `k` cores per bit (`k == 1` is the full map), under the
/// chosen link bandwidth.
pub fn inexact_config(
    kind: ProtocolKind,
    cores: u16,
    k: u16,
    bandwidth: LinkBandwidth,
    ops: u64,
) -> SimConfig {
    let encoding = if k <= 1 {
        SharerEncoding::FullMap
    } else {
        SharerEncoding::Coarse { cores_per_bit: k }
    };
    let protocol = ProtocolConfig::new(kind, cores).with_sharer_encoding(encoding);
    let (warmup, default_ops) = microbench_schedule(cores);
    let ops = if ops == 0 { default_ops } else { ops };
    SimConfig::new(kind, cores)
        .with_protocol(protocol)
        .with_bandwidth(bandwidth)
        .with_workload(WorkloadSpec::microbenchmark())
        .with_ops_per_core(ops)
        .with_warmup(warmup)
}

/// The coarseness sweep (`K` cores per sharer bit) for a given core count,
/// matching Figure 9's x-axis.
pub fn coarseness_sweep(cores: u16) -> Vec<u16> {
    [1u16, 4, 16, 64, 256]
        .into_iter()
        .filter(|&k| k <= cores)
        .collect()
}

/// Formats a right-aligned figure row.
pub fn print_row(label: &str, values: &[(String, f64)]) {
    print!("{label:<24}");
    for (name, v) in values {
        print!(" {name}={v:<8.3}");
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_has_six_bars_and_five_groups() {
        let scale = Scale::quick();
        let workloads = figure4_workloads();
        assert_eq!(workloads.len(), 5);
        let configs = figure4_configs(scale, &workloads[0]);
        assert_eq!(configs.len(), 6);
        assert_eq!(configs[0].0, "Directory");
        assert_eq!(configs[5].0, "TokenB");
    }

    #[test]
    fn bandwidth_sweep_matches_paper_points() {
        assert_eq!(BANDWIDTH_SWEEP.len(), 6);
        let configs = bandwidth_sweep_configs(Scale::quick(), &presets::ocean(), 300.0);
        assert_eq!(configs.len(), 3);
        // 300 bytes/kcycle = 0.3 bytes/cycle.
        assert_eq!(configs[0].1.bandwidth, LinkBandwidth::BytesPerCycle(0.3));
    }

    #[test]
    fn coarseness_sweep_clamps_to_cores() {
        assert_eq!(coarseness_sweep(64), vec![1, 4, 16, 64]);
        assert_eq!(coarseness_sweep(256), vec![1, 4, 16, 64, 256]);
    }

    #[test]
    fn inexact_config_selects_encoding() {
        let c = inexact_config(ProtocolKind::Patch, 64, 1, LinkBandwidth::Unbounded, 10);
        assert_eq!(c.protocol.sharer_encoding, SharerEncoding::FullMap);
        let c = inexact_config(ProtocolKind::Patch, 64, 16, LinkBandwidth::Unbounded, 10);
        assert_eq!(
            c.protocol.sharer_encoding,
            SharerEncoding::Coarse { cores_per_bit: 16 }
        );
    }
}
